"""Tests for feature maps."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FeatureMap, identity_map, polynomial_map, product_map
from repro.exceptions import DimensionMismatchError


class TestFeatureMap:
    def test_shape_validation_on_input(self):
        fmap = identity_map(3)
        with pytest.raises(DimensionMismatchError):
            fmap(np.ones((2, 4)))

    def test_shape_validation_on_output(self):
        bad = FeatureMap(lambda pts: pts[:, :1], in_dim=3, out_dim=3)
        with pytest.raises(DimensionMismatchError):
            bad(np.ones((2, 3)))

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            FeatureMap(lambda p: p, in_dim=0, out_dim=1)

    def test_names_length_checked(self):
        with pytest.raises(DimensionMismatchError):
            FeatureMap(lambda p: p, in_dim=2, out_dim=2, names=["only_one"])

    def test_default_names(self):
        fmap = FeatureMap(lambda p: p, in_dim=2, out_dim=2)
        assert fmap.names == ("phi_0", "phi_1")

    def test_single_point_promoted(self):
        fmap = identity_map(2)
        out = fmap([1.0, 2.0])
        assert out.shape == (1, 2)


class TestIdentityMap:
    def test_identity(self):
        fmap = identity_map(3)
        pts = np.arange(6.0).reshape(2, 3)
        assert np.array_equal(fmap(pts), pts)
        assert fmap.in_dim == fmap.out_dim == 3


class TestProductMap:
    def test_example1_power_factor_features(self):
        """phi(active, reactive, voltage, current) = (active, voltage*current)."""
        fmap = product_map(4, [(0,), (2, 3)])
        pts = np.array([[5.0, 1.0, 230.0, 2.0]])
        assert np.allclose(fmap(pts), [[5.0, 460.0]])
        assert fmap.names == ("x_0", "x_2*x_3")

    def test_constant_term(self):
        fmap = product_map(2, [(), (0,)])
        out = fmap(np.array([[3.0, 4.0], [5.0, 6.0]]))
        assert np.allclose(out, [[1.0, 3.0], [1.0, 5.0]])

    def test_repeated_index_squares(self):
        fmap = product_map(1, [(0, 0)])
        assert np.allclose(fmap([[3.0]]), [[9.0]])

    def test_out_of_range_index(self):
        with pytest.raises(DimensionMismatchError):
            product_map(2, [(0, 5)])


class TestPolynomialMap:
    def test_degree_one_is_identity_like(self):
        fmap = polynomial_map(2, 1)
        assert fmap.out_dim == 2
        assert np.allclose(fmap([[3.0, 4.0]]), [[3.0, 4.0]])

    def test_degree_two_monomials(self):
        fmap = polynomial_map(2, 2)
        # x0, x1, x0^2, x0*x1, x1^2
        assert fmap.out_dim == 5
        assert np.allclose(fmap([[2.0, 3.0]]), [[2.0, 3.0, 4.0, 6.0, 9.0]])

    def test_bias_adds_constant(self):
        fmap = polynomial_map(2, 1, include_bias=True)
        assert fmap.out_dim == 3
        assert np.allclose(fmap([[2.0, 3.0]]), [[1.0, 2.0, 3.0]])

    def test_degree_zero_rejected(self):
        with pytest.raises(ValueError):
            polynomial_map(2, 0)
