"""Tests for PlanarIndexCollection (Section 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FeatureStore,
    PlanarIndexCollection,
    QueryModel,
    ScalarProductQuery,
)
from repro.core.collection import dedupe_parallel_normals
from repro.exceptions import IndexBuildError
from repro.geometry import Translator

from ..conftest import brute_force_ids


def make_collection(rng, n=500, dim=3, budget=10, **kwargs):
    features = rng.uniform(1, 100, size=(n, dim))
    store = FeatureStore(features)
    translator = Translator(np.ones(dim))
    translator.observe(features)
    model = QueryModel.uniform(dim=dim, low=1.0, high=5.0, rq=4)
    collection = PlanarIndexCollection.from_model(
        store, translator, model, budget, rng=rng, **kwargs
    )
    return collection, features, model


class TestDedupeParallelNormals:
    def test_exact_duplicates_removed(self):
        normals = np.array([[1.0, 2.0], [1.0, 2.0], [2.0, 1.0]])
        assert np.array_equal(dedupe_parallel_normals(normals), [0, 2])

    def test_scaled_duplicates_removed(self):
        normals = np.array([[1.0, 2.0], [2.0, 4.0], [3.0, 1.0]])
        assert np.array_equal(dedupe_parallel_normals(normals), [0, 2])

    def test_all_distinct_kept(self):
        normals = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        assert np.array_equal(dedupe_parallel_normals(normals), [0, 1, 2])


class TestConstruction:
    def test_from_model_respects_budget(self, rng):
        collection, _, _ = make_collection(rng, budget=10)
        assert 1 <= len(collection) <= 10

    def test_discrete_domains_drop_duplicates(self, rng):
        """With RQ=2 in 2-D there are only 4 possible normals; a budget of 50
        must collapse to at most 4 non-parallel ones (often fewer)."""
        features = rng.uniform(1, 100, size=(100, 2))
        store = FeatureStore(features)
        translator = Translator(np.ones(2))
        translator.observe(features)
        model = QueryModel.uniform(dim=2, low=1.0, high=2.0, rq=2)
        collection = PlanarIndexCollection.from_model(store, translator, model, 50, rng=rng)
        assert len(collection) <= 4

    def test_zero_budget_rejected(self, rng):
        features = rng.uniform(1, 2, size=(10, 2))
        store = FeatureStore(features)
        translator = Translator(np.ones(2))
        translator.observe(features)
        model = QueryModel.uniform(dim=2, low=1.0, high=2.0)
        with pytest.raises(IndexBuildError):
            PlanarIndexCollection.from_model(store, translator, model, 0)

    def test_empty_normals_rejected(self, rng):
        features = rng.uniform(1, 2, size=(10, 2))
        store = FeatureStore(features)
        translator = Translator(np.ones(2))
        with pytest.raises(IndexBuildError):
            PlanarIndexCollection(store, translator, np.empty((0, 2)))

    def test_iteration_and_getitem(self, rng):
        collection, _, _ = make_collection(rng, budget=5)
        assert len(list(collection)) == len(collection)
        assert collection[0] is list(collection)[0]


class TestQueryRouting:
    def test_query_matches_bruteforce(self, rng):
        collection, features, model = make_collection(rng, budget=20)
        for _ in range(10):
            normal = model.sample_normal(rng)
            offset = float(rng.uniform(100, 900))
            query = ScalarProductQuery(normal, offset)
            result = collection.query(query)
            assert np.array_equal(result.ids, brute_force_ids(features, query))

    def test_select_returns_member(self, rng):
        collection, _, model = make_collection(rng, budget=5)
        query = ScalarProductQuery(model.sample_normal(rng), 300.0)
        assert collection.select(query) in list(collection)

    def test_exact_normal_match_gives_best_pruning(self, rng):
        """Querying with a normal equal to an index normal gives a
        near-empty intermediate interval."""
        collection, _, _ = make_collection(rng, budget=10)
        normal = collection[3].normal
        query = ScalarProductQuery(normal, 400.0)
        result = collection.query(query)
        assert result.stats.ii_size <= 1

    def test_topk_matches_single_index_semantics(self, rng):
        collection, features, model = make_collection(rng, budget=10)
        query = ScalarProductQuery(model.sample_normal(rng), 500.0)
        result = collection.topk(query, 10)
        values = features @ query.normal
        mask = values <= query.offset
        dists = np.sort(np.abs(values[mask] - query.offset))[:10] / np.linalg.norm(
            query.normal
        )
        assert np.allclose(np.sort(result.distances), dists)

    def test_memory_accumulates(self, rng):
        small, _, _ = make_collection(rng, budget=2)
        big, _, _ = make_collection(np.random.default_rng(1), budget=40)
        if len(big) > len(small):
            assert big.memory_bytes() > small.memory_bytes()


class TestMaintenance:
    def test_add_index(self, rng):
        collection, _, _ = make_collection(rng, budget=3)
        before = len(collection)
        added = collection.add_index(np.array([1.13, 2.77, 3.91]))
        assert added and len(collection) == before + 1

    def test_add_parallel_index_skipped(self, rng):
        collection, _, _ = make_collection(rng, budget=3)
        existing = collection[0].normal
        assert collection.add_index(existing * 2.0) is False

    def test_drop_index(self, rng):
        collection, _, _ = make_collection(rng, budget=5)
        if len(collection) > 1:
            before = len(collection)
            collection.drop_index(0)
            assert len(collection) == before - 1

    def test_drop_last_index_rejected(self, rng):
        features = rng.uniform(1, 2, size=(10, 2))
        store = FeatureStore(features)
        translator = Translator(np.ones(2))
        translator.observe(features)
        collection = PlanarIndexCollection(store, translator, np.array([[1.0, 2.0]]))
        with pytest.raises(IndexBuildError):
            collection.drop_index(0)

    def test_rekey_propagates_to_all_indices(self, rng):
        collection, features, model = make_collection(rng, budget=5)
        store = collection._store
        new_rows = rng.uniform(1, 100, size=(50, 3))
        ids = np.arange(50, dtype=np.int64)
        store.update(ids, new_rows)
        collection.rekey(ids, new_rows)
        features = features.copy()
        features[:50] = new_rows
        query = ScalarProductQuery(model.sample_normal(rng), 400.0)
        for index in collection:
            assert np.array_equal(
                index.query(query).ids, brute_force_ids(features, query)
            )


def _tiny_collection(rng, normals):
    features = rng.uniform(1, 100, size=(50, 2))
    store = FeatureStore(features)
    translator = Translator(np.ones(2))
    translator.observe(features)
    return PlanarIndexCollection(store, translator, np.asarray(normals), rng=0)


class TestZeroNormalRejection:
    """A zero normal can never index anything; it must fail loudly up
    front, not deep inside ``PlanarIndex`` with an octant-sign error."""

    def test_dedupe_rejects_zero_rows(self):
        normals = np.array([[1.0, 2.0], [0.0, 0.0], [2.0, 1.0]])
        with pytest.raises(IndexBuildError, match="nonzero"):
            dedupe_parallel_normals(normals)

    def test_dedupe_error_names_the_offending_rows(self):
        normals = np.array([[1.0, 2.0], [0.0, 0.0], [2.0, 1.0], [0.0, 0.0]])
        with pytest.raises(IndexBuildError, match=r"\[1, 3\]"):
            dedupe_parallel_normals(normals)

    def test_constructor_rejects_zero_normal(self, rng):
        with pytest.raises(IndexBuildError, match="nonzero"):
            _tiny_collection(rng, [[1.0, 2.0], [0.0, 0.0]])

    def test_add_index_rejects_zero_normal(self, rng):
        collection = _tiny_collection(rng, [[1.0, 2.0]])
        with pytest.raises(IndexBuildError, match="nonzero"):
            collection.add_index(np.zeros(2))


class TestRedundancyRuleConsistency:
    """``add_index`` and ``dedupe_parallel_normals`` must apply the *same*
    parallel test (``|cos| >= cos(tol)`` on cosines).  The old
    ``angle_between(...) <= tol`` formulation round-tripped through
    ``arccos``, whose resolution collapses near angle 0, so
    near-threshold normals were classified differently at construction
    and at ``add_index`` time."""

    @staticmethod
    def _rotated(angle):
        base_angle = np.pi / 4.0
        base = np.array([np.cos(base_angle), np.sin(base_angle)])
        turned = np.array(
            [np.cos(base_angle + angle), np.sin(base_angle + angle)]
        )
        return base, turned

    @pytest.mark.parametrize(
        "angle_factor, expect_kept",
        [
            (0.25, False),  # well inside the parallel cone
            (0.5, False),  # inside
            (2.0, True),  # outside
            (8.0, True),  # well outside
        ],
    )
    def test_both_paths_agree_near_the_boundary(
        self, rng, angle_factor, expect_kept
    ):
        from repro.core.collection import _PARALLEL_TOL

        base, turned = self._rotated(angle_factor * _PARALLEL_TOL)
        kept_by_dedupe = (
            dedupe_parallel_normals(np.vstack([base, turned])).size == 2
        )
        collection = _tiny_collection(rng, [base])
        added = collection.add_index(turned)
        assert kept_by_dedupe == added == expect_kept

    def test_scale_invariance_at_the_boundary(self, rng):
        """The rule compares unit normals, so scaling must not flip the
        verdict on either path."""
        from repro.core.collection import _PARALLEL_TOL

        base, turned = self._rotated(0.5 * _PARALLEL_TOL)
        scaled = 1_000.0 * turned
        assert dedupe_parallel_normals(np.vstack([base, scaled])).size == 1
        collection = _tiny_collection(rng, [base])
        assert collection.add_index(scaled) is False
