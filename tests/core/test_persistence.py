"""Tests for index save/load."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FeatureMap,
    FunctionIndex,
    ParameterDomain,
    QueryModel,
    load_index,
    product_map,
    save_index,
)
from repro.core.persistence import PersistenceError


@pytest.fixture
def identity_index(rng):
    points = rng.uniform(1, 100, size=(500, 3))
    model = QueryModel.uniform(dim=3, low=1.0, high=5.0, rq=4)
    return points, model, FunctionIndex(points, model, n_indices=8, rng=0)


class TestRoundTrip:
    def test_identity_map_round_trip(self, identity_index, tmp_path, rng):
        points, model, index = identity_index
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert len(loaded) == len(index)
        assert loaded.n_indices == index.n_indices
        for _ in range(5):
            normal = model.sample_normal(rng)
            offset = float(rng.uniform(100, 800))
            assert np.array_equal(
                index.query(normal, offset).ids, loaded.query(normal, offset).ids
            )

    def test_product_map_round_trip(self, tmp_path, rng):
        points = rng.uniform(1, 10, size=(300, 4))
        fmap = product_map(4, [(0,), (2, 3)])
        model = QueryModel(
            [ParameterDomain(values=[1.0]), ParameterDomain(low=-1.0, high=-0.1)]
        )
        index = FunctionIndex(points, model, feature_map=fmap, n_indices=5, rng=0)
        path = tmp_path / "prod.npz"
        save_index(index, path)
        loaded = load_index(path)
        answer = loaded.query(np.array([1.0, -0.5]), 0.0)
        expected = index.query(np.array([1.0, -0.5]), 0.0)
        assert np.array_equal(answer.ids, expected.ids)

    def test_deleted_points_not_persisted(self, identity_index, tmp_path):
        points, model, index = identity_index
        index.delete_points(np.arange(100, dtype=np.int64))
        path = tmp_path / "pruned.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert len(loaded) == 400

    def test_discrete_and_continuous_domains_preserved(self, identity_index, tmp_path):
        _, model, index = identity_index
        path = tmp_path / "dom.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.query_model.domains == model.domains

    def test_normals_preserved(self, identity_index, tmp_path):
        _, _, index = identity_index
        path = tmp_path / "norm.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert np.allclose(
            np.sort(loaded.collection.normals, axis=0),
            np.sort(index.collection.normals, axis=0),
        )


class TestCustomMaps:
    def test_custom_map_requires_resupply(self, tmp_path, rng):
        points = rng.uniform(1, 10, size=(100, 2))
        fmap = FeatureMap(lambda p: np.sqrt(p), in_dim=2, out_dim=2)
        model = QueryModel.uniform(dim=2, low=1.0, high=2.0)
        index = FunctionIndex(points, model, feature_map=fmap, n_indices=3, rng=0)
        path = tmp_path / "custom.npz"
        save_index(index, path)
        with pytest.raises(PersistenceError, match="custom feature map"):
            load_index(path)
        loaded = load_index(path, feature_map=fmap)
        normal = model.sample_normal(0)
        assert np.array_equal(
            loaded.query(normal, 3.0).ids, index.query(normal, 3.0).ids
        )

    def test_wrong_custom_map_shape_rejected(self, tmp_path, rng):
        points = rng.uniform(1, 10, size=(100, 2))
        fmap = FeatureMap(lambda p: np.sqrt(p), in_dim=2, out_dim=2)
        model = QueryModel.uniform(dim=2, low=1.0, high=2.0)
        index = FunctionIndex(points, model, feature_map=fmap, n_indices=3, rng=0)
        path = tmp_path / "custom2.npz"
        save_index(index, path)
        wrong = FeatureMap(lambda p: p[:, :1], in_dim=2, out_dim=1)
        with pytest.raises(PersistenceError, match="archive expects"):
            load_index(path, feature_map=wrong)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_index(tmp_path / "nope.npz")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not a zip archive")
        with pytest.raises(PersistenceError):
            load_index(path)
