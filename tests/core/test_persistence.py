"""Tests for index save/load."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FeatureMap,
    FunctionIndex,
    ParameterDomain,
    QueryModel,
    load_index,
    product_map,
    save_index,
)
from repro.core.persistence import PersistenceError


@pytest.fixture
def identity_index(rng):
    points = rng.uniform(1, 100, size=(500, 3))
    model = QueryModel.uniform(dim=3, low=1.0, high=5.0, rq=4)
    return points, model, FunctionIndex(points, model, n_indices=8, rng=0)


class TestRoundTrip:
    def test_identity_map_round_trip(self, identity_index, tmp_path, rng):
        points, model, index = identity_index
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert len(loaded) == len(index)
        assert loaded.n_indices == index.n_indices
        for _ in range(5):
            normal = model.sample_normal(rng)
            offset = float(rng.uniform(100, 800))
            assert np.array_equal(
                index.query(normal, offset).ids, loaded.query(normal, offset).ids
            )

    def test_product_map_round_trip(self, tmp_path, rng):
        points = rng.uniform(1, 10, size=(300, 4))
        fmap = product_map(4, [(0,), (2, 3)])
        model = QueryModel(
            [ParameterDomain(values=[1.0]), ParameterDomain(low=-1.0, high=-0.1)]
        )
        index = FunctionIndex(points, model, feature_map=fmap, n_indices=5, rng=0)
        path = tmp_path / "prod.npz"
        save_index(index, path)
        loaded = load_index(path)
        answer = loaded.query(np.array([1.0, -0.5]), 0.0)
        expected = index.query(np.array([1.0, -0.5]), 0.0)
        assert np.array_equal(answer.ids, expected.ids)

    def test_deleted_points_not_persisted(self, identity_index, tmp_path):
        points, model, index = identity_index
        index.delete_points(np.arange(100, dtype=np.int64))
        path = tmp_path / "pruned.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert len(loaded) == 400

    def test_discrete_and_continuous_domains_preserved(self, identity_index, tmp_path):
        _, model, index = identity_index
        path = tmp_path / "dom.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.query_model.domains == model.domains

    def test_normals_preserved(self, identity_index, tmp_path):
        _, _, index = identity_index
        path = tmp_path / "norm.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert np.allclose(
            np.sort(loaded.collection.normals, axis=0),
            np.sort(index.collection.normals, axis=0),
        )


class TestCustomMaps:
    def test_custom_map_requires_resupply(self, tmp_path, rng):
        points = rng.uniform(1, 10, size=(100, 2))
        fmap = FeatureMap(lambda p: np.sqrt(p), in_dim=2, out_dim=2)
        model = QueryModel.uniform(dim=2, low=1.0, high=2.0)
        index = FunctionIndex(points, model, feature_map=fmap, n_indices=3, rng=0)
        path = tmp_path / "custom.npz"
        save_index(index, path)
        with pytest.raises(PersistenceError, match="custom feature map"):
            load_index(path)
        loaded = load_index(path, feature_map=fmap)
        normal = model.sample_normal(0)
        assert np.array_equal(
            loaded.query(normal, 3.0).ids, index.query(normal, 3.0).ids
        )

    def test_wrong_custom_map_shape_rejected(self, tmp_path, rng):
        points = rng.uniform(1, 10, size=(100, 2))
        fmap = FeatureMap(lambda p: np.sqrt(p), in_dim=2, out_dim=2)
        model = QueryModel.uniform(dim=2, low=1.0, high=2.0)
        index = FunctionIndex(points, model, feature_map=fmap, n_indices=3, rng=0)
        path = tmp_path / "custom2.npz"
        save_index(index, path)
        wrong = FeatureMap(lambda p: p[:, :1], in_dim=2, out_dim=1)
        with pytest.raises(PersistenceError, match="archive expects"):
            load_index(path, feature_map=wrong)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_index(tmp_path / "nope.npz")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not a zip archive")
        with pytest.raises(PersistenceError):
            load_index(path)


def _assert_same_answers(a, b, model, rng, n=5):
    """Same answer *sets* by point value — save compacts ids to row
    positions, so raw ids are not comparable across a churned save."""
    for _ in range(n):
        normal = model.sample_normal(rng)
        offset = float(rng.uniform(100, 800))
        pa = a.get_points(a.query(normal, offset).ids)
        pb = b.get_points(b.query(normal, offset).ids)
        assert pa.shape == pb.shape
        order_a = np.lexsort(pa.T)
        order_b = np.lexsort(pb.T)
        assert np.array_equal(pa[order_a], pb[order_b])


class TestV3RoundTrip:
    def test_default_save_is_v3_directory(self, identity_index, tmp_path):
        _, _, index = identity_index
        path = save_index(index, tmp_path / "idx")
        assert path.is_dir()
        assert (path / "manifest.json").exists()
        assert (path / "features.npy").exists()

    def test_round_trip_after_churn(self, identity_index, tmp_path, rng):
        points, model, index = identity_index
        index.delete_points(np.arange(50, dtype=np.int64))
        index.insert_points(rng.uniform(1, 100, size=(30, 3)))
        path = save_index(index, tmp_path / "churn")
        loaded = load_index(path)
        assert len(loaded) == len(index)
        _assert_same_answers(index, loaded, model, rng)

    def test_auto_mode_memmaps_v3(self, identity_index, tmp_path):
        _, _, index = identity_index
        path = save_index(index, tmp_path / "idx")
        loaded = load_index(path)
        assert isinstance(loaded._features._data, np.memmap)

    def test_save_over_existing_directory(self, identity_index, tmp_path, rng):
        points, model, index = identity_index
        path = save_index(index, tmp_path / "idx")
        index.delete_points(np.arange(100, dtype=np.int64))
        save_index(index, path)
        loaded = load_index(path)
        assert len(loaded) == 400
        # The retired previous index is cleaned up, not left beside it.
        assert [p.name for p in tmp_path.iterdir()] == ["idx"]

    def test_v2_archive_still_loads(self, identity_index, tmp_path, rng):
        _, model, index = identity_index
        path = save_index(index, tmp_path / "legacy", version=2)
        assert path.suffix == ".npz"
        loaded = load_index(path)
        _assert_same_answers(index, loaded, model, rng)


class TestV3Modes:
    def test_mmap_load_is_read_only(self, identity_index, tmp_path, rng):
        points, model, index = identity_index
        path = save_index(index, tmp_path / "idx")
        loaded = load_index(path, mode="mmap")
        assert not loaded._features.writable
        with pytest.raises(ValueError, match="read-only"):
            loaded.insert_points(rng.uniform(1, 100, size=(5, 3)))
        with pytest.raises(ValueError, match="read-only"):
            loaded.delete_points(np.arange(5, dtype=np.int64))
        with pytest.raises(ValueError, match="read-only"):
            loaded.update_points(
                np.arange(5, dtype=np.int64), rng.uniform(1, 100, size=(5, 3))
            )
        # Failed mutations must not have desynced stores from indices.
        _assert_same_answers(index, loaded, model, rng)

    def test_copy_load_supports_maintenance(self, identity_index, tmp_path, rng):
        points, model, index = identity_index
        path = save_index(index, tmp_path / "idx")
        loaded = load_index(path, mode="copy")
        assert loaded._features.writable
        loaded.delete_points(np.arange(20, dtype=np.int64))
        index.delete_points(np.arange(20, dtype=np.int64))
        new = rng.uniform(1, 100, size=(15, 3))
        loaded.insert_points(new)
        index.insert_points(new)
        _assert_same_answers(index, loaded, model, rng)

    def test_mmap_mode_rejects_legacy_npz(self, identity_index, tmp_path):
        _, _, index = identity_index
        path = save_index(index, tmp_path / "legacy", version=2)
        with pytest.raises(PersistenceError, match="cannot be memory-mapped"):
            load_index(path, mode="mmap")


class TestV3Corruption:
    """Referenced from tests/reliability/test_persistence_faults.py — v3
    directory corruption detection lives here."""

    def test_bit_flip_in_small_array_detected(self, identity_index, tmp_path):
        _, _, index = identity_index
        path = save_index(index, tmp_path / "idx")
        target = path / "normals.npy"
        blob = bytearray(target.read_bytes())
        blob[-1] ^= 0xFF  # flip data bits, not the npy header
        target.write_bytes(bytes(blob))
        # Small arrays are checksum-verified even in mmap mode.
        with pytest.raises(PersistenceError, match="checksum"):
            load_index(path, mode="mmap")

    def test_bit_flip_in_bulk_array_detected_by_copy_mode(
        self, identity_index, tmp_path
    ):
        _, _, index = identity_index
        path = save_index(index, tmp_path / "idx")
        target = path / "features.npy"
        blob = bytearray(target.read_bytes())
        blob[-1] ^= 0xFF
        target.write_bytes(bytes(blob))
        with pytest.raises(PersistenceError, match="checksum"):
            load_index(path, mode="copy")

    def test_missing_array_file(self, identity_index, tmp_path):
        _, _, index = identity_index
        path = save_index(index, tmp_path / "idx")
        (path / "keys_0.npy").unlink()
        with pytest.raises(PersistenceError, match="keys_0"):
            load_index(path)

    def test_malformed_manifest(self, identity_index, tmp_path):
        _, _, index = identity_index
        path = save_index(index, tmp_path / "idx")
        (path / "manifest.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(PersistenceError, match="manifest"):
            load_index(path)

    def test_directory_without_manifest_rejected(self, tmp_path):
        bare = tmp_path / "bare"
        bare.mkdir()
        with pytest.raises(PersistenceError, match="manifest"):
            load_index(bare)

    def test_missing_checksum_manifest_key(self, identity_index, tmp_path):
        import json

        _, _, index = identity_index
        path = save_index(index, tmp_path / "idx")
        manifest = json.loads((path / "manifest.json").read_text("utf-8"))
        del manifest["checksums"]
        (path / "manifest.json").write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(PersistenceError, match="checksum manifest"):
            load_index(path)
