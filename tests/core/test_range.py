"""Tests for BETWEEN (range) queries."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FunctionIndex, QueryModel
from repro.exceptions import InvalidQueryError


@pytest.fixture
def setup(rng):
    points = rng.uniform(1, 100, size=(4000, 4))
    model = QueryModel.uniform(dim=4, low=1.0, high=5.0, rq=4)
    index = FunctionIndex(points, model, n_indices=30, rng=0)
    return points, model, index


def oracle(points, normal, low, high):
    values = points @ normal
    return np.nonzero((values >= low) & (values <= high))[0]


class TestQueryRange:
    def test_matches_oracle(self, setup, rng):
        points, model, index = setup
        for _ in range(10):
            normal = model.sample_normal(rng)
            low = float(rng.uniform(100, 500))
            high = low + float(rng.uniform(0, 400))
            answer = index.query_range(normal, low, high)
            assert np.array_equal(answer.ids, oracle(points, normal, low, high))
            assert not answer.used_fallback

    def test_equals_conjunction_of_bounds(self, setup, rng):
        points, model, index = setup
        normal = model.sample_normal(rng)
        ranged = index.query_range(normal, 300.0, 600.0)
        conj = index.query_conjunction([(normal, 300.0, ">="), (normal, 600.0, "<=")])
        assert np.array_equal(ranged.ids, conj.ids)

    def test_degenerate_range(self, setup, rng):
        points, model, index = setup
        normal = model.sample_normal(rng)
        # Same matmul as the oracle, so the target value is bit-identical.
        value = float((points @ normal)[0])
        answer = index.query_range(normal, value, value)
        expected = oracle(points, normal, value, value)
        assert np.array_equal(answer.ids, expected)
        assert 0 in set(answer.ids.tolist())

    def test_empty_range_rejected(self, setup, rng):
        _, model, index = setup
        with pytest.raises(InvalidQueryError):
            index.query_range(model.sample_normal(rng), 10.0, 5.0)

    def test_prunes_with_matched_index(self, setup):
        points, _, index = setup
        normal = index.collection[0].normal
        answer = index.query_range(normal, 300.0, 500.0)
        assert answer.stats.n_verified <= 2  # only the guard bands

    def test_negated_normal_served_by_canonical_form(self, setup):
        """A fully negated normal canonicalizes into the indexed octant:
        no fallback needed, answer exact."""
        points, _, index = setup
        normal = np.array([-1.0, -1.0, -1.0, -1.0])
        answer = index.query_range(normal, -500.0, -100.0)
        assert not answer.used_fallback
        assert np.array_equal(answer.ids, oracle(points, normal, -500.0, -100.0))

    def test_fallback_for_mixed_sign_normal(self, setup):
        """Mixed signs fit neither the octant nor its mirror: scan."""
        points, _, index = setup
        normal = np.array([1.0, -1.0, 1.0, 1.0])
        answer = index.query_range(normal, -100.0, 100.0)
        assert answer.used_fallback
        assert np.array_equal(answer.ids, oracle(points, normal, -100.0, 100.0))

    def test_whole_domain_range(self, setup, rng):
        points, model, index = setup
        normal = model.sample_normal(rng)
        answer = index.query_range(normal, -1e12, 1e12)
        assert len(answer) == len(points)


@given(seed=st.integers(0, 500), width=st.floats(0.0, 300.0))
@settings(max_examples=40, deadline=None)
def test_property_range_exact(seed, width):
    rng = np.random.default_rng(seed)
    points = rng.uniform(1, 50, size=(400, 3))
    model = QueryModel.uniform(dim=3, low=1.0, high=4.0)
    index = FunctionIndex(points, model, n_indices=6, rng=seed)
    normal = model.sample_normal(rng)
    low = float(rng.uniform(0, 300))
    answer = index.query_range(normal, low, low + width)
    assert np.array_equal(answer.ids, oracle(points, normal, low, low + width))
