"""Tests for ScalarProductQuery / Comparison / TopKQuery."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Comparison, ScalarProductQuery, TopKQuery
from repro.exceptions import InvalidQueryError


class TestComparison:
    def test_parse_strings(self):
        assert Comparison.parse("<=") is Comparison.LE
        assert Comparison.parse(">") is Comparison.GT
        assert Comparison.parse(Comparison.GE) is Comparison.GE

    def test_parse_rejects_garbage(self):
        with pytest.raises(InvalidQueryError):
            Comparison.parse("==")

    def test_upper_bound_and_strict_flags(self):
        assert Comparison.LE.is_upper_bound and not Comparison.LE.is_strict
        assert Comparison.LT.is_upper_bound and Comparison.LT.is_strict
        assert not Comparison.GE.is_upper_bound and not Comparison.GE.is_strict
        assert not Comparison.GT.is_upper_bound and Comparison.GT.is_strict

    def test_flip_is_involution(self):
        for op in Comparison:
            assert op.flipped().flipped() is op

    @pytest.mark.parametrize(
        "op,expected",
        [
            (Comparison.LE, [True, True, False]),
            (Comparison.LT, [True, False, False]),
            (Comparison.GE, [False, True, True]),
            (Comparison.GT, [False, False, True]),
        ],
    )
    def test_evaluate(self, op, expected):
        lhs = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(op.evaluate(lhs, 2.0), expected)


class TestScalarProductQuery:
    def test_basic_construction(self):
        query = ScalarProductQuery([1.0, 2.0], 5.0)
        assert query.dim == 2
        assert query.op is Comparison.LE
        assert query.hyperplane.offset == 5.0

    def test_op_string_accepted(self):
        query = ScalarProductQuery([1.0], 1.0, ">")
        assert query.op is Comparison.GT

    def test_zero_normal_rejected(self):
        with pytest.raises(InvalidQueryError):
            ScalarProductQuery([0.0, 0.0], 1.0)

    def test_nonfinite_rejected(self):
        with pytest.raises(InvalidQueryError):
            ScalarProductQuery([np.inf, 1.0], 1.0)
        with pytest.raises(InvalidQueryError):
            ScalarProductQuery([1.0, 1.0], np.nan)

    def test_normal_read_only(self):
        query = ScalarProductQuery([1.0, 2.0], 5.0)
        with pytest.raises(ValueError):
            query.normal[0] = 3.0

    def test_canonical_noop_for_nonnegative_offset(self):
        query = ScalarProductQuery([1.0, -1.0], 0.0)
        assert query.canonical() is query

    def test_canonical_negates_for_negative_offset(self):
        query = ScalarProductQuery([1.0, -2.0], -3.0, "<=")
        canon = query.canonical()
        assert np.array_equal(canon.normal, [-1.0, 2.0])
        assert canon.offset == 3.0
        assert canon.op is Comparison.GE

    def test_canonical_preserves_semantics(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(100, 3))
        for op in Comparison:
            query = ScalarProductQuery([1.0, -2.0, 0.5], -1.5, op)
            assert np.array_equal(query.evaluate(pts), query.canonical().evaluate(pts))

    def test_evaluate_matches_manual(self):
        query = ScalarProductQuery([2.0, 1.0], 4.0, "<")
        pts = np.array([[1.0, 1.0], [2.0, 0.0], [3.0, 0.0]])
        assert np.array_equal(query.evaluate(pts), [True, False, False])

    def test_distance(self):
        query = ScalarProductQuery([3.0, 4.0], 5.0)
        assert query.distance([[0.0, 0.0]])[0] == pytest.approx(1.0)

    def test_with_op(self):
        query = ScalarProductQuery([1.0], 1.0)
        assert query.with_op(">=").op is Comparison.GE


class TestTopKQuery:
    def test_valid(self):
        tkq = TopKQuery(ScalarProductQuery([1.0, 1.0], 1.0), 5)
        assert tkq.k == 5 and tkq.dim == 2

    def test_invalid_k(self):
        with pytest.raises(InvalidQueryError):
            TopKQuery(ScalarProductQuery([1.0], 1.0), 0)

    def test_invalid_query_type(self):
        with pytest.raises(InvalidQueryError):
            TopKQuery("not a query", 3)
