"""Tests for ParameterDomain and QueryModel (Section 4.1 / 7.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ParameterDomain, QueryModel
from repro.exceptions import InvalidDomainError


class TestParameterDomain:
    def test_continuous_bounds(self):
        dom = ParameterDomain(low=1.0, high=5.0)
        assert not dom.is_discrete
        assert dom.low == 1.0 and dom.high == 5.0
        assert dom.cardinality == float("inf")
        assert dom.sign == 1

    def test_discrete_values_sorted_unique(self):
        dom = ParameterDomain(values=[3.0, 1.0, 3.0, 2.0])
        assert dom.is_discrete
        assert np.array_equal(dom.values, [1.0, 2.0, 3.0])
        assert dom.cardinality == 3

    def test_discrete_grid_matches_rq(self):
        dom = ParameterDomain.discrete_grid(1.0, 5.0, 5)
        assert np.allclose(dom.values, [1.0, 2.0, 3.0, 4.0, 5.0])

    def test_discrete_grid_single_value(self):
        dom = ParameterDomain.discrete_grid(2.0, 9.0, 1)
        assert np.array_equal(dom.values, [2.0])

    def test_negative_domain_sign(self):
        dom = ParameterDomain(low=-5.0, high=-1.0)
        assert dom.sign == -1

    def test_straddling_rejected(self):
        with pytest.raises(InvalidDomainError):
            ParameterDomain(low=-1.0, high=1.0)
        with pytest.raises(InvalidDomainError):
            ParameterDomain(values=[-1.0, 2.0])

    def test_empty_and_invalid(self):
        with pytest.raises(InvalidDomainError):
            ParameterDomain(low=5.0, high=1.0)
        with pytest.raises(InvalidDomainError):
            ParameterDomain(values=[])
        with pytest.raises(InvalidDomainError):
            ParameterDomain(values=[0.0])
        with pytest.raises(InvalidDomainError):
            ParameterDomain()
        with pytest.raises(InvalidDomainError):
            ParameterDomain(low=1.0, high=2.0, values=[1.0])

    def test_contains(self):
        cont = ParameterDomain(low=1.0, high=2.0)
        assert cont.contains(1.5) and not cont.contains(2.5)
        disc = ParameterDomain(values=[1.0, 4.0])
        assert disc.contains(4.0) and not disc.contains(2.0)

    def test_sampling_respects_domain(self):
        rng = np.random.default_rng(0)
        disc = ParameterDomain(values=[1.0, 2.0])
        samples = disc.sample(rng, size=100)
        assert set(np.unique(samples)) <= {1.0, 2.0}
        cont = ParameterDomain(low=3.0, high=4.0)
        samples = cont.sample(rng, size=100)
        assert np.all((samples >= 3.0) & (samples <= 4.0))

    def test_scalar_sample(self):
        rng = np.random.default_rng(0)
        value = ParameterDomain(values=[7.0]).sample(rng)
        assert value == 7.0

    def test_widened(self):
        disc = ParameterDomain(values=[1.0, 2.0])
        assert disc.widened(1.0) is disc
        wider = disc.widened(5.0)
        assert wider.contains(5.0)
        cont = ParameterDomain(low=1.0, high=2.0)
        assert cont.widened(4.0).high == 4.0

    def test_equality_and_hash(self):
        assert ParameterDomain(values=[1.0, 2.0]) == ParameterDomain(values=[2.0, 1.0])
        assert ParameterDomain(low=1.0, high=2.0) != ParameterDomain(values=[1.0, 2.0])
        assert hash(ParameterDomain(low=1.0, high=2.0)) == hash(
            ParameterDomain(low=1.0, high=2.0)
        )


class TestQueryModel:
    def test_uniform_discrete_rq(self):
        model = QueryModel.uniform(dim=3, low=1.0, high=5.0, rq=4)
        assert model.dim == 3
        assert model.randomness == 4
        assert model.normal_space_size == 64

    def test_uniform_continuous(self):
        model = QueryModel.uniform(dim=2, low=1.0, high=5.0)
        assert model.normal_space_size == float("inf")

    def test_octant(self):
        model = QueryModel(
            [ParameterDomain(low=1.0, high=2.0), ParameterDomain(low=-2.0, high=-1.0)]
        )
        assert np.array_equal(model.octant(), [1, -1])

    def test_sample_normal_in_domains(self):
        model = QueryModel.uniform(dim=4, low=1.0, high=5.0, rq=4)
        normal = model.sample_normal(0)
        assert model.contains(normal)

    def test_sample_normals_shape(self):
        model = QueryModel.uniform(dim=3, low=1.0, high=2.0)
        normals = model.sample_normals(10, 0)
        assert normals.shape == (10, 3)
        assert np.all((normals >= 1.0) & (normals <= 2.0))

    def test_contains_rejects_wrong_shape(self):
        model = QueryModel.uniform(dim=2, low=1.0, high=2.0)
        assert not model.contains(np.array([1.0, 1.0, 1.0]))

    def test_widened(self):
        model = QueryModel.uniform(dim=2, low=1.0, high=2.0, rq=2)
        wider = model.widened(np.array([3.0, 1.0]))
        assert wider.contains(np.array([3.0, 1.0]))
        with pytest.raises(InvalidDomainError):
            model.widened(np.array([1.0]))

    def test_empty_model_rejected(self):
        with pytest.raises(InvalidDomainError):
            QueryModel([])

    def test_non_domain_rejected(self):
        with pytest.raises(InvalidDomainError):
            QueryModel([(1.0, 2.0)])

    def test_randomness_nan_when_mixed(self):
        model = QueryModel(
            [ParameterDomain(values=[1.0, 2.0]), ParameterDomain(values=[1.0, 2.0, 3.0])]
        )
        assert np.isnan(model.randomness)
