"""Tests for the FunctionIndex facade: phi handling, fallback, dynamics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FunctionIndex,
    ParameterDomain,
    QueryModel,
    ScalarProductQuery,
    product_map,
)
from repro.exceptions import DimensionMismatchError, InvalidQueryError

from ..conftest import brute_force_ids


class TestConstruction:
    def test_identity_default(self, uniform_points, uniform_model):
        index = FunctionIndex(uniform_points, uniform_model, rng=0)
        assert len(index) == len(uniform_points)
        assert index.feature_map.in_dim == index.feature_map.out_dim == 4

    def test_feature_map_dim_checked(self, uniform_points):
        model = QueryModel.uniform(dim=2, low=1.0, high=2.0)
        fmap = product_map(4, [(0,), (1, 2), (3,)])  # out_dim 3 != model dim 2
        with pytest.raises(DimensionMismatchError):
            FunctionIndex(uniform_points, model, feature_map=fmap)

    def test_points_dim_checked(self, uniform_points):
        model = QueryModel.uniform(dim=2, low=1.0, high=2.0)
        fmap = product_map(3, [(0,), (1, 2)])
        with pytest.raises(DimensionMismatchError):
            FunctionIndex(uniform_points, model, feature_map=fmap)

    def test_repr_mentions_sizes(self, uniform_points, uniform_model):
        index = FunctionIndex(uniform_points, uniform_model, n_indices=5, rng=0)
        assert "n=2000" in repr(index)


class TestQueries:
    def test_query_with_product_phi(self, rng):
        """The Example 1 pipeline: phi = (active, voltage * current)."""
        points = rng.uniform(1, 10, size=(500, 4))
        fmap = product_map(4, [(0,), (2, 3)])
        model = QueryModel(
            [ParameterDomain(values=[1.0]), ParameterDomain(low=-1.0, high=-0.1)]
        )
        index = FunctionIndex(points, model, feature_map=fmap, n_indices=10, rng=0)
        threshold = 0.4
        answer = index.query(np.array([1.0, -threshold]), 0.0)
        expected = points[:, 0] - threshold * points[:, 2] * points[:, 3] <= 0
        assert np.array_equal(answer.ids, np.nonzero(expected)[0])

    def test_wrong_query_dim(self, uniform_points, uniform_model):
        index = FunctionIndex(uniform_points, uniform_model, rng=0)
        with pytest.raises(DimensionMismatchError):
            index.query(np.array([1.0, 1.0]), 5.0)

    def test_fallback_for_octant_mismatch(self, uniform_points, uniform_model):
        index = FunctionIndex(uniform_points, uniform_model, rng=0)
        # Negative parameters against all-positive domains: not plannable.
        answer = index.query(np.array([-1.0, -1.0, -1.0, -1.0]), 100.0)
        assert answer.used_fallback
        query = ScalarProductQuery(np.array([-1.0, -1.0, -1.0, -1.0]), 100.0)
        assert np.array_equal(answer.ids, brute_force_ids(uniform_points, query))

    def test_fallback_can_be_disabled(self, uniform_points, uniform_model):
        index = FunctionIndex(
            uniform_points, uniform_model, scan_fallback=False, rng=0
        )
        with pytest.raises(InvalidQueryError):
            index.query(np.array([-1.0, -1.0, -1.0, -1.0]), 100.0)

    def test_topk_fallback(self, uniform_points, uniform_model):
        index = FunctionIndex(uniform_points, uniform_model, rng=0)
        result = index.topk(np.array([-1.0, -1.0, -1.0, -1.0]), 100.0, 5)
        assert result.n_checked == len(uniform_points)
        assert len(result) <= 5

    def test_topk_happy_path(self, uniform_points, uniform_model, rng):
        index = FunctionIndex(uniform_points, uniform_model, n_indices=20, rng=0)
        normal = uniform_model.sample_normal(rng)
        result = index.topk(normal, 400.0, 10)
        values = uniform_points @ normal
        sat = values[values <= 400.0]
        expected = np.sort(np.abs(sat - 400.0))[:10] / np.linalg.norm(normal)
        assert np.allclose(result.distances, expected)


class TestDynamics:
    def test_update_points(self, rng, uniform_model):
        points = rng.uniform(1, 100, size=(300, 4)).copy()
        index = FunctionIndex(points, uniform_model, n_indices=5, rng=0)
        ids = np.arange(40, dtype=np.int64)
        new_values = rng.uniform(1, 100, size=(40, 4))
        index.update_points(ids, new_values)
        points[:40] = new_values
        normal = uniform_model.sample_normal(rng)
        query = ScalarProductQuery(normal, 500.0)
        assert np.array_equal(index.query(normal, 500.0).ids, brute_force_ids(points, query))
        assert np.allclose(index.get_points(ids), new_values)

    def test_insert_points(self, rng, uniform_model):
        points = rng.uniform(1, 100, size=(200, 4))
        index = FunctionIndex(points, uniform_model, n_indices=5, rng=0)
        extra = rng.uniform(1, 100, size=(50, 4))
        new_ids = index.insert_points(extra)
        assert np.array_equal(new_ids, np.arange(200, 250))
        assert len(index) == 250
        full = np.vstack([points, extra])
        normal = uniform_model.sample_normal(rng)
        query = ScalarProductQuery(normal, 600.0)
        assert np.array_equal(index.query(normal, 600.0).ids, brute_force_ids(full, query))

    def test_insert_beyond_observed_range_stays_exact(self, rng):
        """Inserting points more extreme than anything seen at build time
        must grow the translation, not corrupt answers."""
        points = rng.normal(0, 1, size=(200, 3))
        model = QueryModel.uniform(dim=3, low=1.0, high=2.0)
        index = FunctionIndex(points, model, n_indices=5, rng=0)
        extreme = np.array([[-500.0, -500.0, -500.0], [500.0, 500.0, 500.0]])
        index.insert_points(extreme)
        full = np.vstack([points, extreme])
        query = ScalarProductQuery(np.array([1.5, 1.0, 2.0]), 0.5)
        assert np.array_equal(index.query(query.normal, 0.5).ids, brute_force_ids(full, query))

    def test_delete_points(self, rng, uniform_model):
        points = rng.uniform(1, 100, size=(200, 4))
        index = FunctionIndex(points, uniform_model, n_indices=5, rng=0)
        index.delete_points(np.arange(50, dtype=np.int64))
        assert len(index) == 150
        normal = uniform_model.sample_normal(rng)
        query = ScalarProductQuery(normal, 500.0)
        expected = brute_force_ids(points[50:], query, np.arange(50, 200))
        assert np.array_equal(index.query(normal, 500.0).ids, expected)

    def test_add_index(self, uniform_points, uniform_model):
        index = FunctionIndex(uniform_points, uniform_model, n_indices=2, rng=0)
        before = index.n_indices
        assert index.add_index(np.array([1.01, 2.02, 3.03, 4.04]))
        assert index.n_indices == before + 1

    def test_memory_accounts_for_everything(self, uniform_points, uniform_model):
        index = FunctionIndex(uniform_points, uniform_model, n_indices=3, rng=0)
        # raw points + features + >= 1 key array
        assert index.memory_bytes() > 2 * uniform_points.nbytes

    def test_live_ids_and_getters(self, uniform_points, uniform_model):
        index = FunctionIndex(uniform_points, uniform_model, n_indices=2, rng=0)
        ids = index.live_ids()
        assert np.array_equal(ids, np.arange(len(uniform_points)))
        assert np.allclose(index.get_features(ids[:3]), uniform_points[:3])
