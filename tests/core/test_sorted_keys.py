"""Tests for the dynamically maintained sorted key list (Section 4.2/4.4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SortedKeyStore
from repro.exceptions import DimensionMismatchError

key_lists = st.lists(
    st.floats(-1e9, 1e9, allow_nan=False, allow_infinity=False), min_size=1, max_size=60
)


def assert_invariants(store: SortedKeyStore) -> None:
    """Structural invariants: ascending keys, ids unique, lookup consistent."""
    keys = store.sorted_keys
    ids = store.sorted_ids
    assert np.all(np.diff(keys) >= 0)
    assert np.unique(ids).size == ids.size
    for pid, key in zip(ids, keys):
        assert store.key_of(int(pid)) == key


class TestConstruction:
    def test_sorts_on_build(self):
        store = SortedKeyStore(np.array([3.0, 1.0, 2.0]))
        assert np.array_equal(store.sorted_keys, [1.0, 2.0, 3.0])
        assert np.array_equal(store.sorted_ids, [1, 2, 0])

    def test_custom_ids(self):
        store = SortedKeyStore(np.array([2.0, 1.0]), np.array([10, 20]))
        assert np.array_equal(store.sorted_ids, [20, 10])
        assert 10 in store and 30 not in store

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            SortedKeyStore(np.array([1.0, 2.0]), np.array([5, 5]))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DimensionMismatchError):
            SortedKeyStore(np.array([1.0, 2.0]), np.array([1]))

    def test_nonfinite_keys_rejected(self):
        with pytest.raises(ValueError):
            SortedKeyStore(np.array([1.0, np.nan]))

    def test_views_are_read_only(self):
        store = SortedKeyStore(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            store.sorted_keys[0] = 5.0


class TestBinarySearch:
    def test_rank_le_and_lt(self):
        store = SortedKeyStore(np.array([1.0, 2.0, 2.0, 3.0]))
        assert store.rank_le(2.0) == 3
        assert store.rank_lt(2.0) == 1
        assert store.rank_le(0.5) == 0
        assert store.rank_le(9.0) == 4

    def test_rank_ranges(self):
        store = SortedKeyStore(np.array([10.0, 20.0, 30.0]))
        assert np.array_equal(store.ids_in_rank_range(0, 2), [0, 1])
        assert np.array_equal(store.keys_in_rank_range(1, 3), [20.0, 30.0])


class TestUpdate:
    def test_single_update_moves_entry(self):
        store = SortedKeyStore(np.array([1.0, 2.0, 3.0]))
        store.update(0, 5.0)
        assert np.array_equal(store.sorted_keys, [2.0, 3.0, 5.0])
        assert store.key_of(0) == 5.0
        assert_invariants(store)

    def test_update_with_duplicate_keys(self):
        store = SortedKeyStore(np.array([2.0, 2.0, 2.0]), np.array([7, 8, 9]))
        store.update(8, 1.0)
        assert store.key_of(8) == 1.0
        assert store.sorted_ids[0] == 8
        assert_invariants(store)

    def test_update_unknown_id(self):
        store = SortedKeyStore(np.array([1.0]))
        with pytest.raises(KeyError):
            store.update(99, 1.0)

    def test_update_nonfinite_rejected(self):
        store = SortedKeyStore(np.array([1.0]))
        with pytest.raises(ValueError):
            store.update(0, np.inf)

    def test_batch_update_small(self):
        store = SortedKeyStore(np.arange(100.0))
        store.update_batch(np.array([0, 1]), np.array([200.0, 300.0]))
        assert store.key_of(0) == 200.0
        assert store.rank_le(99.0) == 98
        assert_invariants(store)

    def test_batch_update_large_triggers_rebuild(self):
        store = SortedKeyStore(np.arange(10.0))
        ids = np.arange(8)
        store.update_batch(ids, -np.arange(8.0))
        for pid in ids:
            assert store.key_of(int(pid)) == -float(pid)
        assert_invariants(store)

    def test_batch_update_duplicate_ids_rejected(self):
        store = SortedKeyStore(np.arange(5.0))
        with pytest.raises(ValueError):
            store.update_batch(np.array([1, 1]), np.array([0.0, 1.0]))

    def test_batch_update_unknown_id(self):
        store = SortedKeyStore(np.arange(5.0))
        with pytest.raises(KeyError):
            store.update_batch(np.array([42]), np.array([0.0]))

    def test_batch_update_empty_noop(self):
        store = SortedKeyStore(np.arange(5.0))
        store.update_batch(np.array([], dtype=np.int64), np.array([]))
        assert len(store) == 5


class TestInsertDelete:
    def test_insert(self):
        store = SortedKeyStore(np.array([1.0, 3.0]))
        store.insert(np.array([5]), np.array([2.0]))
        assert np.array_equal(store.sorted_keys, [1.0, 2.0, 3.0])
        assert np.array_equal(store.sorted_ids, [0, 5, 1])
        assert_invariants(store)

    def test_insert_existing_id_rejected(self):
        store = SortedKeyStore(np.array([1.0]))
        with pytest.raises(ValueError):
            store.insert(np.array([0]), np.array([2.0]))

    def test_delete(self):
        store = SortedKeyStore(np.array([1.0, 2.0, 3.0]))
        store.delete(np.array([1]))
        assert np.array_equal(store.sorted_keys, [1.0, 3.0])
        assert 1 not in store
        assert_invariants(store)

    def test_delete_unknown_id(self):
        store = SortedKeyStore(np.array([1.0]))
        with pytest.raises(KeyError):
            store.delete(np.array([5]))

    def test_memory_reported(self):
        store = SortedKeyStore(np.arange(1000.0))
        assert store.memory_bytes() >= 1000 * 16
        # Touching the id->key map materializes it and grows the footprint.
        assert store.key_of(0) == 0.0
        assert store.memory_bytes() > 1000 * 16


@given(keys=key_lists, data=st.data())
@settings(max_examples=60, deadline=None)
def test_random_operation_sequences_keep_invariants(keys, data):
    """Property: arbitrary update/insert/delete sequences preserve order."""
    store = SortedKeyStore(np.array(keys))
    next_id = len(keys)
    live = set(range(len(keys)))
    for _ in range(data.draw(st.integers(0, 15))):
        op = data.draw(st.sampled_from(["update", "insert", "delete"]))
        if op == "update" and live:
            pid = data.draw(st.sampled_from(sorted(live)))
            key = data.draw(st.floats(-1e9, 1e9, allow_nan=False, allow_infinity=False))
            store.update(pid, key)
        elif op == "insert":
            key = data.draw(st.floats(-1e9, 1e9, allow_nan=False, allow_infinity=False))
            store.insert(np.array([next_id]), np.array([key]))
            live.add(next_id)
            next_id += 1
        elif op == "delete" and len(live) > 1:
            pid = data.draw(st.sampled_from(sorted(live)))
            store.delete(np.array([pid]))
            live.discard(pid)
    assert len(store) == len(live)
    keys_arr = store.sorted_keys
    assert np.all(np.diff(keys_arr) >= 0)
    assert set(int(i) for i in store.sorted_ids) == live


@given(keys=key_lists, threshold=st.floats(-1e9, 1e9, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_rank_le_matches_bruteforce(keys, threshold):
    store = SortedKeyStore(np.array(keys))
    assert store.rank_le(threshold) == sum(1 for k in keys if k <= threshold)
    assert store.rank_lt(threshold) == sum(1 for k in keys if k < threshold)
