"""Tests for the shared feature store."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FeatureStore
from repro.exceptions import DimensionMismatchError


@pytest.fixture
def store() -> FeatureStore:
    return FeatureStore(np.arange(12.0).reshape(4, 3))


class TestBasics:
    def test_shape_and_len(self, store):
        assert len(store) == 4
        assert store.dim == 3
        assert store.capacity == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FeatureStore(np.empty((0, 3)))

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            FeatureStore(np.array([[1.0, np.inf]]))

    def test_initial_data_copied(self):
        data = np.ones((2, 2))
        store = FeatureStore(data)
        data[0, 0] = 99.0
        assert store.get(np.array([0]))[0, 0] == 1.0

    def test_get_returns_rows(self, store):
        rows = store.get(np.array([2, 0]))
        assert np.array_equal(rows, [[6.0, 7.0, 8.0], [0.0, 1.0, 2.0]])

    def test_get_all(self, store):
        ids, rows = store.get_all()
        assert np.array_equal(ids, [0, 1, 2, 3])
        assert rows.shape == (4, 3)

    def test_out_of_range_id(self, store):
        with pytest.raises(KeyError):
            store.get(np.array([99]))


class TestMutation:
    def test_update(self, store):
        store.update(np.array([1]), np.array([[9.0, 9.0, 9.0]]))
        assert np.array_equal(store.get(np.array([1]))[0], [9.0, 9.0, 9.0])

    def test_update_shape_checked(self, store):
        with pytest.raises(DimensionMismatchError):
            store.update(np.array([1]), np.array([[9.0, 9.0]]))

    def test_update_nonfinite_rejected(self, store):
        with pytest.raises(ValueError):
            store.update(np.array([1]), np.array([[np.nan, 1.0, 1.0]]))

    def test_append_assigns_fresh_ids(self, store):
        new_ids = store.append(np.ones((2, 3)))
        assert np.array_equal(new_ids, [4, 5])
        assert len(store) == 6

    def test_append_empty(self, store):
        assert store.append(np.empty((0, 3))).size == 0

    def test_append_wrong_dim(self, store):
        with pytest.raises(DimensionMismatchError):
            store.append(np.ones((1, 2)))

    def test_delete_makes_id_dead(self, store):
        store.delete(np.array([1]))
        assert len(store) == 3
        assert not store.is_live(1)
        with pytest.raises(KeyError):
            store.get(np.array([1]))

    def test_deleted_ids_not_reused(self, store):
        store.delete(np.array([3]))
        new_ids = store.append(np.zeros((1, 3)))
        assert new_ids[0] == 4

    def test_double_delete_rejected(self, store):
        store.delete(np.array([0]))
        with pytest.raises(KeyError):
            store.delete(np.array([0]))

    def test_duplicate_delete_batch_rejected(self, store):
        with pytest.raises(ValueError):
            store.delete(np.array([0, 0]))

    def test_live_ids_after_churn(self, store):
        store.delete(np.array([0, 2]))
        store.append(np.ones((1, 3)))
        assert np.array_equal(store.live_ids(), [1, 3, 4])

    def test_memory_bytes_positive(self, store):
        assert store.memory_bytes() >= 4 * 3 * 8

class TestLiveIdsInvariant:
    def test_live_ids_survive_churn(self):
        """Pin the ids==positions invariant under heavy interleaved churn.

        ``live_ids`` derives ids from ``nonzero(_live)`` positions; that
        is only correct because rows are never compacted and dead ids are
        never reused.  This regression drives many delete/append rounds
        and cross-checks against an explicitly tracked id set, and that
        every surviving id still fetches the row it was assigned.
        """
        rng = np.random.default_rng(11)
        rows = rng.normal(size=(8, 3))
        store = FeatureStore(rows)
        expected = {i: rows[i].copy() for i in range(8)}
        for round_no in range(25):
            live = sorted(expected)
            if len(live) > 2:
                victims = rng.choice(live, size=rng.integers(1, 3), replace=False)
                store.delete(np.asarray(sorted(victims), dtype=np.int64))
                for victim in victims:
                    del expected[int(victim)]
            fresh = rng.normal(size=(int(rng.integers(1, 4)), 3))
            new_ids = store.append(fresh)
            for offset, new_id in enumerate(new_ids):
                expected[int(new_id)] = fresh[offset].copy()
            assert np.array_equal(store.live_ids(), sorted(expected))
            got = store.get(np.asarray(sorted(expected), dtype=np.int64))
            assert np.array_equal(got, np.vstack([expected[i] for i in sorted(expected)]))
        # Scan paths must agree with the surviving id set too.
        ids, values = store.scan_values(np.array([1.0, 2.0, 3.0]))
        assert np.array_equal(ids, sorted(expected))
        ids_many, values_many = store.scan_values_many(
            np.array([[1.0, 2.0, 3.0], [3.0, 2.0, 1.0]])
        )
        assert np.array_equal(ids_many, sorted(expected))
        assert np.allclose(values_many[:, 0], values)


class TestScanValuesMany:
    def test_columns_match_single_scans(self, store):
        normals = np.array([[1.0, 0.0, 0.0], [0.5, 2.0, -1.0], [3.0, 3.0, 3.0]])
        ids_many, values_many = store.scan_values_many(normals)
        assert values_many.shape == (len(store), 3)
        for column, normal in enumerate(normals):
            ids_one, values_one = store.scan_values(normal)
            assert np.array_equal(ids_many, ids_one)
            assert np.array_equal(values_many[:, column], values_one)

    def test_columns_match_after_deletes(self, store):
        store.delete(np.array([1]))
        normals = np.array([[1.0, 1.0, 1.0], [2.0, 0.0, 1.0]])
        ids_many, values_many = store.scan_values_many(normals)
        assert np.array_equal(ids_many, [0, 2, 3])
        for column, normal in enumerate(normals):
            _, values_one = store.scan_values(normal)
            assert np.array_equal(values_many[:, column], values_one)


class TestReadOnlyBacking:
    def test_from_backing_binds_without_copy(self):
        data = np.arange(12.0).reshape(4, 3)
        store = FeatureStore.from_backing(data)
        assert store._data is data
        assert not store.writable
        assert len(store) == 4

    def test_from_backing_rejects_non_float64(self):
        with pytest.raises(ValueError, match="float64"):
            FeatureStore.from_backing(np.arange(12, dtype=np.int32).reshape(4, 3))

    def test_mutations_raise(self):
        store = FeatureStore.from_backing(np.arange(12.0).reshape(4, 3))
        with pytest.raises(ValueError, match="read-only"):
            store.update(np.array([0]), np.ones((1, 3)))
        with pytest.raises(ValueError, match="read-only"):
            store.append(np.ones((1, 3)))
        with pytest.raises(ValueError, match="read-only"):
            store.delete(np.array([0]))

    def test_reads_still_work(self):
        data = np.arange(12.0).reshape(4, 3)
        store = FeatureStore.from_backing(data)
        assert np.array_equal(store.get(np.array([1, 2])), data[1:3])
        ids, values = store.scan_values(np.array([1.0, 1.0, 1.0]))
        assert np.array_equal(values, data.sum(axis=1))
