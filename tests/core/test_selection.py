"""Tests for best-index selection heuristics (Section 5.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PlanarIndex, ScalarProductQuery, SelectionStrategy
from repro.core.selection import (
    make_selector,
    select_min_angle,
    select_min_stretch,
    select_random,
)
from repro.exceptions import IndexBuildError


@pytest.fixture
def indices(rng):
    features = rng.uniform(1, 100, size=(200, 3))
    normals = [
        np.array([1.0, 1.0, 1.0]),
        np.array([1.0, 2.0, 5.0]),
        np.array([5.0, 1.0, 1.0]),
    ]
    return [PlanarIndex.from_features(features, n) for n in normals]


def working(indices, query):
    return indices[0].working_query(query)


class TestMinStretch:
    def test_parallel_index_selected(self, indices):
        """Corollary 1: a parallel index has zero stretch and must win."""
        query = ScalarProductQuery(np.array([1.0, 2.0, 5.0]), 10.0)
        wq = working(indices, query)
        assert select_min_stretch(indices, wq) == 1

    def test_scaled_parallel_also_wins(self, indices):
        query = ScalarProductQuery(np.array([2.0, 4.0, 10.0]), 10.0)
        assert select_min_stretch(indices, working(indices, query)) == 1

    def test_empty_collection_raises(self, indices):
        query = ScalarProductQuery(np.array([1.0, 1.0, 1.0]), 10.0)
        with pytest.raises(IndexBuildError):
            select_min_stretch([], working(indices, query))


class TestMinAngle:
    def test_parallel_index_selected(self, indices):
        query = ScalarProductQuery(np.array([5.0, 1.0, 1.0]), 10.0)
        assert select_min_angle(indices, working(indices, query)) == 2

    def test_agrees_with_stretch_on_parallel(self, indices):
        for pos, normal in enumerate([[1.0, 1.0, 1.0], [1.0, 2.0, 5.0], [5.0, 1.0, 1.0]]):
            query = ScalarProductQuery(np.array(normal), 25.0)
            wq = working(indices, query)
            assert select_min_angle(indices, wq) == pos
            assert select_min_stretch(indices, wq) == pos


class TestRandom:
    def test_in_range_and_reproducible(self, indices):
        query = ScalarProductQuery(np.array([1.0, 1.0, 1.0]), 10.0)
        wq = working(indices, query)
        picks_a = [select_random(indices, wq, np.random.default_rng(7)) for _ in range(5)]
        picks_b = [select_random(indices, wq, np.random.default_rng(7)) for _ in range(5)]
        assert picks_a == picks_b
        assert all(0 <= p < 3 for p in picks_a)


class TestMakeSelector:
    def test_strategy_round_trip(self, indices):
        query = ScalarProductQuery(np.array([1.0, 2.0, 5.0]), 10.0)
        wq = working(indices, query)
        assert make_selector(SelectionStrategy.MIN_STRETCH)(indices, wq) == 1
        assert make_selector("min_angle")(indices, wq) == 1
        pick = make_selector("random", rng=0)(indices, wq)
        assert 0 <= pick < 3

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            make_selector("best_guess")


class TestStretchValues:
    def test_stretch_decreases_with_alignment(self, rng):
        """An index closer to parallel yields a smaller max stretch."""
        features = rng.uniform(1, 100, size=(50, 3))
        query = ScalarProductQuery(np.array([1.0, 2.0, 5.0]), 10.0)
        aligned = PlanarIndex.from_features(features, np.array([1.0, 2.0, 4.5]))
        skewed = PlanarIndex.from_features(features, np.array([5.0, 1.0, 1.0]))
        wq = aligned.working_query(query)
        assert aligned.max_stretch(wq) < skewed.max_stretch(wq)
