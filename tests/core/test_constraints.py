"""Tests for conjunctive linear-constraint queries."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ConjunctiveQuery,
    FunctionIndex,
    QueryModel,
    ScalarProductQuery,
)
from repro.exceptions import InvalidQueryError


@pytest.fixture
def setup(rng):
    points = rng.uniform(1, 100, size=(3000, 4))
    model = QueryModel.uniform(dim=4, low=1.0, high=5.0, rq=4)
    index = FunctionIndex(points, model, n_indices=30, rng=0)
    return points, model, index


class TestConjunctiveQuery:
    def test_empty_rejected(self):
        with pytest.raises(InvalidQueryError):
            ConjunctiveQuery([])

    def test_dim_mismatch_rejected(self):
        with pytest.raises(InvalidQueryError):
            ConjunctiveQuery(
                [
                    ScalarProductQuery(np.ones(2), 1.0),
                    ScalarProductQuery(np.ones(3), 1.0),
                ]
            )

    def test_evaluate_is_logical_and(self, rng):
        points = rng.uniform(0, 10, size=(100, 2))
        c1 = ScalarProductQuery(np.array([1.0, 0.001]), 5.0)
        c2 = ScalarProductQuery(np.array([0.001, 1.0]), 5.0)
        conj = ConjunctiveQuery([c1, c2])
        expected = c1.evaluate(points) & c2.evaluate(points)
        assert np.array_equal(conj.evaluate(points), expected)


class TestAnswerConjunction:
    def test_two_constraints_exact(self, setup, rng):
        points, model, index = setup
        for _ in range(5):
            c1 = ScalarProductQuery(model.sample_normal(rng), float(rng.uniform(400, 900)))
            c2 = ScalarProductQuery(model.sample_normal(rng), float(rng.uniform(300, 700)), ">=")
            answer = index.query_conjunction([c1, c2])
            truth = np.nonzero(c1.evaluate(points) & c2.evaluate(points))[0]
            assert np.array_equal(answer.ids, truth)
            assert 0.0 <= answer.pruned_fraction <= 1.0

    def test_three_constraints_exact(self, setup, rng):
        points, model, index = setup
        constraints = [
            ScalarProductQuery(model.sample_normal(rng), 800.0),
            ScalarProductQuery(model.sample_normal(rng), 200.0, ">"),
            ScalarProductQuery(model.sample_normal(rng), 900.0, "<"),
        ]
        answer = index.query_conjunction(constraints)
        mask = np.ones(len(points), dtype=bool)
        for constraint in constraints:
            mask &= constraint.evaluate(points)
        assert np.array_equal(answer.ids, np.nonzero(mask)[0])

    def test_tuple_constraints_accepted(self, setup, rng):
        points, model, index = setup
        normal = model.sample_normal(rng)
        answer = index.query_conjunction([(normal, 500.0), (normal, 100.0, ">=")])
        truth = np.nonzero((points @ normal <= 500.0) & (points @ normal >= 100.0))[0]
        assert np.array_equal(answer.ids, truth)

    def test_contradictory_constraints_empty(self, setup, rng):
        points, model, index = setup
        normal = model.sample_normal(rng)
        answer = index.query_conjunction([(normal, 100.0), (normal, 200.0, ">")])
        assert len(answer) == 0

    def test_single_constraint_matches_plain_query(self, setup, rng):
        points, model, index = setup
        normal = model.sample_normal(rng)
        conj = index.query_conjunction([(normal, 500.0)])
        plain = index.query(normal, 500.0)
        assert np.array_equal(conj.ids, plain.ids)

    def test_pruning_reported_per_constraint(self, setup, rng):
        points, model, index = setup
        answer = index.query_conjunction(
            [(model.sample_normal(rng), 500.0), (model.sample_normal(rng), 600.0)]
        )
        assert len(answer.per_constraint) == 2
        for stats in answer.per_constraint:
            assert stats.n_total == len(points)


@given(seed=st.integers(0, 500), n_constraints=st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_property_conjunction_exact(seed, n_constraints):
    rng = np.random.default_rng(seed)
    points = rng.uniform(1, 50, size=(400, 3))
    model = QueryModel.uniform(dim=3, low=1.0, high=4.0)
    index = FunctionIndex(points, model, n_indices=8, rng=seed)
    ops = ["<=", "<", ">=", ">"]
    constraints = [
        ScalarProductQuery(
            model.sample_normal(rng),
            float(rng.uniform(50, 400)),
            ops[int(rng.integers(0, 4))],
        )
        for _ in range(n_constraints)
    ]
    answer = index.query_conjunction(constraints)
    mask = np.ones(len(points), dtype=bool)
    for constraint in constraints:
        mask &= constraint.evaluate(points)
    assert np.array_equal(answer.ids, np.nonzero(mask)[0])
