"""Tests for disjunctive queries and the EXPLAIN planner introspection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DisjunctiveQuery,
    FunctionIndex,
    QueryModel,
    ScalarProductQuery,
)
from repro.exceptions import InvalidQueryError


@pytest.fixture
def setup(rng):
    points = rng.uniform(1, 100, size=(3000, 4))
    model = QueryModel.uniform(dim=4, low=1.0, high=5.0, rq=4)
    index = FunctionIndex(points, model, n_indices=30, rng=0)
    return points, model, index


class TestDisjunctiveQuery:
    def test_empty_rejected(self):
        with pytest.raises(InvalidQueryError):
            DisjunctiveQuery([])

    def test_dim_mismatch_rejected(self):
        with pytest.raises(InvalidQueryError):
            DisjunctiveQuery(
                [ScalarProductQuery(np.ones(2), 1.0), ScalarProductQuery(np.ones(3), 1.0)]
            )

    def test_evaluate_is_logical_or(self, rng):
        points = rng.uniform(0, 10, size=(100, 2))
        c1 = ScalarProductQuery(np.array([1.0, 0.001]), 3.0)
        c2 = ScalarProductQuery(np.array([0.001, 1.0]), 3.0)
        disj = DisjunctiveQuery([c1, c2])
        expected = c1.evaluate(points) | c2.evaluate(points)
        assert np.array_equal(disj.evaluate(points), expected)


class TestAnswerDisjunction:
    def test_two_constraints_exact(self, setup, rng):
        points, model, index = setup
        for _ in range(5):
            c1 = ScalarProductQuery(model.sample_normal(rng), float(rng.uniform(300, 600)))
            c2 = ScalarProductQuery(model.sample_normal(rng), float(rng.uniform(700, 1000)), ">=")
            answer = index.query_disjunction([c1, c2])
            truth = np.nonzero(c1.evaluate(points) | c2.evaluate(points))[0]
            assert np.array_equal(answer.ids, truth)

    def test_tautology_returns_everything(self, setup, rng):
        points, model, index = setup
        normal = model.sample_normal(rng)
        answer = index.query_disjunction([(normal, 500.0), (normal, 500.0, ">")])
        assert len(answer) == len(points)

    def test_single_constraint_matches_plain_query(self, setup, rng):
        points, model, index = setup
        normal = model.sample_normal(rng)
        disj = index.query_disjunction([(normal, 500.0)])
        plain = index.query(normal, 500.0)
        assert np.array_equal(disj.ids, plain.ids)

    def test_conjunction_subset_of_disjunction(self, setup, rng):
        points, model, index = setup
        constraints = [
            (model.sample_normal(rng), 600.0),
            (model.sample_normal(rng), 500.0),
        ]
        conj = set(index.query_conjunction(constraints).ids.tolist())
        disj = set(index.query_disjunction(constraints).ids.tolist())
        assert conj <= disj


@given(seed=st.integers(0, 300), n_constraints=st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_property_disjunction_exact(seed, n_constraints):
    rng = np.random.default_rng(seed)
    points = rng.uniform(1, 50, size=(300, 3))
    model = QueryModel.uniform(dim=3, low=1.0, high=4.0)
    index = FunctionIndex(points, model, n_indices=8, rng=seed)
    ops = ["<=", "<", ">=", ">"]
    constraints = [
        ScalarProductQuery(
            model.sample_normal(rng),
            float(rng.uniform(50, 400)),
            ops[int(rng.integers(0, 4))],
        )
        for _ in range(n_constraints)
    ]
    answer = index.query_disjunction(constraints)
    mask = np.zeros(len(points), dtype=bool)
    for constraint in constraints:
        mask |= constraint.evaluate(points)
    assert np.array_equal(answer.ids, np.nonzero(mask)[0])


class TestExplain:
    def test_intervals_route_for_matched_query(self, setup):
        points, model, index = setup
        # Query with an existing index normal: near-empty intermediate.
        normal = index.collection[0].normal
        plan = index.explain(normal, 500.0)
        assert plan["route"] == "intervals"
        assert plan["ii_size"] <= 1
        assert plan["si_size"] + plan["ii_size"] + plan["li_size"] == plan["n_total"]
        assert plan["expected_verified"] == plan["ii_size"]

    def test_scan_route_for_hostile_query(self, rng):
        points = rng.uniform(1, 100, size=(2000, 2))
        model = QueryModel.uniform(dim=2, low=1.0, high=50.0)
        index = FunctionIndex(points, model, normals=np.array([[1.0, 50.0]]), rng=0)
        plan = index.explain(np.array([50.0, 1.0]), 2000.0)
        assert plan["route"] == "scan"
        assert plan["expected_verified"] == plan["n_total"]

    def test_octant_fallback_route(self, setup):
        _, _, index = setup
        plan = index.explain(np.array([-1.0, -1.0, -1.0, -1.0]), 100.0)
        assert plan["route"] == "octant-fallback"
        assert "reason" in plan

    def test_plan_matches_execution(self, setup, rng):
        points, model, index = setup
        normal = model.sample_normal(rng)
        plan = index.explain(normal, 500.0)
        answer = index.query(normal, 500.0)
        assert plan["n_total"] == answer.stats.n_total
        assert plan["ii_size"] == answer.stats.ii_size
        assert answer.stats.n_verified == plan["expected_verified"]
