"""Tests for the single Planar index: intervals, Algorithm 1, maintenance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import (
    Comparison,
    FeatureStore,
    PlanarIndex,
    ScalarProductQuery,
)
from repro.exceptions import DimensionMismatchError, IndexBuildError
from repro.geometry import Translator

from ..conftest import brute_force_ids


def make_index(features: np.ndarray, normal: np.ndarray) -> PlanarIndex:
    return PlanarIndex.from_features(features, normal)


class TestConstruction:
    def test_standalone_build(self, rng):
        features = rng.uniform(1, 100, size=(100, 3))
        index = make_index(features, np.array([1.0, 2.0, 3.0]))
        assert len(index) == 100
        assert index.dim == 3

    def test_dimension_mismatch(self, rng):
        store = FeatureStore(rng.uniform(1, 2, (10, 3)))
        translator = Translator(np.ones(3))
        with pytest.raises(IndexBuildError):
            PlanarIndex(np.array([1.0, 2.0]), store, translator)

    def test_octant_incompatible_normal(self, rng):
        store = FeatureStore(rng.uniform(1, 2, (10, 2)))
        translator = Translator(np.ones(2))
        with pytest.raises(IndexBuildError):
            PlanarIndex(np.array([1.0, -1.0]), store, translator)

    def test_normal_read_only(self, rng):
        index = make_index(rng.uniform(1, 2, (10, 2)), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            index.normal[0] = 5.0

    def test_memory_scales_with_n(self, rng):
        small = make_index(rng.uniform(1, 2, (100, 2)), np.array([1.0, 1.0]))
        large = make_index(rng.uniform(1, 2, (1000, 2)), np.array([1.0, 1.0]))
        assert large.memory_bytes() > small.memory_bytes()


class TestIntervalGeometry:
    def test_parallel_index_empty_intermediate(self, rng):
        """Corollary 1: a parallel index has zero-size intermediate interval
        (up to the floating-point guard band around the threshold)."""
        features = rng.uniform(1, 100, size=(500, 3))
        normal = np.array([2.0, 3.0, 4.0])
        index = make_index(features, normal)
        query = ScalarProductQuery(normal, 250.0)
        wq = index.working_query(query)
        r_lo, r_hi, n = index.interval_ranks(wq)
        assert r_hi - r_lo <= 1
        assert index.max_stretch(wq) == pytest.approx(0.0, abs=1e-9)
        assert index.angle_cosine(wq) == pytest.approx(1.0)

    def test_example4_stretch(self):
        """The paper's Example 4: max stretch of index (1,1,2) vs
        query Y1 + 2 Y2 + 5 Y3 = 10 is 6."""
        features = np.array([[1.0, 1.0, 1.0]])
        index = make_index(features, np.array([1.0, 1.0, 2.0]))
        query = ScalarProductQuery(np.array([1.0, 2.0, 5.0]), 10.0)
        wq = index.working_query(query)
        assert index.max_stretch(wq) == pytest.approx(6.0)

    def test_interval_partition_covers_everything(self, rng):
        features = rng.uniform(1, 100, size=(300, 4))
        index = make_index(features, np.array([1.0, 2.0, 1.5, 3.0]))
        query = ScalarProductQuery(np.array([2.0, 1.0, 3.0, 1.0]), 300.0)
        r_lo, r_hi, n = index.interval_ranks(index.working_query(query))
        assert 0 <= r_lo <= r_hi <= n == 300

    def test_si_points_satisfy_and_li_points_violate(self, rng):
        """Observations 1 and 2: SI certain-accept (strictly), LI
        certain-reject (strictly)."""
        features = rng.uniform(1, 100, size=(1000, 3))
        index = make_index(features, np.array([1.0, 3.0, 2.0]))
        query = ScalarProductQuery(np.array([2.0, 1.0, 4.0]), 350.0)
        wq = index.working_query(query)
        r_lo, r_hi, n = index.interval_ranks(wq)
        si_ids = index._keys.ids_in_rank_range(0, r_lo)
        li_ids = index._keys.ids_in_rank_range(r_hi, n)
        assert np.all(features[si_ids] @ query.normal < query.offset)
        assert np.all(features[li_ids] @ query.normal > query.offset)


class TestInequalityCorrectness:
    @pytest.mark.parametrize("op", ["<=", "<", ">=", ">"])
    def test_matches_bruteforce_first_octant(self, rng, op):
        features = rng.uniform(1, 100, size=(800, 4))
        index = make_index(features, np.array([1.0, 2.0, 3.0, 4.0]))
        for _ in range(10):
            normal = rng.uniform(1.0, 5.0, 4)
            offset = float(rng.uniform(50, 800))
            query = ScalarProductQuery(normal, offset, op)
            result = index.query(query)
            assert np.array_equal(result.ids, brute_force_ids(features, query))

    def test_boundary_points_exact(self):
        """Points exactly on the query hyperplane split correctly per op."""
        features = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        index = make_index(features, np.array([1.0, 1.0]))
        query_le = ScalarProductQuery(np.array([1.0, 1.0]), 4.0, "<=")
        query_lt = ScalarProductQuery(np.array([1.0, 1.0]), 4.0, "<")
        query_ge = ScalarProductQuery(np.array([1.0, 1.0]), 4.0, ">=")
        query_gt = ScalarProductQuery(np.array([1.0, 1.0]), 4.0, ">")
        assert np.array_equal(index.query(query_le).ids, [0, 1])
        assert np.array_equal(index.query(query_lt).ids, [0])
        assert np.array_equal(index.query(query_ge).ids, [1, 2])
        assert np.array_equal(index.query(query_gt).ids, [2])

    def test_stats_consistency(self, rng):
        features = rng.uniform(1, 100, size=(500, 3))
        index = make_index(features, np.array([1.0, 1.0, 1.0]))
        query = ScalarProductQuery(np.array([2.0, 1.0, 3.0]), 300.0)
        result = index.query(query)
        stats = result.stats
        assert stats.n_total == 500
        assert stats.si_size + stats.ii_size + stats.li_size == 500
        assert stats.n_verified == stats.ii_size
        assert stats.n_results == len(result)
        assert 0.0 <= stats.pruned_fraction <= 1.0

    def test_query_dimension_mismatch(self, rng):
        index = make_index(rng.uniform(1, 2, (10, 3)), np.array([1.0, 1.0, 1.0]))
        with pytest.raises(DimensionMismatchError):
            index.query(ScalarProductQuery(np.array([1.0, 1.0]), 1.0))

    def test_empty_result(self, rng):
        features = rng.uniform(1, 100, size=(100, 2))
        index = make_index(features, np.array([1.0, 1.0]))
        result = index.query(ScalarProductQuery(np.array([1.0, 1.0]), 0.5))
        assert len(result) == 0

    def test_all_satisfying(self, rng):
        features = rng.uniform(1, 2, size=(100, 2))
        index = make_index(features, np.array([1.0, 1.0]))
        result = index.query(ScalarProductQuery(np.array([1.0, 1.0]), 1e9))
        assert len(result) == 100


class TestMixedSignData:
    @pytest.mark.parametrize("op", ["<=", ">="])
    def test_negative_coordinates(self, rng, op):
        features = rng.normal(0, 5, size=(400, 3))
        index = make_index(features, np.array([1.0, 2.0, 1.0]))
        for _ in range(10):
            query = ScalarProductQuery(
                rng.uniform(0.5, 3.0, 3), float(rng.uniform(-10, 10)), op
            )
            result = index.query(query)
            assert np.array_equal(result.ids, brute_force_ids(features, query))

    def test_negative_octant_normal(self, rng):
        features = rng.normal(0, 5, size=(300, 2))
        index = make_index(features, np.array([-1.0, -2.0]))
        query = ScalarProductQuery(np.array([-1.5, -1.0]), 3.0)
        result = index.query(query)
        assert np.array_equal(result.ids, brute_force_ids(features, query))


class TestDynamicMaintenance:
    def test_rekey_reflects_updates(self, rng):
        features = rng.uniform(1, 100, size=(200, 2)).copy()
        store = FeatureStore(features)
        translator = Translator(np.ones(2))
        translator.observe(features)
        index = PlanarIndex(np.array([1.0, 1.0]), store, translator)
        new_rows = rng.uniform(1, 100, size=(20, 2))
        ids = np.arange(20, dtype=np.int64)
        store.update(ids, new_rows)
        index.rekey(ids, new_rows)
        features[:20] = new_rows
        query = ScalarProductQuery(np.array([1.0, 2.0]), 150.0)
        assert np.array_equal(index.query(query).ids, brute_force_ids(features, query))

    def test_insert_and_delete(self, rng):
        features = rng.uniform(1, 100, size=(100, 2))
        store = FeatureStore(features)
        translator = Translator(np.ones(2))
        translator.observe(features)
        index = PlanarIndex(np.array([1.0, 1.0]), store, translator)

        extra = rng.uniform(1, 100, size=(30, 2))
        new_ids = store.append(extra)
        index.insert(new_ids, extra)
        assert len(index) == 130

        index.delete(np.arange(10, dtype=np.int64))
        store.delete(np.arange(10, dtype=np.int64))
        assert len(index) == 120

        live_ids, live_rows = store.get_all()
        query = ScalarProductQuery(np.array([2.0, 1.0]), 170.0)
        expected = brute_force_ids(live_rows, query, live_ids)
        assert np.array_equal(index.query(query).ids, expected)

    def test_rekey_and_insert_share_key_computation(self, rng):
        """Both maintenance entry points rebuild keys through one helper
        (``_compute_keys``); this drives each with awkward inputs —
        float32 rows, Fortran order, strided views — and checks the
        stored keys are the float64 ``rows @ normal`` products exactly.
        """
        features = rng.uniform(1, 100, size=(80, 3)).copy()
        store = FeatureStore(features)
        translator = Translator(np.ones(3))
        translator.observe(features)
        normal = np.array([2.0, 1.0, 3.0])
        index = PlanarIndex(normal, store, translator)

        # rekey with a float32 Fortran-order matrix.
        moved = np.asfortranarray(
            rng.uniform(1, 100, size=(12, 3)).astype(np.float32)
        )
        ids = np.arange(12, dtype=np.int64)
        store.update(ids, moved)
        index.rekey(ids, moved)
        expected_keys = np.ascontiguousarray(moved, dtype=np.float64) @ normal
        rank = np.searchsorted(index._keys.sorted_keys, expected_keys)
        # Every rekeyed id sits at a position whose stored key equals the
        # exact float64 product.
        for row, point_id in enumerate(ids):
            positions = np.nonzero(index._keys.sorted_ids == point_id)[0]
            assert index._keys.sorted_keys[positions[0]] == expected_keys[row]
        del rank

        # insert with a strided (every-other-row) view.
        block = rng.uniform(1, 100, size=(20, 3))
        fresh = block[::2]
        new_ids = store.append(fresh)
        index.insert(new_ids, fresh)
        inserted_keys = np.ascontiguousarray(fresh, dtype=np.float64) @ normal
        for row, point_id in enumerate(new_ids):
            positions = np.nonzero(index._keys.sorted_ids == point_id)[0]
            assert index._keys.sorted_keys[positions[0]] == inserted_keys[row]

        # And the index still answers exactly over the churned store.
        live_ids, live_rows = store.get_all()
        query = ScalarProductQuery(np.array([1.0, 2.0, 1.0]), 250.0)
        expected = brute_force_ids(live_rows, query, live_ids)
        assert np.array_equal(index.query(query).ids, expected)


@given(
    features=hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 60), st.integers(1, 4)),
        elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
    ),
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_property_exactness_all_ops(features, data):
    """Property: index answers equal brute force for random data and queries."""
    dim = features.shape[1]
    normal_signs = data.draw(hnp.arrays(np.int8, dim, elements=st.sampled_from([-1, 1])))
    magnitudes = data.draw(
        hnp.arrays(np.float64, dim, elements=st.floats(0.1, 10.0, allow_nan=False))
    )
    index_normal = normal_signs * magnitudes
    query_mags = data.draw(
        hnp.arrays(np.float64, dim, elements=st.floats(0.1, 10.0, allow_nan=False))
    )
    query_normal = normal_signs * query_mags
    offset = data.draw(st.floats(-500, 500, allow_nan=False))
    op = data.draw(st.sampled_from(["<=", "<", ">=", ">"]))

    index = PlanarIndex.from_features(features, index_normal)
    query = ScalarProductQuery(query_normal, offset, op)
    result = index.query(query)
    expected = brute_force_ids(features, query)
    if np.array_equal(result.ids, expected):
        return
    # The answers may legitimately differ on points whose scalar product
    # ties the offset at the ulp level: the oracle's full-matrix BLAS dot
    # and the index's candidate-subset dot are different (both correct)
    # roundings of the same real number.  Away from such ties the answer
    # must be identical.
    values = features @ query.normal
    scale = max(1.0, abs(offset), float(np.abs(values).max()))
    boundary = set(np.nonzero(np.abs(values - offset) <= 1e-9 * scale)[0].tolist())
    assert set(result.ids.tolist()) ^ set(expected.tolist()) <= boundary
