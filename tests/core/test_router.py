"""Tests for the collection's cost-based scan router and related paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FeatureStore,
    FunctionIndex,
    PlanarIndexCollection,
    QueryModel,
    ScalarProductQuery,
)
from repro.geometry import Translator

from ..conftest import brute_force_ids


def build_collection(points, normals):
    store = FeatureStore(points)
    translator = Translator(np.ones(points.shape[1]))
    translator.observe(points)
    return PlanarIndexCollection(store, translator, normals)


class TestScanRouter:
    def test_bad_index_triggers_scan_and_stays_exact(self, rng):
        """A single index orthogonal-ish to the query produces a huge
        intermediate interval; the router must scan and stay exact."""
        points = rng.uniform(1, 100, size=(3000, 2))
        # Index along (1, 50): nearly parallel to axis 2.
        collection = build_collection(points, np.array([[1.0, 50.0]]))
        query = ScalarProductQuery(np.array([50.0, 1.0]), 2000.0)
        result = collection.query(query)
        assert np.array_equal(result.ids, brute_force_ids(points, query))
        # The router verified everything (scan), visible in the stats.
        assert result.stats.n_verified == result.stats.n_total
        assert result.stats.ii_size > 0.2 * result.stats.n_total

    def test_good_index_avoids_scan(self, rng):
        points = rng.uniform(1, 100, size=(3000, 2))
        collection = build_collection(points, np.array([[2.0, 3.0]]))
        query = ScalarProductQuery(np.array([2.0, 3.0]), 250.0)
        result = collection.query(query)
        assert result.stats.n_verified < 0.01 * result.stats.n_total
        assert np.array_equal(result.ids, brute_force_ids(points, query))

    def test_router_exact_after_deletions(self, rng):
        """scan_values must honour liveness when the store has dead rows."""
        points = rng.uniform(1, 100, size=(2000, 2))
        model = QueryModel.uniform(dim=2, low=1.0, high=50.0)
        index = FunctionIndex(points, model, normals=np.array([[1.0, 50.0]]), rng=0)
        index.delete_points(np.arange(200, dtype=np.int64))
        query = ScalarProductQuery(np.array([50.0, 1.0]), 2000.0)
        answer = index.query(query.normal, query.offset)
        expected = brute_force_ids(points[200:], query, np.arange(200, 2000))
        assert np.array_equal(answer.ids, expected)
        assert answer.stats.n_verified == answer.stats.n_total  # scanned

    @pytest.mark.parametrize("op", ["<=", "<", ">=", ">"])
    def test_router_exact_for_all_ops(self, rng, op):
        points = rng.uniform(1, 100, size=(2000, 3))
        collection = build_collection(points, np.array([[1.0, 80.0, 1.0]]))
        query = ScalarProductQuery(np.array([80.0, 1.0, 1.0]), 3000.0, op)
        result = collection.query(query)
        assert np.array_equal(result.ids, brute_force_ids(points, query))


class TestExplicitNormals:
    def test_function_index_with_explicit_normals(self, rng):
        points = rng.uniform(1, 100, size=(1000, 3))
        model = QueryModel.uniform(dim=3, low=1.0, high=5.0)
        normals = np.array([[1.0, 2.0, 3.0], [3.0, 2.0, 1.0]])
        index = FunctionIndex(points, model, normals=normals, rng=0)
        assert index.n_indices == 2
        assert np.allclose(index.collection.normals, normals)

    def test_explicit_normals_deduped(self, rng):
        points = rng.uniform(1, 100, size=(100, 2))
        model = QueryModel.uniform(dim=2, low=1.0, high=5.0)
        normals = np.array([[1.0, 2.0], [2.0, 4.0], [2.0, 1.0]])
        index = FunctionIndex(points, model, normals=normals, rng=0)
        assert index.n_indices == 2


class TestPruningMetricSemantics:
    def test_pruned_fraction_is_interval_based(self, rng):
        """Even when the router scans, the pruning metric reflects the
        intervals (the Figures 9/10 semantics)."""
        points = rng.uniform(1, 100, size=(3000, 2))
        collection = build_collection(points, np.array([[1.0, 1.0]]))
        query = ScalarProductQuery(np.array([1.0, 1.0]), 100.0)
        result = collection.query(query)
        stats = result.stats
        expected = (stats.si_size + stats.li_size) / stats.n_total
        assert stats.pruned_fraction == pytest.approx(expected)
