"""Tests for the batched inequality-query API."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FunctionIndex, QueryModel, ScalarProductQuery
from repro.exceptions import DimensionMismatchError

from ..conftest import brute_force_ids


@pytest.fixture
def setup(rng):
    points = rng.uniform(1, 100, size=(4000, 4))
    model = QueryModel.uniform(dim=4, low=1.0, high=5.0, rq=4)
    index = FunctionIndex(points, model, n_indices=30, rng=0)
    return points, model, index


class TestCollectionBatch:
    def test_matches_individual_queries(self, setup, rng):
        points, model, index = setup
        normals = model.sample_normals(15, rng)
        offsets = rng.uniform(100, 900, 15)
        batch = index.query_batch(normals, offsets)
        assert len(batch) == 15
        for row, answer in enumerate(batch):
            single = index.query(normals[row], float(offsets[row]))
            assert np.array_equal(answer.ids, single.ids)
            assert answer.stats.n_verified == single.stats.n_verified

    def test_matches_bruteforce(self, setup, rng):
        points, model, index = setup
        normals = model.sample_normals(10, rng)
        offsets = rng.uniform(100, 900, 10)
        for row, answer in enumerate(index.query_batch(normals, offsets)):
            query = ScalarProductQuery(normals[row], float(offsets[row]))
            assert np.array_equal(answer.ids, brute_force_ids(points, query))

    @pytest.mark.parametrize("op", ["<", ">=", ">"])
    def test_other_operators(self, setup, rng, op):
        points, model, index = setup
        normals = model.sample_normals(6, rng)
        offsets = rng.uniform(100, 900, 6)
        for row, answer in enumerate(index.query_batch(normals, offsets, op)):
            query = ScalarProductQuery(normals[row], float(offsets[row]), op)
            assert np.array_equal(answer.ids, brute_force_ids(points, query))

    def test_scan_router_inside_batch(self, rng):
        """Queries whose intermediate interval is huge must route to the
        scan inside the batch path too."""
        points = rng.uniform(1, 100, size=(3000, 2))
        model = QueryModel.uniform(dim=2, low=1.0, high=50.0)
        index = FunctionIndex(points, model, normals=np.array([[1.0, 50.0]]), rng=0)
        normals = np.array([[50.0, 1.0], [1.0, 50.0]])
        offsets = np.array([2000.0, 2000.0])
        hostile, friendly = index.query_batch(normals, offsets)
        assert hostile.stats.n_verified == hostile.stats.n_total  # scanned
        assert friendly.stats.n_verified < friendly.stats.n_total
        for row, answer in enumerate((hostile, friendly)):
            query = ScalarProductQuery(normals[row], float(offsets[row]))
            assert np.array_equal(answer.ids, brute_force_ids(points, query))

    def test_octant_fallback_per_query(self, setup, rng):
        points, model, index = setup
        normals = np.vstack(
            [model.sample_normal(rng), -np.abs(model.sample_normal(rng))]
        )
        offsets = np.array([500.0, 500.0])
        good, fallback = index.query_batch(normals, offsets)
        assert not good.used_fallback
        assert fallback.used_fallback
        query = ScalarProductQuery(normals[1], 500.0)
        assert np.array_equal(fallback.ids, brute_force_ids(points, query))

    def test_shape_validation(self, setup):
        _, _, index = setup
        with pytest.raises(DimensionMismatchError):
            index.query_batch(np.ones((3, 4)), np.ones(2))

    def test_empty_batch(self, setup):
        _, _, index = setup
        assert index.query_batch(np.empty((0, 4)), np.empty(0)) == []
