"""Model-based stateful testing of the dynamic FunctionIndex.

A hypothesis ``RuleBasedStateMachine`` drives a :class:`FunctionIndex`
through random interleavings of point updates, inserts, deletes, index
additions, and queries of both problem types — checking every answer
against a plain-array model.  This is the kind of test that catches
sorted-order corruption, stale translator state, and id-bookkeeping bugs
that example-based tests miss.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro import FunctionIndex, QueryModel, ScalarProductQuery

DIM = 3
VALUE = st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False)
POINT = st.lists(VALUE, min_size=DIM, max_size=DIM)


class FunctionIndexMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        rng = np.random.default_rng(0)
        initial = rng.uniform(-10.0, 10.0, size=(50, DIM))
        self.model_points: dict[int, np.ndarray] = {
            i: initial[i].copy() for i in range(50)
        }
        self.query_model = QueryModel.uniform(dim=DIM, low=0.5, high=4.0)
        self.index = FunctionIndex(initial, self.query_model, n_indices=4, rng=0)

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #

    @rule(point=POINT, data=st.data())
    def update_point(self, point, data):
        ids = sorted(self.model_points)
        target = data.draw(st.sampled_from(ids))
        values = np.asarray(point)
        self.index.update_points(np.array([target]), values.reshape(1, -1))
        self.model_points[target] = values

    @rule(point=POINT)
    def insert_point(self, point):
        values = np.asarray(point).reshape(1, -1)
        new_ids = self.index.insert_points(values)
        assert new_ids.size == 1
        assert int(new_ids[0]) not in self.model_points
        self.model_points[int(new_ids[0])] = values[0]

    @precondition(lambda self: len(self.model_points) > 5)
    @rule(data=st.data())
    def delete_point(self, data):
        ids = sorted(self.model_points)
        target = data.draw(st.sampled_from(ids))
        self.index.delete_points(np.array([target]))
        del self.model_points[target]

    @rule(seed=st.integers(0, 2**16))
    def add_index(self, seed):
        normal = self.query_model.sample_normal(seed)
        self.index.add_index(normal)

    # ------------------------------------------------------------------ #
    # Queries checked against the model
    # ------------------------------------------------------------------ #

    def _model_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        ids = np.array(sorted(self.model_points), dtype=np.int64)
        rows = np.vstack([self.model_points[int(i)] for i in ids])
        return ids, rows

    @rule(
        seed=st.integers(0, 2**16),
        offset=st.floats(-100.0, 100.0, allow_nan=False),
        op=st.sampled_from(["<=", "<", ">=", ">"]),
    )
    def inequality_query(self, seed, offset, op):
        normal = self.query_model.sample_normal(seed)
        answer = self.index.query(normal, offset, op)
        ids, rows = self._model_arrays()
        expected = ids[ScalarProductQuery(normal, offset, op).evaluate(rows)]
        assert np.array_equal(answer.ids, expected)

    @rule(
        seed=st.integers(0, 2**16),
        offset=st.floats(-50.0, 50.0, allow_nan=False),
        k=st.integers(1, 10),
    )
    def topk_query(self, seed, offset, k):
        normal = self.query_model.sample_normal(seed)
        result = self.index.topk(normal, offset, k)
        ids, rows = self._model_arrays()
        values = rows @ normal
        mask = values <= offset
        distances = np.abs(values[mask] - offset) / np.linalg.norm(normal)
        expected = np.sort(distances)[:k]
        assert np.allclose(result.distances, expected, atol=1e-9)

    # ------------------------------------------------------------------ #

    @invariant()
    def sizes_agree(self):
        assert len(self.index) == len(self.model_points)

    @invariant()
    def every_index_sorted(self):
        for planar in self.index.collection:
            keys = planar._keys.sorted_keys
            assert np.all(np.diff(keys) >= 0)


TestFunctionIndexStateful = FunctionIndexMachine.TestCase
TestFunctionIndexStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
