"""Property tests: ``query_batch`` is exactly the loop of single queries.

Satellite regression for the batch path: hypothesis drives dataset size,
dimension, operator, and query geometry, and every example asserts that
``index.query_batch(normals, offsets, op)`` returns *bit-identical* ids
and stats to ``[index.query(n, o, op) for ...]``.  The suite pins the
``_SCAN_FALLBACK_FRACTION`` router boundary explicitly — forcing the
all-scan and all-interval extremes must not change a single id — and
the degenerate empty batch.
"""

from __future__ import annotations

from unittest import mock

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FunctionIndex, QueryModel


@st.composite
def batch_cases(draw):
    dim = draw(st.integers(min_value=2, max_value=4))
    n = draw(st.integers(min_value=1, max_value=200))
    m = draw(st.integers(min_value=0, max_value=8))
    n_indices = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    op = draw(st.sampled_from(["<=", "<", ">=", ">"]))
    offset_scale = draw(st.floats(min_value=0.0, max_value=1.5))
    return dim, n, m, n_indices, seed, op, offset_scale


def _build(case):
    dim, n, m, n_indices, seed, op, offset_scale = case
    rng = np.random.default_rng(seed)
    # Integer-valued inputs keep every scalar product exact in float64,
    # so "identical" includes tie-breaks and boundary membership.
    points = rng.integers(1, 30, size=(n, dim)).astype(np.float64)
    model = QueryModel.uniform(dim=dim, low=1.0, high=5.0, rq=4)
    index = FunctionIndex(points, model, n_indices=n_indices, rng=seed)
    normals = rng.integers(1, 6, size=(m, dim)).astype(np.float64)
    column_max = points.max(axis=0)
    offsets = np.asarray(
        [float(np.round(offset_scale * normal @ column_max)) for normal in normals]
    )
    return index, normals, offsets, op


def _assert_batch_equals_singles(index, normals, offsets, op):
    batch = index.query_batch(normals, offsets, op)
    assert len(batch) == normals.shape[0]
    for row, answer in enumerate(batch):
        single = index.query(normals[row], float(offsets[row]), op)
        assert np.array_equal(answer.ids, single.ids)
        assert answer.used_fallback == single.used_fallback
        if answer.stats is not None:
            assert answer.stats == single.stats


class TestBatchEqualsSingles:
    @settings(max_examples=60, deadline=None)
    @given(case=batch_cases())
    def test_batch_is_loop_of_singles(self, case):
        index, normals, offsets, op = _build(case)
        _assert_batch_equals_singles(index, normals, offsets, op)

    @settings(max_examples=25, deadline=None)
    @given(case=batch_cases())
    def test_router_forced_to_scan(self, case):
        """With the fallback fraction at 1.0 every plannable query routes
        to the interval-scan arm; batch and singles must still agree."""
        index, normals, offsets, op = _build(case)
        with mock.patch("repro.core.collection._SCAN_FALLBACK_FRACTION", 1.0):
            _assert_batch_equals_singles(index, normals, offsets, op)

    @settings(max_examples=25, deadline=None)
    @given(case=batch_cases())
    def test_router_forced_to_intervals(self, case):
        """With the fallback fraction at 0.0 every plannable query takes
        the three-interval path; batch and singles must still agree."""
        index, normals, offsets, op = _build(case)
        with mock.patch("repro.core.collection._SCAN_FALLBACK_FRACTION", 0.0):
            _assert_batch_equals_singles(index, normals, offsets, op)

    @settings(max_examples=20, deadline=None)
    @given(case=batch_cases())
    def test_router_split_matches_either_route(self, case):
        """At the boundary the router's choice is an implementation detail;
        the *answer* must match both forced routes bit for bit."""
        index, normals, offsets, op = _build(case)
        default = index.query_batch(normals, offsets, op)
        with mock.patch("repro.core.collection._SCAN_FALLBACK_FRACTION", 1.0):
            scanned = index.query_batch(normals, offsets, op)
        with mock.patch("repro.core.collection._SCAN_FALLBACK_FRACTION", 0.0):
            intervals = index.query_batch(normals, offsets, op)
        for chosen, scan_side, interval_side in zip(default, scanned, intervals):
            assert np.array_equal(chosen.ids, scan_side.ids)
            assert np.array_equal(chosen.ids, interval_side.ids)


class TestTopkBatchEqualsSingles:
    """``topk_batch`` (GEMM-batched Algorithm 2 candidates) vs the loop."""

    @settings(max_examples=40, deadline=None)
    @given(
        case=batch_cases(),
        k=st.integers(min_value=1, max_value=12),
    )
    def test_topk_batch_is_loop_of_singles(self, case, k):
        index, normals, offsets, op = _build(case)
        batch = index.topk_batch(normals, offsets, k, op)
        assert len(batch) == normals.shape[0]
        for row, result in enumerate(batch):
            single = index.topk(normals[row], float(offsets[row]), k, op)
            assert np.array_equal(result.ids, single.ids)
            assert np.array_equal(result.distances, single.distances)

    @settings(max_examples=15, deadline=None)
    @given(case=batch_cases(), k=st.integers(min_value=1, max_value=8))
    def test_topk_batch_forced_routes_agree(self, case, k):
        index, normals, offsets, op = _build(case)
        default = index.topk_batch(normals, offsets, k, op)
        with mock.patch("repro.core.collection._SCAN_FALLBACK_FRACTION", 0.0):
            intervals = index.topk_batch(normals, offsets, k, op)
        for chosen, interval_side in zip(default, intervals):
            assert np.array_equal(chosen.ids, interval_side.ids)
            assert np.array_equal(chosen.distances, interval_side.distances)


class TestAwkwardInputLayouts:
    """Mixed-dtype / non-contiguous batch inputs answer identically to
    clean float64 C-order arrays (satellite regression: the GEMM path
    must canonicalize before multiplying, not assume layout)."""

    def _index(self, dim=3, seed=3):
        rng = np.random.default_rng(seed)
        points = rng.integers(1, 30, size=(120, dim)).astype(np.float64)
        model = QueryModel.uniform(dim=dim, low=1.0, high=5.0, rq=4)
        index = FunctionIndex(points, model, n_indices=3, rng=seed)
        normals = rng.integers(1, 6, size=(6, dim)).astype(np.float64)
        offsets = np.asarray(
            [float(np.round(0.5 * n @ points.max(axis=0))) for n in normals]
        )
        return index, normals, offsets

    def _assert_same_answers(self, index, normals, offsets, alt_normals, alt_offsets):
        clean = index.query_batch(normals, offsets)
        awkward = index.query_batch(alt_normals, alt_offsets)
        for a, b in zip(clean, awkward):
            assert np.array_equal(a.ids, b.ids)
        clean_topk = index.topk_batch(normals, offsets, 7)
        awkward_topk = index.topk_batch(alt_normals, alt_offsets, 7)
        for a, b in zip(clean_topk, awkward_topk):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.distances, b.distances)

    def test_float32_inputs(self):
        index, normals, offsets = self._index()
        # Integer-valued, so the float32 round-trip is exact.
        self._assert_same_answers(
            index,
            normals,
            offsets,
            normals.astype(np.float32),
            offsets.astype(np.float32),
        )

    def test_fortran_order_normals(self):
        index, normals, offsets = self._index()
        fortran = np.asfortranarray(normals)
        assert not fortran.flags["C_CONTIGUOUS"]
        self._assert_same_answers(index, normals, offsets, fortran, offsets)

    def test_strided_views(self):
        index, normals, offsets = self._index()
        doubled = np.repeat(normals, 2, axis=0)
        view = doubled[::2]
        assert not view.flags["OWNDATA"]
        offsets_view = np.repeat(offsets, 2)[::2]
        self._assert_same_answers(index, normals, offsets, view, offsets_view)

    def test_reversed_column_view(self):
        index, normals, offsets = self._index()
        reversed_copy = normals[:, ::-1].copy()
        view = reversed_copy[:, ::-1]  # negative column stride, equals normals
        assert not view.flags["C_CONTIGUOUS"]
        self._assert_same_answers(index, normals, offsets, view, offsets)


class TestEmptyBatch:
    def test_empty_batch_returns_empty_list(self):
        rng = np.random.default_rng(0)
        points = rng.integers(1, 30, size=(50, 3)).astype(np.float64)
        model = QueryModel.uniform(dim=3, low=1.0, high=5.0, rq=4)
        index = FunctionIndex(points, model, n_indices=2, rng=0)
        assert index.query_batch(np.empty((0, 3)), np.empty(0)) == []
