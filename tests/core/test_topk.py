"""Tests for the top-k buffer and Algorithm 2 (Problem 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import PlanarIndex, ScalarProductQuery, TopKBuffer
from repro.exceptions import InvalidQueryError

from ..conftest import brute_force_topk


class TestTopKBuffer:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TopKBuffer(0)

    def test_fill_and_max_distance(self):
        buffer = TopKBuffer(2)
        assert buffer.max_distance == float("inf")
        buffer.offer(3.0, 1)
        assert not buffer.is_full
        buffer.offer(1.0, 2)
        assert buffer.is_full
        assert buffer.max_distance == 3.0

    def test_better_candidate_evicts_worst(self):
        buffer = TopKBuffer(2)
        buffer.offer(3.0, 1)
        buffer.offer(1.0, 2)
        assert buffer.offer(2.0, 3) is True
        assert buffer.max_distance == 2.0
        ids, dists = buffer.as_sorted()
        assert np.array_equal(ids, [2, 3])
        assert np.array_equal(dists, [1.0, 2.0])

    def test_worse_candidate_rejected(self):
        buffer = TopKBuffer(1)
        buffer.offer(1.0, 5)
        assert buffer.offer(2.0, 6) is False
        ids, _ = buffer.as_sorted()
        assert np.array_equal(ids, [5])

    def test_distance_ties_broken_by_smaller_id(self):
        buffer = TopKBuffer(2)
        buffer.offer(1.0, 9)
        buffer.offer(1.0, 3)
        assert buffer.offer(1.0, 1) is True  # evicts id 9 (same dist, larger id)
        ids, _ = buffer.as_sorted()
        assert np.array_equal(ids, [1, 3])

    def test_offer_many(self):
        buffer = TopKBuffer(3)
        buffer.offer_many(np.array([5.0, 1.0, 3.0, 2.0]), np.array([0, 1, 2, 3]))
        ids, dists = buffer.as_sorted()
        assert np.array_equal(ids, [1, 3, 2])
        assert np.array_equal(dists, [1.0, 2.0, 3.0])


class TestAlgorithm2:
    @pytest.fixture
    def index_and_features(self, rng):
        features = rng.uniform(1, 100, size=(2000, 4))
        index = PlanarIndex.from_features(features, np.array([1.0, 2.0, 1.5, 3.0]))
        return index, features

    @pytest.mark.parametrize("k", [1, 10, 100])
    @pytest.mark.parametrize("op", ["<=", "<", ">=", ">"])
    def test_matches_bruteforce(self, index_and_features, rng, k, op):
        index, features = index_and_features
        query = ScalarProductQuery(rng.uniform(1, 5, 4), 400.0, op)
        result = index.topk(query, k)
        expected_ids, expected_dists = brute_force_topk(features, query, k)
        assert np.allclose(result.distances, expected_dists)
        assert np.array_equal(result.ids, expected_ids)

    def test_prunes_most_points(self, index_and_features, rng):
        """The Table 3 behaviour: only a small fraction is checked."""
        index, _ = index_and_features
        query = ScalarProductQuery(np.array([1.0, 2.0, 1.5, 3.0]) * 1.01, 400.0)
        result = index.topk(query, 10)
        assert result.n_checked < result.n_total * 0.3

    def test_k_larger_than_result_set(self, index_and_features, rng):
        index, features = index_and_features
        query = ScalarProductQuery(rng.uniform(1, 5, 4), 250.0)
        n_satisfying = int(query.evaluate(features).sum())
        result = index.topk(query, n_satisfying + 50)
        assert len(result) == n_satisfying

    def test_no_satisfying_points(self, index_and_features):
        index, _ = index_and_features
        query = ScalarProductQuery(np.array([1.0, 1.0, 1.0, 1.0]), 1.0)
        result = index.topk(query, 5)
        assert len(result) == 0

    def test_invalid_k(self, index_and_features):
        index, _ = index_and_features
        with pytest.raises(InvalidQueryError):
            index.topk(ScalarProductQuery(np.ones(4), 10.0), 0)

    def test_distances_sorted_ascending(self, index_and_features, rng):
        index, _ = index_and_features
        query = ScalarProductQuery(rng.uniform(1, 5, 4), 500.0)
        result = index.topk(query, 50)
        assert np.all(np.diff(result.distances) >= 0)

    def test_checked_fraction_bounds(self, index_and_features, rng):
        index, _ = index_and_features
        result = index.topk(ScalarProductQuery(rng.uniform(1, 5, 4), 400.0), 10)
        assert 0.0 <= result.checked_fraction <= 1.0


class TestMixedSignTopK:
    @pytest.mark.parametrize("op", ["<=", ">="])
    def test_negative_data(self, rng, op):
        features = rng.normal(0, 5, size=(800, 3))
        index = PlanarIndex.from_features(features, np.array([1.0, 2.0, 1.0]))
        for _ in range(5):
            query = ScalarProductQuery(
                rng.uniform(0.5, 3.0, 3), float(rng.uniform(-10, 10)), op
            )
            result = index.topk(query, 15)
            expected_ids, expected_dists = brute_force_topk(features, query, 15)
            assert np.allclose(result.distances, expected_dists)
            assert np.array_equal(result.ids, expected_ids)


@given(
    features=hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 50), st.integers(1, 3)),
        elements=st.floats(-50, 50, allow_nan=False, allow_infinity=False),
    ),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_property_topk_matches_bruteforce(features, data):
    dim = features.shape[1]
    index_normal = data.draw(
        hnp.arrays(np.float64, dim, elements=st.floats(0.1, 5.0, allow_nan=False))
    )
    query_normal = data.draw(
        hnp.arrays(np.float64, dim, elements=st.floats(0.1, 5.0, allow_nan=False))
    )
    offset = data.draw(st.floats(-100, 100, allow_nan=False))
    op = data.draw(st.sampled_from(["<=", "<", ">=", ">"]))
    k = data.draw(st.integers(1, 20))

    index = PlanarIndex.from_features(features, index_normal)
    query = ScalarProductQuery(query_normal, offset, op)
    result = index.topk(query, k)
    expected_ids, expected_dists = brute_force_topk(features, query, k)
    assert np.allclose(result.distances, expected_dists, atol=1e-9)
    # Ids may differ on exact distance ties between distinct points; the
    # multiset of distances is the contract there.
    if np.unique(np.round(expected_dists, 12)).size == expected_dists.size:
        assert np.array_equal(result.ids, expected_ids)
