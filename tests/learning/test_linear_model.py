"""Tests for the from-scratch logistic regression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.learning import LogisticRegression, make_linear_classification


class TestFit:
    def test_learns_separable_data(self):
        points, labels, _, _ = make_linear_classification(2000, 4, noise=0.0, rng=0)
        model = LogisticRegression().fit(points, labels.astype(float))
        assert model.accuracy(points, labels) > 0.95

    def test_recovers_true_direction(self):
        points, labels, true_normal, _ = make_linear_classification(
            4000, 3, noise=0.0, rng=1
        )
        model = LogisticRegression(epochs=400).fit(points, labels.astype(float))
        learned = model.coef_ / np.linalg.norm(model.coef_)
        assert abs(float(learned @ true_normal)) > 0.95

    def test_noisy_labels_still_good(self):
        points, labels, _, _ = make_linear_classification(2000, 4, noise=0.1, rng=2)
        model = LogisticRegression().fit(points, labels.astype(float))
        assert model.accuracy(points, labels) > 0.8

    def test_label_validation(self):
        model = LogisticRegression()
        with pytest.raises(ValueError):
            model.fit(np.ones((3, 2)), np.array([0.0, 1.0, 2.0]))
        with pytest.raises(DimensionMismatchError):
            model.fit(np.ones((3, 2)), np.array([1.0, -1.0]))

    def test_hyperparameter_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0.0)
        with pytest.raises(ValueError):
            LogisticRegression(epochs=0)
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)


class TestPredict:
    def test_unfitted_raises(self):
        model = LogisticRegression()
        with pytest.raises(RuntimeError):
            model.predict(np.ones((1, 2)))
        with pytest.raises(RuntimeError):
            model.hyperplane()

    def test_predictions_in_label_set(self):
        points, labels, _, _ = make_linear_classification(200, 3, rng=3)
        model = LogisticRegression(epochs=50).fit(points, labels.astype(float))
        assert set(np.unique(model.predict(points)).tolist()) <= {-1, 1}

    def test_hyperplane_consistent_with_decision(self):
        points, labels, _, _ = make_linear_classification(500, 3, rng=4)
        model = LogisticRegression(epochs=100).fit(points, labels.astype(float))
        normal, offset = model.hyperplane()
        scores = points @ normal - offset
        assert np.allclose(scores, model.decision_function(points))


class TestMakeLinearClassification:
    def test_shapes_and_labels(self):
        points, labels, normal, offset = make_linear_classification(100, 5, rng=0)
        assert points.shape == (100, 5)
        assert labels.shape == (100,)
        assert np.linalg.norm(normal) == pytest.approx(1.0)
        assert offset == 0.0

    def test_noise_fraction(self):
        points, labels, normal, offset = make_linear_classification(
            5000, 3, noise=0.2, rng=0
        )
        clean = np.where(points @ normal - offset >= 0, 1, -1)
        flipped = np.mean(labels != clean)
        assert 0.15 < flipped < 0.25

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            make_linear_classification(10, 2, noise=0.7)
