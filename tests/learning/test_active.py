"""Tests for pool-based active learning with Planar acquisition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.learning import ActiveLearner, make_linear_classification


@pytest.fixture(scope="module")
def pool_and_labels():
    points, labels, _, _ = make_linear_classification(1500, 4, noise=0.02, rng=0)
    return points, labels


class TestValidation:
    def test_bad_backend(self, pool_and_labels):
        points, labels = pool_and_labels
        with pytest.raises(ValueError):
            ActiveLearner(points, labels, backend="magic")

    def test_bad_sizes(self, pool_and_labels):
        points, labels = pool_and_labels
        with pytest.raises(ValueError):
            ActiveLearner(points, labels, seed_size=1)
        with pytest.raises(ValueError):
            ActiveLearner(points, labels, batch_size=0)

    def test_bad_label_shape(self, pool_and_labels):
        points, _ = pool_and_labels
        with pytest.raises(ValueError):
            ActiveLearner(points, np.ones(3))

    def test_bad_rounds(self, pool_and_labels):
        points, labels = pool_and_labels
        with pytest.raises(ValueError):
            ActiveLearner(points, labels, rng=0).run(0)


class TestLearning:
    def test_accuracy_improves_over_seed(self, pool_and_labels):
        points, labels = pool_and_labels
        report = ActiveLearner(points, labels, backend="planar", rng=1).run(10, labels)
        assert report.n_rounds == 10
        assert report.final_accuracy > 0.9
        assert report.labeled_ids.size == 10 + 10 * 10  # seed + rounds * batch

    def test_backends_label_identical_points(self, pool_and_labels):
        points, labels = pool_and_labels
        planar = ActiveLearner(points, labels, backend="planar", rng=2).run(6, labels)
        scan = ActiveLearner(points, labels, backend="scan", rng=2).run(6, labels)
        assert np.array_equal(np.sort(planar.labeled_ids), np.sort(scan.labeled_ids))
        assert planar.accuracy_history == scan.accuracy_history

    def test_planar_checks_fewer_points(self, pool_and_labels):
        points, labels = pool_and_labels
        planar = ActiveLearner(points, labels, backend="planar", rng=3).run(6, labels)
        scan = ActiveLearner(points, labels, backend="scan", rng=3).run(6, labels)
        assert planar.n_checked_total < scan.n_checked_total

    def test_callable_oracle(self, pool_and_labels):
        points, labels = pool_and_labels
        report = ActiveLearner(
            points, lambda ids: labels[ids], backend="planar", rng=4
        ).run(3, labels)
        assert report.n_rounds == 3

    def test_no_duplicate_labels(self, pool_and_labels):
        points, labels = pool_and_labels
        report = ActiveLearner(points, labels, backend="planar", rng=5).run(8, labels)
        assert np.unique(report.labeled_ids).size == report.labeled_ids.size

    def test_pool_exhaustion_stops_early(self):
        points, labels, _, _ = make_linear_classification(40, 2, rng=6)
        report = ActiveLearner(
            points, labels, seed_size=5, batch_size=10, backend="planar", rng=6
        ).run(50, labels)
        assert report.labeled_ids.size <= 40
        assert report.n_rounds < 50
