"""Tests for the Eq. 18 and Critical_Consume workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Comparison, QueryModel
from repro.datasets import Workload, consumption_workload, eq18_offset, independent


class TestEq18Offset:
    def test_formula(self):
        normal = np.array([1.0, 2.0])
        maxima = np.array([10.0, 5.0])
        assert eq18_offset(normal, maxima, 0.25) == pytest.approx(0.25 * 20.0)


class TestWorkload:
    @pytest.fixture
    def workload(self):
        points = independent(500, 4, rng=0).points
        return Workload.for_points(points, rq=4)

    def test_for_points_defaults(self, workload):
        assert workload.model.dim == 4
        assert workload.model.randomness == 4
        assert workload.inequality_parameter == 0.25
        assert workload.op is Comparison.LE

    def test_sample_query_consistent(self, workload):
        query = workload.sample_query(rng=0)
        assert workload.model.contains(query.normal)
        expected = eq18_offset(query.normal, workload.maxima, 0.25)
        assert query.offset == pytest.approx(expected)

    def test_sample_queries_count_and_variety(self, workload):
        queries = workload.sample_queries(20, rng=0)
        assert len(queries) == 20
        normals = np.unique(np.vstack([q.normal for q in queries]), axis=0)
        assert normals.shape[0] > 1

    def test_inequality_parameter_sweep(self, workload):
        wider = workload.with_inequality_parameter(0.75)
        assert wider.inequality_parameter == 0.75
        rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
        q_narrow = workload.sample_query(rng_a)
        q_wide = wider.sample_query(rng_b)
        assert q_wide.offset > q_narrow.offset

    def test_validation(self):
        model = QueryModel.uniform(dim=2, low=1.0, high=2.0)
        with pytest.raises(ValueError):
            Workload(model, np.array([1.0, 2.0, 3.0]))  # wrong maxima dim
        with pytest.raises(ValueError):
            Workload(model, np.array([1.0, 2.0]), inequality_parameter=0.0)

    def test_selectivity_increases_with_inequality_parameter(self):
        """The Fig. 11(a) relationship."""
        points = independent(2000, 6, rng=0).points
        base = Workload.for_points(points)
        fractions = []
        for s in (0.10, 0.50, 1.00):
            query = base.with_inequality_parameter(s).sample_query(rng=7)
            fractions.append(query.evaluate(points).mean())
        assert fractions[0] < fractions[1] < fractions[2]


class TestConsumptionWorkload:
    def test_build(self):
        workload = consumption_workload(900)
        assert workload.thresholds.size == 900
        assert workload.thresholds[0] == pytest.approx(0.100)
        assert workload.thresholds[-1] == pytest.approx(1.000)
        assert workload.feature_map.in_dim == 4
        assert workload.feature_map.out_dim == 2

    def test_query_semantics(self):
        workload = consumption_workload(10)
        # One household: 5 kW active at 230 V, 40 A -> pf ~ 0.543.
        row = np.array([[5.0, 0.3, 230.0, 40.0]])
        features = workload.feature_map(row)
        pf = 5.0 / (230.0 * 40.0 / 1000.0)
        below = workload.query_for_threshold(pf + 0.01)
        above = workload.query_for_threshold(pf - 0.01)
        assert below.evaluate(features)[0]
        assert not above.evaluate(features)[0]

    def test_sample_query_uses_grid(self):
        workload = consumption_workload(5)
        query = workload.sample_query(rng=0)
        assert -query.normal[1] in workload.thresholds

    def test_invalid_threshold_count(self):
        with pytest.raises(ValueError):
            consumption_workload(0)
