"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    anticorrelated,
    correlated,
    independent,
    load,
    table2_characteristics,
)


class TestDataset:
    def test_metadata(self):
        ds = Dataset("toy", np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert ds.n == 2 and ds.dim == 2 and len(ds) == 2
        assert ds.attribute_range == (1.0, 4.0)
        assert ds.attribute_names == ("attr_0", "attr_1")

    def test_points_read_only(self):
        ds = Dataset("toy", np.ones((2, 2)))
        with pytest.raises(ValueError):
            ds.points[0, 0] = 5.0

    def test_custom_names(self):
        ds = Dataset("toy", np.ones((1, 2)), ("a", "b"))
        assert ds.attribute_names == ("a", "b")


class TestGenerators:
    @pytest.mark.parametrize("factory", [independent, correlated, anticorrelated])
    def test_shape_and_range(self, factory):
        ds = factory(500, 6, low=1.0, high=100.0, rng=0)
        assert ds.points.shape == (500, 6)
        assert ds.points.min() >= 1.0
        assert ds.points.max() <= 100.0

    @pytest.mark.parametrize("factory", [independent, correlated, anticorrelated])
    def test_reproducible(self, factory):
        a = factory(100, 3, rng=42).points
        b = factory(100, 3, rng=42).points
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("factory", [independent, correlated, anticorrelated])
    def test_different_seeds_differ(self, factory):
        a = factory(100, 3, rng=1).points
        b = factory(100, 3, rng=2).points
        assert not np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            independent(0, 3)
        with pytest.raises(ValueError):
            independent(10, 0)
        with pytest.raises(ValueError):
            independent(10, 3, low=5.0, high=1.0)

    def test_correlation_structure(self):
        """The defining property of each family: sign of cross-correlation."""
        n, dim = 8000, 4
        indp_corr = _mean_offdiag(independent(n, dim, rng=0).points)
        corr_corr = _mean_offdiag(correlated(n, dim, rng=0).points)
        anti_corr = _mean_offdiag(anticorrelated(n, dim, rng=0).points)
        assert abs(indp_corr) < 0.05
        assert corr_corr > 0.5
        assert anti_corr < -0.05

    def test_anticorrelated_near_plane(self):
        """Anti points concentrate near sum == dim/2 in unit coordinates."""
        ds = anticorrelated(5000, 4, low=0.0, high=1.0, rng=0)
        sums = ds.points.sum(axis=1)
        # Clipping to [0, 1] pulls the mean slightly below dim/2.
        assert abs(sums.mean() - 2.0) < 0.2
        assert sums.std() < 0.5


def _mean_offdiag(points: np.ndarray) -> float:
    corr = np.corrcoef(points.T)
    dim = corr.shape[0]
    return float(corr[np.triu_indices(dim, 1)].mean())


class TestLoad:
    def test_by_name(self):
        for name in ("indp", "corr", "anti"):
            assert load(name, 50, 3, rng=0).name == name

    def test_case_insensitive(self):
        assert load("INDP", 10, 2, rng=0).name == "indp"

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown synthetic dataset"):
            load("mystery", 10, 2)


class TestTable2:
    def test_rows(self):
        rows = table2_characteristics([independent(100, 5, rng=0)])
        assert rows[0]["dataset"] == "indp"
        assert rows[0]["n_points"] == 100
        assert rows[0]["dimension"] == 5
        low, high = rows[0]["attribute_range"]
        assert 1.0 <= low < high <= 100.0
