"""Tests for dataset CSV import/export and the UCI loader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import independent
from repro.datasets.io import load_csv, load_uci_household_power, save_csv


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        dataset = independent(50, 3, rng=0)
        path = save_csv(dataset, tmp_path / "indp.csv")
        loaded = load_csv(path)
        assert loaded.attribute_names == dataset.attribute_names
        assert np.allclose(loaded.points, dataset.points)

    def test_name_defaults_to_stem(self, tmp_path):
        dataset = independent(5, 2, rng=0)
        path = save_csv(dataset, tmp_path / "mydata.csv")
        assert load_csv(path).name == "mydata"

    def test_non_numeric_rows_skipped(self, tmp_path):
        path = tmp_path / "messy.csv"
        path.write_text("a,b\n1,2\n?,3\n4,5\n")
        loaded = load_csv(path)
        assert loaded.points.shape == (2, 2)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n?,?\n")
        with pytest.raises(ValueError):
            load_csv(path)


class TestUciLoader:
    HEADER = (
        "Date;Time;Global_active_power;Global_reactive_power;Voltage;"
        "Global_intensity;Sub_metering_1;Sub_metering_2;Sub_metering_3\n"
    )

    def test_parses_measurements(self, tmp_path):
        path = tmp_path / "household_power_consumption.txt"
        path.write_text(
            self.HEADER
            + "16/12/2006;17:24:00;4.216;0.418;234.840;18.400;0.000;1.000;17.000\n"
            + "16/12/2006;17:25:00;?;?;?;?;?;?;?\n"
            + "16/12/2006;17:26:00;5.360;0.436;233.630;23.000;0.000;1.000;16.000\n"
        )
        dataset = load_uci_household_power(path)
        assert dataset.points.shape == (2, 4)
        assert dataset.attribute_names == (
            "active_power",
            "reactive_power",
            "voltage",
            "current",
        )
        assert np.allclose(dataset.points[0], [4.216, 0.418, 234.84, 18.4])

    def test_max_rows(self, tmp_path):
        path = tmp_path / "p.txt"
        rows = "".join(
            f"1/1/2007;00:0{i}:00;1.0;0.1;230.0;5.0;0;0;0\n" for i in range(5)
        )
        path.write_text(self.HEADER + rows)
        dataset = load_uci_household_power(path, max_rows=3)
        assert dataset.points.shape == (3, 4)

    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "other.txt"
        path.write_text("a;b;c\n1;2;3\n")
        with pytest.raises(ValueError, match="does not look like"):
            load_uci_household_power(path)

    def test_all_missing_rejected(self, tmp_path):
        path = tmp_path / "missing.txt"
        path.write_text(self.HEADER + "1/1/2007;00:00:00;?;?;?;?;?;?;?\n")
        with pytest.raises(ValueError, match="no parsable"):
            load_uci_household_power(path)
