"""Tests for the simulated real-world datasets (Table 2 characteristics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import cmoment, consumption, ctexture
from repro.datasets.realworld import (
    ACTIVE_POWER_RANGE,
    CMOMENT_DIM,
    CMOMENT_RANGE,
    CTEXTURE_DIM,
    CTEXTURE_RANGE,
    CURRENT_RANGE,
    REACTIVE_POWER_RANGE,
    VOLTAGE_RANGE,
)


class TestCMoment:
    def test_published_characteristics(self):
        ds = cmoment(4000, rng=0)
        assert ds.dim == CMOMENT_DIM
        low, high = ds.attribute_range
        assert low == pytest.approx(CMOMENT_RANGE[0])
        assert high == pytest.approx(CMOMENT_RANGE[1])

    def test_default_cardinality(self):
        # Full-size generation is cheap enough to verify once.
        ds = cmoment(rng=0)
        assert ds.n == 68_040

    def test_features_are_correlated(self):
        """Image features share latent factors; correlation must be present
        (this is what distinguishes the simulation from white noise)."""
        ds = cmoment(5000, rng=0)
        corr = np.corrcoef(ds.points.T)
        offdiag = np.abs(corr[np.triu_indices(ds.dim, 1)])
        assert offdiag.max() > 0.3

    def test_reproducible(self):
        assert np.array_equal(cmoment(100, rng=3).points, cmoment(100, rng=3).points)


class TestCTexture:
    def test_published_characteristics(self):
        ds = ctexture(4000, rng=0)
        assert ds.dim == CTEXTURE_DIM
        low, high = ds.attribute_range
        assert low == pytest.approx(CTEXTURE_RANGE[0])
        assert high == pytest.approx(CTEXTURE_RANGE[1])

    def test_right_skew(self):
        """Texture energies have a long right tail: mean above median."""
        ds = ctexture(5000, rng=0)
        assert ds.points.mean() > np.median(ds.points)


class TestConsumption:
    @pytest.fixture(scope="class")
    def ds(self):
        return consumption(30_000, rng=0)

    def test_columns_and_ranges(self, ds):
        assert ds.attribute_names == (
            "active_power",
            "reactive_power",
            "voltage",
            "current",
        )
        active, reactive, voltage, current = ds.points.T
        assert ACTIVE_POWER_RANGE[0] <= active.min() and active.max() <= ACTIVE_POWER_RANGE[1]
        assert REACTIVE_POWER_RANGE[0] <= reactive.min() and reactive.max() <= REACTIVE_POWER_RANGE[1]
        assert VOLTAGE_RANGE[0] <= voltage.min() and voltage.max() <= VOLTAGE_RANGE[1]
        assert CURRENT_RANGE[0] <= current.min() and current.max() <= CURRENT_RANGE[1]

    def test_power_factor_physics(self, ds):
        """active / (V*I/1000) must be a power factor in (0, 1) — the
        property the Example 1 query thresholds."""
        active, _, voltage, current = ds.points.T
        apparent_kw = voltage * current / 1000.0
        ok = apparent_kw > 1e-9
        pf = active[ok] / apparent_kw[ok]
        assert np.all((pf >= 0.0) & (pf <= 1.0 + 1e-9))
        # Mass concentrated at high power factors (resistive loads).
        assert np.median(pf) > 0.7

    def test_threshold_sweep_is_selective(self, ds):
        """Thresholds in (0.1, 1.0) must sweep a nontrivial selectivity
        range, otherwise the Fig. 6(a) experiment is vacuous."""
        active, _, voltage, current = ds.points.T
        apparent_kw = voltage * current / 1000.0
        sel_low = np.mean(active - 0.2 * apparent_kw <= 0)
        sel_high = np.mean(active - 0.95 * apparent_kw <= 0)
        assert sel_low < 0.05
        assert sel_high > 0.5
