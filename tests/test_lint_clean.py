"""Tier-1 self-gate: the repository must stay clean under its own linter.

Runs ``repro.analysis.lint`` over ``src/`` in-process (no subprocess cost)
and fails with the rendered findings if any rule fires.  New code that
violates a rule must either be fixed or carry a line-scoped
``# repro: noqa(REPxxx)`` with a rationale — see ``docs/analysis.md``.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths

REPO = Path(__file__).resolve().parents[1]


def test_src_is_lint_clean():
    report = lint_paths([REPO / "src"])
    assert report.files_scanned > 0
    rendered = "\n".join(d.render() for d in report.diagnostics)
    assert not report.diagnostics, f"lint findings in src/:\n{rendered}"
    assert report.exit_code == 0


def test_src_is_graph_clean():
    """The whole-program rules (REP010–REP014) must also hold: layering,
    lock discipline, fork-safety, resource lifecycles, env registry."""
    report = lint_paths([REPO / "src"], graph=True)
    rendered = "\n".join(d.render() for d in report.diagnostics)
    assert not report.diagnostics, f"graph lint findings in src/:\n{rendered}"
    assert report.exit_code == 0
    # The graph rules actually ran (counts include their zero entries).
    assert {"REP010", "REP011", "REP012", "REP013", "REP014"} <= set(
        report.counts
    )


def test_benchmarks_parse_cleanly():
    """Benchmarks are exempt from hot-path rules but must at least parse
    (REP000 fires on syntax errors regardless of scope)."""
    report = lint_paths([REPO / "benchmarks"], select={"REP000"})
    rendered = "\n".join(d.render() for d in report.diagnostics)
    assert not report.diagnostics, f"unparsable benchmark files:\n{rendered}"
