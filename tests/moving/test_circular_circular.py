"""Tests for the circular-vs-circular intersection extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.moving import (
    CircularCircularIntersectionIndex,
    CircularFleet,
    PairScan,
    circular_circular_pair_features,
    circular_circular_time_normal,
)


def make_fleet(n, omegas, rng):
    return CircularFleet(
        rng.uniform(0, 100, (n, 2)),
        rng.uniform(1, 40, n),
        rng.choice(np.asarray(omegas, dtype=np.float64), n),
        rng.uniform(0, 2 * np.pi, n),
    )


class TestFeatures:
    def test_decomposition_exact(self, rng):
        a = make_fleet(6, [3.0], rng)
        b = make_fleet(5, [5.0], rng)
        features = circular_circular_pair_features(a, b)
        assert features.shape == (30, 7)
        for t in (0.0, 7.3, 14.0):
            normal = circular_circular_time_normal(t, 3.0, 5.0)
            truth = (
                (a.position(t)[:, None, :] - b.position(t)[None, :, :]) ** 2
            ).sum(-1).ravel()
            assert np.allclose(features @ normal, truth)

    def test_co_rotating_decomposition(self, rng):
        """Equal angular velocities: the relative phase is constant."""
        a = make_fleet(4, [2.0], rng)
        b = make_fleet(3, [2.0], rng)
        features = circular_circular_pair_features(a, b)
        for t in (0.0, 9.0, 15.0):
            normal = circular_circular_time_normal(t, 2.0, 2.0)
            truth = (
                (a.position(t)[:, None, :] - b.position(t)[None, :, :]) ** 2
            ).sum(-1).ravel()
            assert np.allclose(features @ normal, truth)
        # The relative-phase parameters degenerate to constants: components
        # 5 and 6 of the normal are (1, 0) at every t.
        normal = circular_circular_time_normal(7.0, 2.0, 2.0)
        assert normal[5] == pytest.approx(1.0)
        assert normal[6] == pytest.approx(0.0)


class TestIntersectionIndex:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(3)
        a = make_fleet(70, [2.0, 3.0, 5.0], rng)
        b = make_fleet(60, [2.0, 4.0], rng)
        index = CircularCircularIntersectionIndex(a, b, rng=0)
        return a, b, index, PairScan(a, b)

    @pytest.mark.parametrize("t", [10.0, 12.3, 15.0])
    def test_matches_baseline(self, setup, t):
        _, _, index, scan = setup
        planar = index.query(t, 10.0)
        truth = scan.query(t, 10.0)
        assert np.array_equal(planar.pairs, truth.pairs)
        assert not planar.used_fallback

    def test_bucket_structure(self, setup):
        a, b, index, _ = setup
        n_a = np.unique(a.omega_degrees).size
        n_b = np.unique(b.omega_degrees).size
        assert index.n_buckets == n_a * n_b
        assert index.n_pairs == a.n * b.n

    def test_co_rotating_bucket_included(self, setup):
        """omega = 2.0 appears in both fleets -> a degenerate bucket exists
        and its queries stay exact (covered by test_matches_baseline);
        verify it really collapsed to the 3-D feature space."""
        _, _, index, _ = setup
        co_rotating = [b for b in index._buckets if b[5]]
        assert co_rotating
        for bucket in co_rotating:
            assert bucket[4].feature_map.out_dim == 3

    def test_prunes(self, setup):
        _, _, index, _ = setup
        result = index.query(12.0, 10.0)
        assert result.n_candidates < 0.2 * result.n_total

    def test_negative_distance_rejected(self, setup):
        _, _, index, _ = setup
        with pytest.raises(ValueError):
            index.query(10.0, -1.0)
