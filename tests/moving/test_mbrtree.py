"""Tests for the time-parameterized R-tree baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.moving import LinearFleet, PairScan, TPRTree, tpr_intersection_join, uniform_linear_workload


class TestBuild:
    def test_all_objects_reachable(self):
        fleet, _ = uniform_linear_workload(500, rng=0)
        tree = TPRTree(fleet, leaf_capacity=16)
        assert tree.count_objects() == 500
        assert tree.height() >= 2

    def test_small_fleet_single_leaf(self):
        fleet = LinearFleet(np.zeros((3, 2)), np.zeros((3, 2)))
        tree = TPRTree(fleet)
        assert tree.root.is_leaf
        assert tree.height() == 1

    def test_leaf_capacity_validation(self):
        fleet = LinearFleet(np.zeros((3, 2)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            TPRTree(fleet, leaf_capacity=1)

    def test_bounds_contain_objects_over_time(self):
        fleet, _ = uniform_linear_workload(200, rng=1)
        tree = TPRTree(fleet, leaf_capacity=8)
        for t in (0.0, 10.0, 25.0):
            positions = fleet.position(t)

            def check(node):
                lo, hi = node.bounds_at(t)
                if node.is_leaf:
                    pts = positions[node.object_ids]
                    assert np.all(pts >= lo - 1e-9) and np.all(pts <= hi + 1e-9)
                else:
                    for child in node.children:
                        check(child)

            check(tree.root)


class TestJoin:
    @pytest.fixture(scope="class")
    def setup(self):
        a, b = uniform_linear_workload(180, space=300.0, rng=2)
        return a, b, TPRTree(a, leaf_capacity=16), TPRTree(b, leaf_capacity=16)

    @pytest.mark.parametrize("t", [10.0, 12.5, 15.0])
    def test_matches_all_pairs(self, setup, t):
        a, b, tree_a, tree_b = setup
        pairs = tpr_intersection_join(tree_a, tree_b, t, 12.0)
        truth = PairScan(a, b).query(t, 12.0).pairs
        assert np.array_equal(pairs, truth)

    def test_empty_result(self, setup):
        a, b, tree_a, tree_b = setup
        pairs = tpr_intersection_join(tree_a, tree_b, 10.0, 0.0)
        truth = PairScan(a, b).query(10.0, 0.0).pairs
        assert np.array_equal(pairs, truth)

    def test_negative_distance_rejected(self, setup):
        _, _, tree_a, tree_b = setup
        with pytest.raises(ValueError):
            tpr_intersection_join(tree_a, tree_b, 10.0, -1.0)

    def test_large_distance_returns_all(self):
        a, b = uniform_linear_workload(20, space=10.0, rng=3)
        pairs = tpr_intersection_join(TPRTree(a), TPRTree(b), 10.0, 1e6)
        assert pairs.shape == (400, 2)
