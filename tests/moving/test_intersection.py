"""Tests for the intersection indexes vs the all-pairs baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.moving import (
    AcceleratingIntersectionIndex,
    CircularIntersectionIndex,
    LinearIntersectionIndex,
    PairScan,
    accelerating_workload,
    circular_workload,
    uniform_linear_workload,
)


class TestPairScan:
    def test_simple_pairs(self):
        from repro.moving import LinearFleet

        a = LinearFleet([[0.0, 0.0], [100.0, 100.0]], [[0.0, 0.0], [0.0, 0.0]])
        b = LinearFleet([[1.0, 0.0]], [[0.0, 0.0]])
        result = PairScan(a, b).query(5.0, 2.0)
        assert np.array_equal(result.pairs, [[0, 0]])
        assert result.n_total == 2

    def test_negative_distance_rejected(self):
        a, b = uniform_linear_workload(5, rng=0)
        with pytest.raises(ValueError):
            PairScan(a, b).query(10.0, -1.0)


class TestLinearIntersection:
    @pytest.fixture(scope="class")
    def setup(self):
        a, b = uniform_linear_workload(150, space=300.0, rng=1)
        return a, b, LinearIntersectionIndex(a, b, rng=0), PairScan(a, b)

    @pytest.mark.parametrize("t", [10.0, 11.5, 13.0, 15.0])
    def test_matches_baseline(self, setup, t):
        _, _, index, scan = setup
        indexed = index.query(t, 15.0)
        truth = scan.query(t, 15.0)
        assert np.array_equal(indexed.pairs, truth.pairs)
        assert not indexed.used_fallback

    def test_slot_time_prunes_hard(self, setup):
        """At an indexed time slot the index is parallel to the query."""
        _, _, index, _ = setup
        result = index.query(10.0, 15.0)
        assert result.n_candidates < result.n_total * 0.05

    def test_distance_sweep(self, setup):
        _, _, index, scan = setup
        for distance in (0.0, 5.0, 50.0):
            assert np.array_equal(
                index.query(12.0, distance).pairs, scan.query(12.0, distance).pairs
            )

    def test_object_update_rekeys_pairs(self):
        a, b = uniform_linear_workload(40, space=100.0, rng=3)
        index = LinearIntersectionIndex(a, b, rng=0)
        # Move object 0 of the first fleet somewhere new.
        index.update_first_object(0, np.array([1.0, 1.0]), np.array([0.2, -0.2]))
        scan = PairScan(a, b)  # fleet was mutated in place
        assert np.array_equal(index.query(12.0, 10.0).pairs, scan.query(12.0, 10.0).pairs)

    def test_negative_distance_rejected(self, setup):
        _, _, index, _ = setup
        with pytest.raises(ValueError):
            index.query(10.0, -2.0)


class TestCircularIntersection:
    @pytest.fixture(scope="class")
    def setup(self):
        circ, lin = circular_workload(120, rng=2)
        return circ, lin, CircularIntersectionIndex(circ, lin, rng=0), PairScan(circ, lin)

    @pytest.mark.parametrize("t", [10.0, 12.7, 15.0])
    def test_matches_baseline(self, setup, t):
        _, _, index, scan = setup
        indexed = index.query(t, 10.0)
        truth = scan.query(t, 10.0)
        assert np.array_equal(indexed.pairs, truth.pairs)
        assert not indexed.used_fallback

    def test_buckets_by_omega(self, setup):
        circ, _, index, _ = setup
        assert index.n_buckets == np.unique(circ.omega_degrees).size
        assert index.n_pairs == circ.n * 120

    def test_prunes(self, setup):
        _, _, index, _ = setup
        result = index.query(12.0, 10.0)
        assert result.n_candidates < result.n_total


class TestAcceleratingIntersection:
    @pytest.fixture(scope="class")
    def setup(self):
        acc, lin = accelerating_workload(100, space=300.0, rng=4)
        return acc, lin, AcceleratingIntersectionIndex(acc, lin, rng=0), PairScan(acc, lin)

    @pytest.mark.parametrize("t", [10.0, 13.2, 15.0])
    def test_matches_baseline(self, setup, t):
        _, _, index, scan = setup
        assert np.array_equal(index.query(t, 15.0).pairs, scan.query(t, 15.0).pairs)


class TestWorkloads:
    def test_linear_workload_shapes(self):
        a, b = uniform_linear_workload(25, dims=3, rng=0)
        assert a.n == b.n == 25 and a.dims == b.dims == 3

    def test_speed_range_respected(self):
        a, _ = uniform_linear_workload(200, speed_range=(0.1, 1.0), rng=0)
        speeds = np.abs(a.velocities)
        assert speeds.min() >= 0.1 and speeds.max() <= 1.0

    def test_velocities_have_both_signs(self):
        a, _ = uniform_linear_workload(200, rng=0)
        assert (a.velocities < 0).any() and (a.velocities > 0).any()

    def test_circular_workload_omega_grid(self):
        circ, _ = circular_workload(100, omega_values=(1.0, 3.0), rng=0)
        assert set(np.unique(circ.omega_degrees)) <= {1.0, 3.0}

    def test_accelerating_workload_ranges(self):
        acc, _ = accelerating_workload(100, accel_range=(0.01, 0.05), rng=0)
        magnitudes = np.abs(acc.accelerations)
        assert magnitudes.min() >= 0.01 and magnitudes.max() <= 0.05
