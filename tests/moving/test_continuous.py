"""Tests for the continuous (windowed) intersection join."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.moving import ContinuousLinearJoin, uniform_linear_workload


@pytest.fixture(scope="module")
def join():
    first, second = uniform_linear_workload(100, space=300.0, rng=0)
    return ContinuousLinearJoin(first, second, rng=0)


class TestValidation:
    def test_empty_window(self, join):
        with pytest.raises(ValueError):
            join.query(12.0, 10.0, 5.0)

    def test_negative_distance(self, join):
        with pytest.raises(ValueError):
            join.query(10.0, 12.0, -1.0)

    def test_bad_step(self, join):
        with pytest.raises(ValueError):
            join.query(10.0, 12.0, 5.0, step=0.0)


class TestExactness:
    @pytest.mark.parametrize("window", [(10.0, 15.0), (10.0, 11.0), (13.5, 14.0)])
    @pytest.mark.parametrize("distance", [2.0, 10.0])
    def test_matches_bruteforce(self, join, window, distance):
        result = join.query(window[0], window[1], distance)
        truth = join.brute_force(window[0], window[1], distance)
        assert np.array_equal(result.pairs, truth)

    def test_degenerate_window_is_instant_query(self, join):
        result = join.query(12.0, 12.0, 8.0)
        truth = join.brute_force(12.0, 12.0, 8.0)
        assert np.array_equal(result.pairs, truth)

    def test_step_does_not_change_answer(self, join):
        coarse = join.query(10.0, 15.0, 6.0, step=2.5)
        fine = join.query(10.0, 15.0, 6.0, step=0.25)
        assert np.array_equal(coarse.pairs, fine.pairs)
        # A finer grid yields a tighter candidate set.
        assert fine.n_candidates <= coarse.n_candidates

    def test_window_superset_of_instant(self, join):
        """Everything within S at t=12 is within S during [10, 15]."""
        instant = set(map(tuple, join.brute_force(12.0, 12.0, 8.0)))
        window = set(map(tuple, join.query(10.0, 15.0, 8.0).pairs))
        assert instant <= window

    def test_candidates_far_below_all_pairs(self, join):
        result = join.query(10.0, 15.0, 5.0)
        assert result.n_candidates < 0.2 * result.n_total


class TestLipschitz:
    def test_bound_is_max_relative_speed(self):
        first, second = uniform_linear_workload(50, speed_range=(0.1, 1.0), rng=1)
        join = ContinuousLinearJoin(first, second, rng=0)
        max_a = np.linalg.norm(first.velocities, axis=1).max()
        max_b = np.linalg.norm(second.velocities, axis=1).max()
        assert join.lipschitz_bound == pytest.approx(max_a + max_b)


@given(seed=st.integers(0, 200), distance=st.floats(1.0, 20.0))
@settings(max_examples=20, deadline=None)
def test_property_window_join_exact(seed, distance):
    first, second = uniform_linear_workload(30, space=100.0, rng=seed)
    join = ContinuousLinearJoin(first, second, rng=0)
    result = join.query(10.0, 15.0, distance, step=1.0)
    truth = join.brute_force(10.0, 15.0, distance)
    assert np.array_equal(result.pairs, truth)
