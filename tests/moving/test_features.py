"""Tests for the pair-feature scalar product decompositions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionMismatchError
from repro.moving import (
    AcceleratingFleet,
    CircularFleet,
    LinearFleet,
    accelerating_pair_features,
    circular_pair_features,
    circular_time_normal,
    linear_pair_features,
    polynomial_time_normal,
)
from repro.moving.features import pair_rows_to_pairs


def true_sq_distances(fleet_a, fleet_b, t: float) -> np.ndarray:
    pos_a = fleet_a.position(t)
    pos_b = fleet_b.position(t)
    return ((pos_a[:, None, :] - pos_b[None, :, :]) ** 2).sum(axis=2).ravel()


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestPairRows:
    def test_row_encoding(self):
        pairs = pair_rows_to_pairs(np.array([0, 4, 7]), n_second=3)
        assert np.array_equal(pairs, [[0, 0], [1, 1], [2, 1]])


class TestLinearFeatures:
    def test_matches_true_distance(self, rng):
        a = LinearFleet(rng.uniform(0, 100, (9, 2)), rng.uniform(-1, 1, (9, 2)))
        b = LinearFleet(rng.uniform(0, 100, (6, 2)), rng.uniform(-1, 1, (6, 2)))
        features = linear_pair_features(a, b)
        assert features.shape == (54, 3)
        for t in (0.0, 1.0, 12.5, 100.0):
            d2 = features @ polynomial_time_normal(t, 2) if t > 0 else features[:, 0]
            assert np.allclose(d2, true_sq_distances(a, b, t))

    def test_3d_supported(self, rng):
        a = LinearFleet(rng.uniform(0, 10, (4, 3)), rng.uniform(-1, 1, (4, 3)))
        b = LinearFleet(rng.uniform(0, 10, (3, 3)), rng.uniform(-1, 1, (3, 3)))
        features = linear_pair_features(a, b)
        assert np.allclose(
            features @ polynomial_time_normal(5.0, 2), true_sq_distances(a, b, 5.0)
        )

    def test_dim_mismatch(self, rng):
        a = LinearFleet(rng.uniform(0, 10, (2, 2)), np.zeros((2, 2)))
        b = LinearFleet(rng.uniform(0, 10, (2, 3)), np.zeros((2, 3)))
        with pytest.raises(DimensionMismatchError):
            linear_pair_features(a, b)


class TestAcceleratingFeatures:
    def test_matches_true_distance(self, rng):
        a = AcceleratingFleet(
            rng.uniform(0, 100, (8, 3)),
            rng.uniform(-1, 1, (8, 3)),
            rng.uniform(-0.05, 0.05, (8, 3)),
        )
        b = LinearFleet(rng.uniform(0, 100, (5, 3)), rng.uniform(-1, 1, (5, 3)))
        features = accelerating_pair_features(a, b)
        assert features.shape == (40, 5)
        for t in (1.0, 10.0, 15.0):
            assert np.allclose(
                features @ polynomial_time_normal(t, 4),
                true_sq_distances(a, b, t),
            )


class TestCircularFeatures:
    def test_matches_true_distance(self, rng):
        circ = CircularFleet(
            rng.uniform(0, 100, (6, 2)),
            rng.uniform(1, 50, 6),
            np.full(6, 4.0),
            rng.uniform(0, 2 * np.pi, 6),
        )
        lin = LinearFleet(rng.uniform(0, 100, (5, 2)), rng.uniform(-1, 1, (5, 2)))
        features = circular_pair_features(circ, lin)
        assert features.shape == (30, 7)
        for t in (1.0, 10.0, 15.0):
            assert np.allclose(
                features @ circular_time_normal(t, 4.0),
                true_sq_distances(circ, lin, t),
            )

    def test_requires_2d_linear(self, rng):
        circ = CircularFleet([[0.0, 0.0]], [1.0], [1.0], [0.0])
        lin = LinearFleet(rng.uniform(0, 10, (2, 3)), np.zeros((2, 3)))
        with pytest.raises(DimensionMismatchError):
            circular_pair_features(circ, lin)


class TestTimeNormals:
    def test_polynomial(self):
        assert np.allclose(polynomial_time_normal(2.0, 3), [1.0, 2.0, 4.0, 8.0])

    def test_polynomial_degree_validation(self):
        with pytest.raises(ValueError):
            polynomial_time_normal(2.0, 0)

    def test_circular_components(self):
        normal = circular_time_normal(10.0, 3.0)  # 30 degrees
        assert normal[0] == 1.0 and normal[1] == 10.0 and normal[2] == 100.0
        assert normal[3] == pytest.approx(np.cos(np.pi / 6))
        assert normal[4] == pytest.approx(np.sin(np.pi / 6))
        assert normal[5] == pytest.approx(10 * np.cos(np.pi / 6))
        assert normal[6] == pytest.approx(10 * np.sin(np.pi / 6))


@given(
    t=st.floats(0.5, 20.0),
    seed=st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_property_decompositions_exact(t, seed):
    """All three decompositions equal the true distance at random times."""
    rng = np.random.default_rng(seed)
    lin_a = LinearFleet(rng.uniform(0, 50, (4, 2)), rng.uniform(-2, 2, (4, 2)))
    lin_b = LinearFleet(rng.uniform(0, 50, (3, 2)), rng.uniform(-2, 2, (3, 2)))
    assert np.allclose(
        linear_pair_features(lin_a, lin_b) @ polynomial_time_normal(t, 2),
        true_sq_distances(lin_a, lin_b, t),
        rtol=1e-9,
        atol=1e-6,
    )
    omega = float(rng.uniform(0.5, 6.0))
    circ = CircularFleet(
        rng.uniform(0, 50, (4, 2)),
        rng.uniform(0.5, 20, 4),
        np.full(4, omega),
        rng.uniform(0, 2 * np.pi, 4),
    )
    assert np.allclose(
        circular_pair_features(circ, lin_b) @ circular_time_normal(t, omega),
        true_sq_distances(circ, lin_b, t),
        rtol=1e-9,
        atol=1e-6,
    )
