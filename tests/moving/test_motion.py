"""Tests for fleet motion models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.moving import AcceleratingFleet, CircularFleet, LinearFleet


class TestLinearFleet:
    def test_position_formula(self):
        fleet = LinearFleet([[0.0, 0.0], [10.0, 5.0]], [[1.0, -1.0], [0.5, 0.0]])
        assert np.allclose(fleet.position(4.0), [[4.0, -4.0], [12.0, 5.0]])
        assert fleet.n == 2 and fleet.dims == 2 and len(fleet) == 2

    def test_time_zero_is_initial(self):
        fleet = LinearFleet([[3.0, 4.0]], [[9.0, 9.0]])
        assert np.allclose(fleet.position(0.0), [[3.0, 4.0]])

    def test_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            LinearFleet([[1.0, 2.0]], [[1.0, 2.0], [3.0, 4.0]])

    def test_copies_are_returned(self):
        fleet = LinearFleet([[1.0, 2.0]], [[0.0, 0.0]])
        fleet.positions[0, 0] = 99.0
        assert fleet.position(0.0)[0, 0] == 1.0


class TestCircularFleet:
    def test_position_on_circle(self):
        fleet = CircularFleet([[0.0, 0.0]], [2.0], [90.0], [0.0])
        # 90 degrees/min: after 1 minute the object is at angle 90 degrees.
        assert np.allclose(fleet.position(1.0), [[0.0, 2.0]], atol=1e-12)
        assert np.allclose(fleet.position(0.0), [[2.0, 0.0]])

    def test_radius_preserved(self):
        rng = np.random.default_rng(0)
        fleet = CircularFleet(
            rng.uniform(0, 10, (20, 2)),
            rng.uniform(1, 5, 20),
            rng.uniform(1, 5, 20),
            rng.uniform(0, 2 * np.pi, 20),
        )
        for t in (0.0, 7.3, 100.0):
            dist = np.linalg.norm(fleet.position(t) - fleet.centers, axis=1)
            assert np.allclose(dist, fleet.radii)

    def test_omega_units(self):
        fleet = CircularFleet([[0.0, 0.0]], [1.0], [180.0], [0.0])
        assert np.allclose(fleet.omega_radians, [np.pi])

    def test_dimension_validation(self):
        with pytest.raises(DimensionMismatchError):
            CircularFleet([[0.0, 0.0, 0.0]], [1.0], [1.0], [0.0])
        with pytest.raises(DimensionMismatchError):
            CircularFleet([[0.0, 0.0]], [1.0, 2.0], [1.0], [0.0])

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            CircularFleet([[0.0, 0.0]], [-1.0], [1.0], [0.0])


class TestAcceleratingFleet:
    def test_position_formula(self):
        fleet = AcceleratingFleet(
            [[0.0, 0.0, 0.0]], [[1.0, 0.0, 0.0]], [[0.0, 2.0, 0.0]]
        )
        assert np.allclose(fleet.position(3.0), [[3.0, 9.0, 0.0]])

    def test_zero_acceleration_matches_linear(self):
        rng = np.random.default_rng(0)
        p = rng.uniform(0, 10, (5, 3))
        u = rng.uniform(-1, 1, (5, 3))
        accel = AcceleratingFleet(p, u, np.zeros((5, 3)))
        linear = LinearFleet(p, u)
        assert np.allclose(accel.position(12.0), linear.position(12.0))

    def test_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            AcceleratingFleet([[1.0, 2.0]], [[1.0, 2.0]], [[1.0, 2.0, 3.0]])
