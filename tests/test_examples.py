"""Smoke tests: the lighter example scripts must run end to end.

The two heavyweight examples (critical_consume at 300K rows, air_traffic
at 500x500 fleets) are exercised indirectly by the moving/sqlfunc test
suites and the benchmark targets; running them here would double suite
time for no extra coverage.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize(
    "script,needle",
    [
        ("quickstart.py", "exactness : identical to sequential scan"),
        ("active_learning.py", "fewer scalar products"),
        ("constraint_regions.py", "round trip OK"),
        ("observability.py", "exposition complete:"),
        ("tuning.py", "tuning complete:"),
        ("serving.py", "serving complete:"),
    ],
)
def test_example_runs(script, needle, capsys):
    out = run_example(script, capsys)
    assert needle in out


def test_examples_directory_complete():
    """Every example advertised in the README exists."""
    advertised = {
        "quickstart.py",
        "critical_consume.py",
        "air_traffic.py",
        "active_learning.py",
        "constraint_regions.py",
        "observability.py",
        "tuning.py",
        "serving.py",
    }
    present = {path.name for path in EXAMPLES.glob("*.py")}
    assert advertised <= present
