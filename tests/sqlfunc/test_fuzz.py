"""Fuzz tests for the expression language: print/parse round trips and
random-tree compilation consistency."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NonScalarProductError
from repro.sqlfunc import BinOp, Column, Expr, Neg, Number, Param, compile_expression, parse

COLUMNS = ("a", "b", "c")


@st.composite
def expression_trees(draw, max_depth: int = 4, allow_params: bool = True) -> Expr:
    """Random expression ASTs (division only by literals, to dodge /0)."""
    if max_depth == 0:
        choice = draw(st.integers(0, 2 if allow_params else 1))
        if choice == 0:
            return Column(draw(st.sampled_from(COLUMNS)))
        if choice == 1:
            return Number(draw(st.floats(-9.0, 9.0, allow_nan=False)))
        return Param(draw(st.integers(0, 2)))
    kind = draw(st.sampled_from(["leaf", "neg", "add", "sub", "mul", "div"]))
    if kind == "leaf":
        return draw(expression_trees(max_depth=0, allow_params=allow_params))
    if kind == "neg":
        return Neg(draw(expression_trees(max_depth=max_depth - 1, allow_params=allow_params)))
    if kind in ("add", "sub"):
        left = draw(expression_trees(max_depth=max_depth - 1, allow_params=allow_params))
        right = draw(expression_trees(max_depth=max_depth - 1, allow_params=allow_params))
        return BinOp("+" if kind == "add" else "-", left, right)
    if kind == "mul":
        # Keep one side parameter-free so the tree stays compilable.
        left = draw(expression_trees(max_depth=max_depth - 1, allow_params=False))
        right = draw(expression_trees(max_depth=max_depth - 1, allow_params=allow_params))
        if draw(st.booleans()):
            left, right = right, left
        return BinOp("*", left, right)
    divisor = Number(draw(st.floats(0.5, 8.0, allow_nan=False)))
    return BinOp(
        "/",
        draw(expression_trees(max_depth=max_depth - 1, allow_params=allow_params)),
        divisor,
    )


def random_env(rng: np.random.Generator, n: int = 12) -> dict[str, np.ndarray]:
    return {name: rng.normal(0.0, 3.0, size=n) for name in COLUMNS}


@given(expr=expression_trees(), seed=st.integers(0, 2**16))
@settings(max_examples=120, deadline=None)
def test_print_parse_round_trip(expr, seed):
    """str(expr) reparses to a tree with identical semantics.

    The parser renumbers ``?`` placeholders left-to-right, so the
    comparison binds the reparsed tree's parameters by source order.
    """
    text = str(expr)
    reparsed = parse(text)
    rng = np.random.default_rng(seed)
    env = random_env(rng)
    # Bind original params by position index, reparsed by occurrence order.
    original_positions = sorted(expr.params())
    values = {pos: float(rng.uniform(-5, 5)) for pos in original_positions}
    original_bound = [values.get(i, 0.0) for i in range(max(original_positions, default=-1) + 1)]
    # Occurrences in source order: walk the printed text for ? markers.
    occurrence_values = []
    stack = [expr]
    # In-order traversal matching the printer's left-to-right layout.
    def visit(node):
        if isinstance(node, Param):
            occurrence_values.append(values[node.position])
        elif isinstance(node, BinOp):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, Neg):
            visit(node.operand)
    visit(expr)
    lhs = np.asarray(expr.evaluate(env, original_bound), dtype=np.float64)
    rhs = np.asarray(reparsed.evaluate(env, occurrence_values), dtype=np.float64)
    assert np.allclose(np.broadcast_to(lhs, 12), np.broadcast_to(rhs, 12), atol=1e-6, rtol=1e-6)


@given(expr=expression_trees(), seed=st.integers(0, 2**16))
@settings(max_examples=120, deadline=None)
def test_compiled_form_matches_direct_evaluation(expr, seed):
    """When compilable, <query_normal, phi(x)> == expr(x, params)."""
    try:
        form = compile_expression(expr)
    except NonScalarProductError:
        return  # degenerate tree (zero expression / cancelled param): fine
    rng = np.random.default_rng(seed)
    env = random_env(rng)
    params = [float(rng.uniform(-5, 5)) for _ in form.param_positions]
    features = form.feature_matrix(env, 12)
    normal = form.query_normal(params)
    direct = np.broadcast_to(form.evaluate(env, params), 12)
    assert np.allclose(features @ normal, direct, atol=1e-6, rtol=1e-6)
