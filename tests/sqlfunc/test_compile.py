"""Tests for the scalar-product compiler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ExpressionError, NonScalarProductError
from repro.sqlfunc import compile_expression, parse


class TestDecomposition:
    def test_example1(self):
        form = compile_expression("active_power - ? * voltage * current")
        assert form.has_base
        assert form.n_params == 1
        assert form.phi_dim == 2
        assert str(form.base) == "active_power"

    def test_no_base(self):
        form = compile_expression("? * a + ? * b")
        assert not form.has_base
        assert form.phi_dim == 2
        assert form.param_positions == (0, 1)

    def test_param_free_expression(self):
        form = compile_expression("a * b + 3")
        assert form.n_params == 0
        assert form.phi_dim == 1

    def test_repeated_param_merges(self):
        # Hand-built AST reusing the same parameter position in two terms.
        from repro.sqlfunc import BinOp, Column, Param

        expr = BinOp("+", BinOp("*", Param(0), Column("a")), BinOp("*", Param(0), Column("b")))
        form = compile_expression(expr)
        assert form.n_params == 1
        env = {"a": np.array([2.0]), "b": np.array([3.0])}
        features = form.feature_matrix(env, 1)
        assert np.allclose(features, [[5.0]])

    def test_zero_base_dropped(self):
        # Constant folding recognises literal-zero bases (full symbolic
        # cancellation like "a - a" is intentionally out of scope).
        form = compile_expression("0 * a + ? * b")
        assert not form.has_base

    def test_constant_coefficient_broadcasts(self):
        form = compile_expression("x + 2 * ?")
        env = {"x": np.array([1.0, 2.0, 3.0])}
        features = form.feature_matrix(env, 3)
        assert features.shape == (3, 2)
        assert np.allclose(features[:, 1], 2.0)

    def test_division_by_constant(self):
        form = compile_expression("(a + ? * b) / 4")
        env = {"a": np.array([8.0]), "b": np.array([2.0])}
        assert np.allclose(form.feature_matrix(env, 1), [[2.0, 0.5]])


class TestRejections:
    @pytest.mark.parametrize(
        "bad",
        [
            "? * ?",
            "? * (a + ?)",
            "a / ?",
            "(a + ? * b) / (1 + ?)",
        ],
    )
    def test_nonlinear_rejected(self, bad):
        with pytest.raises(NonScalarProductError):
            compile_expression(bad)

    def test_cancelled_param_rejected(self):
        with pytest.raises(NonScalarProductError, match="cancels out"):
            compile_expression("? * 0 + b")

    def test_identically_zero_rejected(self):
        with pytest.raises(NonScalarProductError, match="identically zero"):
            compile_expression("0 * a")


class TestQueryNormal:
    def test_with_base(self):
        form = compile_expression("a - ? * b")
        assert np.array_equal(form.query_normal([0.5]), [1.0, 0.5])

    def test_without_base(self):
        form = compile_expression("? * a + ? * b")
        assert np.array_equal(form.query_normal([2.0, 3.0]), [2.0, 3.0])

    def test_arity_checked(self):
        form = compile_expression("a - ? * b")
        with pytest.raises(NonScalarProductError):
            form.query_normal([1.0, 2.0])


class TestConsistency:
    def test_decomposition_equals_direct_evaluation(self):
        """<query_normal, phi(x)> must equal the original expression."""
        form = compile_expression("3 * a - ? * b * c + ? * (a - 2) / 5 + 1")
        rng = np.random.default_rng(0)
        env = {name: rng.normal(size=50) for name in ("a", "b", "c")}
        params = [1.7, -2.3]
        features = form.feature_matrix(env, 50)
        normal = form.query_normal(params)
        assert np.allclose(features @ normal, form.evaluate(env, params))

    def test_unbound_param_raises(self):
        expr = parse("? + a")
        with pytest.raises(ExpressionError, match="unbound"):
            expr.evaluate({"a": np.ones(2)}, [])


@st.composite
def linear_expressions(draw):
    """Random parameter-linear expression strings over columns a, b."""
    n_terms = draw(st.integers(1, 4))
    terms = []
    param_count = 0
    for _ in range(n_terms):
        coeff = draw(st.sampled_from(["a", "b", "2", "a * b", "(a + 3)", "b / 2"]))
        if draw(st.booleans()):
            terms.append(f"? * {coeff}")
            param_count += 1
        else:
            terms.append(coeff)
    expression = " + ".join(terms)
    return expression, param_count


@given(expr_and_count=linear_expressions(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_property_compile_matches_direct(expr_and_count, data):
    expression, param_count = expr_and_count
    form = compile_expression(expression)
    assert form.n_params == param_count
    params = [
        data.draw(st.floats(-10, 10, allow_nan=False)) for _ in range(param_count)
    ]
    rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
    env = {"a": rng.normal(size=10), "b": rng.normal(size=10)}
    features = form.feature_matrix(env, 10)
    normal = form.query_normal(params)
    assert np.allclose(features @ normal, form.evaluate(env, params), atol=1e-9)
