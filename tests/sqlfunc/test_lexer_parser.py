"""Tests for the expression lexer and parser."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExpressionSyntaxError
from repro.sqlfunc import (
    BinOp,
    Column,
    Neg,
    Number,
    Param,
    TokenType,
    parse,
    tokenize,
)


class TestLexer:
    def test_tokens(self):
        tokens = tokenize("a + 2.5 * ? - (b / 1e3)")
        types = [t.type for t in tokens]
        assert types == [
            TokenType.IDENT,
            TokenType.PLUS,
            TokenType.NUMBER,
            TokenType.STAR,
            TokenType.PARAM,
            TokenType.MINUS,
            TokenType.LPAREN,
            TokenType.IDENT,
            TokenType.SLASH,
            TokenType.NUMBER,
            TokenType.RPAREN,
            TokenType.EOF,
        ]

    def test_number_values(self):
        tokens = tokenize("3.25 .5 2e-3")
        assert [t.value for t in tokens[:-1]] == [3.25, 0.5, 0.002]

    def test_value_on_non_number(self):
        token = tokenize("abc")[0]
        with pytest.raises(ExpressionSyntaxError):
            _ = token.value

    def test_identifier_with_underscores_digits(self):
        tokens = tokenize("active_power2")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].text == "active_power2"

    def test_illegal_character(self):
        with pytest.raises(ExpressionSyntaxError, match="unexpected character"):
            tokenize("a @ b")

    def test_positions_recorded(self):
        tokens = tokenize("a  +b")
        assert [t.position for t in tokens[:-1]] == [0, 3, 4]


class TestParser:
    def test_precedence(self):
        expr = parse("a + b * c")
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse("a - b - c")
        # (a - b) - c
        assert isinstance(expr.left, BinOp) and expr.left.op == "-"
        assert expr.right == Column("c")

    def test_parentheses_override(self):
        expr = parse("(a + b) * c")
        assert isinstance(expr, BinOp) and expr.op == "*"
        assert isinstance(expr.left, BinOp) and expr.left.op == "+"

    def test_unary_minus(self):
        expr = parse("-a * b")
        # Unary binds tighter: (-a) * b
        assert isinstance(expr, BinOp) and expr.op == "*"
        assert isinstance(expr.left, Neg)

    def test_double_negation(self):
        expr = parse("--2")
        assert isinstance(expr, Neg) and isinstance(expr.operand, Neg)

    def test_params_numbered_left_to_right(self):
        expr = parse("? * a + ? * b")
        assert expr.params() == frozenset({0, 1})
        assert expr.left.left == Param(0)
        assert expr.right.left == Param(1)

    def test_example1_expression(self):
        expr = parse("active_power - ? * voltage * current")
        assert expr.columns() == frozenset({"active_power", "voltage", "current"})
        assert expr.params() == frozenset({0})

    @pytest.mark.parametrize(
        "bad",
        ["", "a +", "* a", "(a + b", "a b", "a + + b..", "1 2"],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(ExpressionSyntaxError):
            parse(bad)

    def test_evaluation_round_trip(self):
        expr = parse("2 * x + ? * (y - 1) / 4")
        env = {"x": np.array([1.0, 2.0]), "y": np.array([5.0, 9.0])}
        values = expr.evaluate(env, [8.0])
        assert np.allclose(values, [2.0 + 8.0, 4.0 + 16.0])
