"""Tests for Table and FunctionIndexHandle (the Example 1 pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ParameterDomain
from repro.exceptions import (
    DimensionMismatchError,
    UnknownColumnError,
)
from repro.sqlfunc import Table


@pytest.fixture
def households(rng):
    """A small consumption-like table with controllable power factors."""
    n = 800
    voltage = rng.uniform(223.0, 254.0, n)
    current = rng.uniform(0.5, 48.0, n)
    pf = rng.beta(6.0, 1.5, n)
    active = pf * voltage * current / 1000.0
    return Table(
        {
            "active_power": active,
            "voltage": voltage,
            "current": current,
        }
    )


EXPR = "active_power - ? * voltage * current / 1000"
DOMAIN = ParameterDomain(low=0.1, high=1.0)


class TestTableBasics:
    def test_construction(self, households):
        assert len(households) == 800
        assert households.column_names == ("active_power", "voltage", "current")
        assert "voltage" in households

    def test_column_read_only(self, households):
        with pytest.raises(ValueError):
            households.column("voltage")[0] = 0.0

    def test_unknown_column(self, households):
        with pytest.raises(UnknownColumnError):
            households.column("nope")

    def test_ragged_columns_rejected(self):
        with pytest.raises(DimensionMismatchError):
            Table({"a": np.ones(3), "b": np.ones(4)})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Table({})


class TestFilter:
    def test_filter_matches_manual(self, households):
        ids = households.filter(EXPR, [0.5])
        active = households.column("active_power")
        va = households.column("voltage") * households.column("current") / 1000.0
        expected = np.nonzero(active - 0.5 * va <= 0)[0]
        assert np.array_equal(ids, expected)

    def test_filter_ops(self, households):
        le = households.filter(EXPR, [0.5], op="<=")
        gt = households.filter(EXPR, [0.5], op=">")
        assert len(le) + len(gt) == len(households)

    def test_filter_unknown_column(self, households):
        with pytest.raises(UnknownColumnError):
            households.filter("mystery + ?", [1.0])


class TestFunctionIndex:
    def test_index_matches_scan(self, households):
        handle = households.create_function_index(EXPR, [DOMAIN], n_indices=15, rng=0)
        for threshold in (0.2, 0.5, 0.8, 0.95):
            answer = handle.query([threshold])
            assert np.array_equal(answer.ids, handle.scan([threshold]))
            assert not answer.used_fallback

    def test_all_comparison_ops(self, households):
        handle = households.create_function_index(EXPR, [DOMAIN], n_indices=10, rng=0)
        for op in ("<=", "<", ">=", ">"):
            assert np.array_equal(
                handle.query([0.6], op=op).ids, handle.scan([0.6], op=op)
            )

    def test_custom_rhs(self, households):
        handle = households.create_function_index(EXPR, [DOMAIN], n_indices=5, rng=0)
        assert np.array_equal(
            handle.query([0.6], rhs=1.5).ids, handle.scan([0.6], rhs=1.5)
        )

    def test_topk(self, households):
        handle = households.create_function_index(EXPR, [DOMAIN], n_indices=15, rng=0)
        result = handle.topk([0.7], 10)
        # The closest rows to the boundary are those with pf nearest 0.7.
        scan_ids = handle.scan([0.7])
        env = households.env()
        values = (
            env["active_power"] - 0.7 * env["voltage"] * env["current"] / 1000.0
        )
        distances = np.abs(values[scan_ids]) / np.linalg.norm(
            handle.form.query_normal([0.7])
        )
        assert np.allclose(np.sort(result.distances), np.sort(distances)[:10])

    def test_feature_names_exposed(self, households):
        handle = households.create_function_index(EXPR, [DOMAIN], n_indices=2, rng=0)
        assert handle.feature_names[0] == "active_power"

    def test_domain_arity_checked(self, households):
        with pytest.raises(DimensionMismatchError):
            households.create_function_index(EXPR, [DOMAIN, DOMAIN])

    def test_unknown_column_rejected(self, households):
        with pytest.raises(UnknownColumnError):
            households.create_function_index("ghost - ?", [DOMAIN])

    def test_drop_function_index(self, households):
        handle = households.create_function_index(EXPR, [DOMAIN], n_indices=2, rng=0)
        households.drop_function_index(handle)
        households.append_rows(
            {"active_power": [1.0], "voltage": [230.0], "current": [10.0]}
        )
        # Handle no longer tracks the table; its index still has 800 rows.
        assert len(handle.index) == 800


class TestDynamicPropagation:
    def test_append_rows_updates_index(self, households):
        handle = households.create_function_index(EXPR, [DOMAIN], n_indices=5, rng=0)
        new_ids = households.append_rows(
            {
                "active_power": [0.1, 9.0],
                "voltage": [230.0, 240.0],
                "current": [20.0, 40.0],
            }
        )
        assert np.array_equal(new_ids, [800, 801])
        assert np.array_equal(handle.query([0.5]).ids, handle.scan([0.5]))
        # Row 800 has pf ~ 0.022: must satisfy a 0.5 threshold.
        assert 800 in set(handle.query([0.5]).ids.tolist())

    def test_update_rows_updates_index(self, households):
        handle = households.create_function_index(EXPR, [DOMAIN], n_indices=5, rng=0)
        households.update_rows(
            np.array([0, 1]), {"active_power": [0.0, 11.0]}
        )
        assert np.array_equal(handle.query([0.5]).ids, handle.scan([0.5]))
        assert 0 in set(handle.query([0.5]).ids.tolist())

    def test_append_validation(self, households):
        with pytest.raises(DimensionMismatchError):
            households.append_rows({"active_power": [1.0]})
        with pytest.raises(UnknownColumnError):
            households.append_rows(
                {
                    "active_power": [1.0],
                    "voltage": [230.0],
                    "current": [1.0],
                    "ghost": [0.0],
                }
            )
        with pytest.raises(DimensionMismatchError):
            households.append_rows(
                {
                    "active_power": [1.0, 2.0],
                    "voltage": [230.0],
                    "current": [1.0],
                }
            )

    def test_update_validation(self, households):
        with pytest.raises(IndexError):
            households.update_rows(np.array([10_000]), {"voltage": [230.0]})
        with pytest.raises(UnknownColumnError):
            households.update_rows(np.array([0]), {"ghost": [1.0]})
        with pytest.raises(DimensionMismatchError):
            households.update_rows(np.array([0]), {"voltage": [230.0, 231.0]})
