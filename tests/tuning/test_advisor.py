"""Advisor tests: determinism, correctness, lifecycle safety, persistence.

The acceptance bars of the tuning subsystem:

* results stay **bit-identical** through advise -> apply on both facades,
* the advised portfolio cuts the measured mean |II| by >= 25% on a
  skewed workload at equal budget,
* ``advise`` is deterministic and never mutates; ``dry_run`` never
  mutates,
* a stale plan (baseline mismatch) is refused.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import FunctionIndex, ShardedFunctionIndex, TuningError
from repro.tuning import (
    Advisor,
    PlanAction,
    QuerySketch,
    TuningPlan,
    apply_plan,
    enable_recording,
    load_plan,
    save_plan,
)


def _measured_ii(index, sketches):
    sizes, ids = [], []
    for sketch in sketches:
        answer = index.query(sketch.normal, sketch.offset, op=sketch.op)
        sizes.append(answer.stats.ii_size if answer.stats is not None else len(index))
        ids.append(answer.ids)
    return float(np.mean(sizes)), ids


class TestAdvise:
    def test_deterministic(self, index, skewed_sketches):
        advisor = Advisor(index, sketches=skewed_sketches)
        one = advisor.advise(budget=5, n_candidates=24, seed=3)
        two = advisor.advise(budget=5, n_candidates=24, seed=3)
        assert one.to_dict() == two.to_dict()

    def test_advise_never_mutates(self, index, skewed_sketches):
        before = index.collection.normals.copy()
        Advisor(index, sketches=skewed_sketches).advise(budget=5, n_candidates=16)
        assert np.array_equal(index.collection.normals, before)

    def test_predicted_matches_baseline_executor(self, index, skewed_sketches):
        """The plan's predicted baseline |II| is the executor's measured one."""
        plan = Advisor(index, sketches=skewed_sketches).advise(budget=5)
        measured, _ = _measured_ii(index, skewed_sketches)
        assert plan.predicted_ii_before == pytest.approx(measured)

    def test_budget_and_candidates_validated(self, index, skewed_sketches):
        advisor = Advisor(index, sketches=skewed_sketches)
        with pytest.raises(TuningError):
            advisor.advise(budget=0)
        with pytest.raises(TuningError):
            advisor.advise(n_candidates=-1)

    def test_requires_workload(self, index):
        with pytest.raises(TuningError, match="no recorded workload"):
            Advisor(index, sketches=())

    def test_uses_global_recorder_by_default(self, index, model):
        enable_recording()
        index.query(model.sample_normal(0), 500.0)
        advisor = Advisor(index)
        assert len(advisor.sketches) == 1

    def test_rejects_raw_collection(self, index, skewed_sketches):
        with pytest.raises(TuningError, match="facade"):
            Advisor(index.collection, sketches=skewed_sketches)

    def test_skips_foreign_dimension_sketches(self, index, skewed_sketches):
        mixed = skewed_sketches + (QuerySketch([1.0, 2.0], 3.0),)
        plan = Advisor(index, sketches=mixed).advise(budget=5)
        assert plan.n_queries == len(skewed_sketches)

    def test_all_incompatible_workload_rejected(self, index):
        foreign = (QuerySketch([1.0, 2.0], 3.0),)
        with pytest.raises(TuningError, match="octant-servable"):
            Advisor(index, sketches=foreign).advise(budget=5)

    def test_max_points_subsample_deterministic(self, index, skewed_sketches):
        advisor = Advisor(index, sketches=skewed_sketches, max_points=500)
        one = advisor.advise(budget=5, seed=1)
        two = advisor.advise(budget=5, seed=1)
        assert one.to_dict() == two.to_dict()
        with pytest.raises(TuningError):
            Advisor(index, sketches=skewed_sketches, max_points=0)


class TestApply:
    def test_results_bit_identical_function_index(self, index, skewed_sketches):
        before_ii, before_ids = _measured_ii(index, skewed_sketches)
        plan = Advisor(index, sketches=skewed_sketches).advise(
            budget=5, n_candidates=32, seed=0
        )
        apply_plan(index, plan)
        after_ii, after_ids = _measured_ii(index, skewed_sketches)
        for one, two in zip(before_ids, after_ids):
            assert np.array_equal(one, two)
        # The skewed workload leaves >= 25% on the table for the advisor.
        assert after_ii <= 0.75 * before_ii
        assert after_ii == pytest.approx(plan.predicted_ii_after)

    def test_results_bit_identical_sharded(self, points, model, skewed_sketches):
        with ShardedFunctionIndex(
            points, model, n_indices=5, rng=0, n_shards=3
        ) as engine:
            before_ii, before_ids = _measured_ii(engine, skewed_sketches)
            plan = Advisor(engine, sketches=skewed_sketches).advise(
                budget=5, n_candidates=32, seed=0
            )
            apply_plan(engine, plan)
            after_ii, after_ids = _measured_ii(engine, skewed_sketches)
            for one, two in zip(before_ids, after_ids):
                assert np.array_equal(one, two)
            assert after_ii <= 0.75 * before_ii
            # Every shard converged to the same portfolio.
            reference = engine.collections[0].normals
            for collection in engine.collections[1:]:
                assert np.array_equal(collection.normals, reference)

    def test_sharded_plan_matches_monolithic_plan(
        self, points, model, skewed_sketches
    ):
        mono = FunctionIndex(points, model, n_indices=5, rng=0)
        with ShardedFunctionIndex(
            points, model, n_indices=5, rng=0, n_shards=3
        ) as engine:
            plan_mono = Advisor(mono, sketches=skewed_sketches).advise(
                budget=5, n_candidates=16, seed=2
            )
            plan_shard = Advisor(engine, sketches=skewed_sketches).advise(
                budget=5, n_candidates=16, seed=2
            )
        # Same data, same normals, same workload -> same portfolio (the
        # predicted |II| means differ only by shard-local subsampling,
        # which the advisor does not do — so everything matches).
        assert plan_mono.to_dict() == plan_shard.to_dict()

    def test_dry_run_never_mutates(self, index, skewed_sketches):
        plan = Advisor(index, sketches=skewed_sketches).advise(budget=5)
        before = index.collection.normals.copy()
        summary = apply_plan(index, plan, dry_run=True)
        assert np.array_equal(index.collection.normals, before)
        assert summary["dry_run"] and not summary["applied"]
        # Still appliable afterwards: dry-run did not consume the plan.
        apply_plan(index, plan)
        assert index.n_indices == len(plan.portfolio_normals)

    def test_stale_plan_refused(self, index, skewed_sketches):
        plan = Advisor(index, sketches=skewed_sketches).advise(budget=5)
        index.add_index(np.array([2.0, 2.0, 2.0, 2.0]))
        with pytest.raises(TuningError, match="stale"):
            apply_plan(index, plan)
        with pytest.raises(TuningError, match="stale"):
            apply_plan(index, plan, dry_run=True)

    def test_reapply_refused(self, index, skewed_sketches):
        plan = Advisor(index, sketches=skewed_sketches).advise(
            budget=5, n_candidates=32
        )
        apply_plan(index, plan)
        if not plan.is_noop():
            with pytest.raises(TuningError, match="stale"):
                apply_plan(index, plan)

    def test_portfolio_matches_plan(self, index, skewed_sketches):
        plan = Advisor(index, sketches=skewed_sketches).advise(
            budget=4, n_candidates=32
        )
        apply_plan(index, plan)
        assert np.array_equal(
            index.collection.normals, np.asarray(plan.portfolio_normals)
        )

    def test_apply_under_concurrent_queries(self, points, model, skewed_sketches):
        """Queries racing an advise -> apply stay exact throughout."""
        with ShardedFunctionIndex(
            points, model, n_indices=5, rng=0, n_shards=2
        ) as engine:
            oracle = {
                i: engine.query(s.normal, s.offset).ids
                for i, s in enumerate(skewed_sketches)
            }
            stop = threading.Event()
            failures: list[str] = []

            def hammer() -> None:
                position = 0
                while not stop.is_set():
                    sketch = skewed_sketches[position % len(skewed_sketches)]
                    got = engine.query(sketch.normal, sketch.offset).ids
                    if not np.array_equal(got, oracle[position % len(oracle)]):
                        failures.append(f"query {position} diverged")
                        return
                    position += 1

            threads = [threading.Thread(target=hammer) for _ in range(3)]
            for thread in threads:
                thread.start()
            try:
                plan = Advisor(engine, sketches=skewed_sketches).advise(
                    budget=5, n_candidates=24
                )
                apply_plan(engine, plan)
            finally:
                stop.set()
                for thread in threads:
                    thread.join()
            assert not failures
            _, after_ids = _measured_ii(engine, skewed_sketches)
            for i, ids in enumerate(after_ids):
                assert np.array_equal(ids, oracle[i])


class TestPlan:
    def test_json_round_trip(self, tmp_path, index, skewed_sketches):
        plan = Advisor(index, sketches=skewed_sketches).advise(
            budget=5, n_candidates=16, seed=4
        )
        path = save_plan(plan, tmp_path / "plan.json")
        assert load_plan(path).to_dict() == plan.to_dict()

    def test_loaded_plan_applies(self, tmp_path, index, skewed_sketches):
        plan = Advisor(index, sketches=skewed_sketches).advise(budget=5)
        path = plan.save(tmp_path / "plan.json")
        reloaded = TuningPlan.load(path)
        summary = apply_plan(index, reloaded)
        assert summary["applied"]

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        with pytest.raises(TuningError, match="not a JSON object"):
            load_plan(bad)
        bad.write_text("{nope")
        with pytest.raises(TuningError, match="cannot read"):
            load_plan(bad)

    def test_from_dict_rejects_versions_and_shapes(self):
        with pytest.raises(TuningError, match="version"):
            TuningPlan.from_dict({"format_version": 999})
        with pytest.raises(TuningError, match="malformed"):
            TuningPlan.from_dict({"format_version": 1, "actions": []})

    def test_action_validation(self):
        with pytest.raises(TuningError, match="unknown plan action"):
            PlanAction(action="replace", normal=(1.0,))

    def test_render_mentions_every_action(self, index, skewed_sketches):
        plan = Advisor(index, sketches=skewed_sketches).advise(
            budget=5, n_candidates=32
        )
        text = plan.render()
        assert "tuning plan" in text
        assert text.count("add") >= len(plan.adds)
        assert text.count("drop @ position") == len(plan.drops)

    def test_noop_plan_when_already_optimal(self, points, model, skewed_sketches):
        """Re-advising an already-advised index changes nothing."""
        index = FunctionIndex(points, model, n_indices=5, rng=0)
        advisor = Advisor(index, sketches=skewed_sketches)
        first = advisor.advise(budget=5, n_candidates=24, seed=0)
        apply_plan(index, first)
        second = Advisor(index, sketches=skewed_sketches).advise(
            budget=5, n_candidates=24, seed=0
        )
        assert second.is_noop()
        summary = apply_plan(index, second)
        assert summary["added"] == 0 and summary["dropped"] == 0
