"""CLI tests: ``repro tune record|advise|apply`` round-trips on disk."""

from __future__ import annotations

import io

import pytest

from repro.cli import main as repro_main
from repro.tuning import load_plan, load_workload
from repro.tuning.cli import main as tune_main

_SIZE = ["--n", "3000", "--dim", "4", "--indices", "4", "--seed", "9"]


def _run(argv) -> tuple[int, str]:
    stream = io.StringIO()
    code = tune_main(argv, stream)
    return code, stream.getvalue()


@pytest.fixture
def paths(tmp_path):
    return str(tmp_path / "workload.npz"), str(tmp_path / "plan.json")


class TestTuneCli:
    def test_record_advise_apply_round_trip(self, paths):
        workload, plan = paths
        code, out = _run(
            ["record", "--workload", workload, "--queries", "30", *_SIZE]
        )
        assert code == 0 and "recorded 30 sketches" in out
        assert len(load_workload(workload)) == 30

        code, out = _run(
            ["advise", "--workload", workload, "--plan", plan,
             "--budget", "4", "--candidates", "16", *_SIZE]
        )
        assert code == 0 and "tuning plan" in out and "plan written" in out
        loaded = load_plan(plan)
        assert loaded.budget == 4

        code, out = _run(
            ["apply", "--workload", workload, "--plan", plan, "--dry-run", *_SIZE]
        )
        assert code == 0 and "dry-run (not applied)" in out

        code, out = _run(
            ["apply", "--workload", workload, "--plan", plan, *_SIZE]
        )
        assert code == 0 and "applied" in out and "reduction" in out

    def test_missing_workload_is_clean_error(self, paths, capsys):
        workload, plan = paths
        code, _ = _run(["advise", "--workload", workload, "--plan", plan, *_SIZE])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_stale_plan_is_clean_error(self, paths, capsys):
        workload, plan = paths
        assert _run(["record", "--workload", workload, "--queries", "10", *_SIZE])[0] == 0
        assert _run(
            ["advise", "--workload", workload, "--plan", plan,
             "--candidates", "8", *_SIZE]
        )[0] == 0
        # Apply against a *different* baseline (other seed) -> stale.
        other = [*_SIZE]
        other[other.index("9")] = "10"
        code, _ = _run(["apply", "--workload", workload, "--plan", plan, *other])
        assert code == 1
        assert "stale" in capsys.readouterr().err

    def test_bad_usage_exit_code(self):
        assert tune_main(["frobnicate"]) == 2

    def test_wired_into_main_cli(self, paths, capsys):
        workload, _ = paths
        code = repro_main(
            ["tune", "record", "--workload", workload, "--queries", "5", *_SIZE]
        )
        assert code == 0
        assert "recorded 5 sketches" in capsys.readouterr().out

    def test_main_cli_help_lists_tune(self, capsys):
        with pytest.raises(SystemExit):
            repro_main(["--help"])
        assert "tune" in capsys.readouterr().out
