"""Tests for the workload-adaptive tuning subsystem (repro.tuning)."""
