"""Shared fixtures for the tuning tests: indexes + skewed workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FunctionIndex, QueryModel
from repro.datasets.workloads import eq18_offset, skewed_normals
from repro.tuning import QuerySketch
from repro.tuning import recorder as recorder_module


@pytest.fixture(autouse=True)
def _recording_isolation():
    """Disarm recording and empty the global recorder around every test."""
    was = recorder_module.RECORDING
    recorder_module.disable_recording()
    recorder_module.global_recorder().clear()
    yield
    recorder_module.RECORDING = was
    recorder_module.global_recorder().clear()


@pytest.fixture
def points() -> np.ndarray:
    """A small positive-octant dataset."""
    return np.random.default_rng(5).uniform(1.0, 100.0, size=(3000, 4))


@pytest.fixture
def model() -> QueryModel:
    """The standard Section 7.1 discrete query model in four dimensions."""
    return QueryModel.uniform(dim=4, low=1.0, high=5.0, rq=4)


@pytest.fixture
def index(points, model) -> FunctionIndex:
    """A FunctionIndex with a deliberately small blind portfolio."""
    return FunctionIndex(points, model, n_indices=5, rng=0)


@pytest.fixture
def skewed_sketches(points, model) -> tuple[QuerySketch, ...]:
    """A concentrated Eq. 18 workload the advisor can exploit."""
    maxima = points.max(axis=0)
    normals = skewed_normals(model, 40, concentration=0.9, rng=11)
    return tuple(
        QuerySketch(normal, eq18_offset(normal, maxima, 0.25))
        for normal in normals
    )
