"""Unit tests: QuerySketch, WorkloadRecorder, persistence, facade hooks."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import ShardedFunctionIndex, TuningError
from repro.tuning import (
    DEFAULT_CAPACITY,
    QuerySketch,
    WorkloadRecorder,
    disable_recording,
    enable_recording,
    global_recorder,
    load_workload,
    record_query,
    recording_enabled,
    save_workload,
)
from repro.tuning import recorder as recorder_module


class TestQuerySketch:
    def test_normalizes_and_freezes(self):
        sketch = QuerySketch([1, 2, 3], 4)
        assert sketch.normal.dtype == np.float64
        assert not sketch.normal.flags.writeable
        assert sketch.offset == 4.0
        assert sketch.dim == 3
        assert sketch.op == "<=" and sketch.kind == "inequality" and sketch.k == 0

    def test_rejects_bad_shapes_and_enums(self):
        with pytest.raises(TuningError):
            QuerySketch(np.ones((2, 2)), 0.0)
        with pytest.raises(TuningError):
            QuerySketch(np.array([]), 0.0)
        with pytest.raises(TuningError):
            QuerySketch([1.0], 0.0, op="==")
        with pytest.raises(TuningError):
            QuerySketch([1.0], 0.0, kind="mystery")


class TestWorkloadRecorder:
    def test_ring_eviction_keeps_recent(self):
        recorder = WorkloadRecorder(capacity=3)
        for value in range(5):
            recorder.record_query([1.0, float(value)], value)
        assert len(recorder) == 3
        assert recorder.total_recorded == 5
        offsets = [sketch.offset for sketch in recorder.sketches()]
        assert offsets == [2.0, 3.0, 4.0]

    def test_capacity_must_be_positive(self):
        with pytest.raises(TuningError):
            WorkloadRecorder(capacity=0)

    def test_clear_preserves_total(self):
        recorder = WorkloadRecorder(capacity=4)
        recorder.record_query([1.0], 0.0)
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.total_recorded == 1

    def test_concurrent_records_all_counted(self):
        recorder = WorkloadRecorder(capacity=10_000)

        def worker(tag: int) -> None:
            for value in range(200):
                recorder.record_query([1.0, float(tag)], value)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert recorder.total_recorded == 800
        assert len(recorder) == 800


class TestPersistence:
    def test_round_trip(self, tmp_path):
        recorder = WorkloadRecorder(capacity=8)
        recorder.record_query([1.0, 2.0], 3.0, op="<", kind="range")
        recorder.record_query([4.0, 5.0], 6.0, kind="topk", k=9)
        path = recorder.save(tmp_path / "workload.npz")
        reloaded = WorkloadRecorder.load(path)
        assert len(reloaded) == 2
        first, second = reloaded.sketches()
        assert np.array_equal(first.normal, [1.0, 2.0])
        assert (first.op, first.kind) == ("<", "range")
        assert (second.kind, second.k) == ("topk", 9)

    def test_empty_save_rejected(self, tmp_path):
        with pytest.raises(TuningError, match="empty workload"):
            save_workload([], tmp_path / "nope.npz")

    def test_mixed_dims_rejected(self, tmp_path):
        sketches = [QuerySketch([1.0], 0.0), QuerySketch([1.0, 2.0], 0.0)]
        with pytest.raises(TuningError, match="dimensionalities"):
            save_workload(sketches, tmp_path / "nope.npz")

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not an archive")
        with pytest.raises(TuningError, match="cannot read"):
            load_workload(bad)

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "versioned.npz"
        np.savez_compressed(
            path,
            format_version=np.asarray(999),
            normals=np.ones((1, 2)),
            offsets=np.zeros(1),
            ops=np.asarray(["<="]),
            kinds=np.asarray(["inequality"]),
            ks=np.zeros(1, dtype=np.int64),
        )
        with pytest.raises(TuningError, match="version"):
            load_workload(path)


class TestArming:
    def test_enable_disable_round_trip(self):
        assert not recording_enabled()
        enable_recording()
        assert recording_enabled()
        disable_recording()
        assert not recording_enabled()

    def test_record_query_noop_when_disarmed(self):
        record_query([1.0, 2.0], 3.0)
        assert len(global_recorder()) == 0

    def test_record_query_records_when_armed(self):
        enable_recording()
        record_query([1.0, 2.0], 3.0)
        assert len(global_recorder()) == 1

    def test_env_var_arms(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_RECORD", "1")
        import importlib

        module = importlib.reload(recorder_module)
        try:
            assert module.RECORDING is True
        finally:
            monkeypatch.delenv("REPRO_TUNE_RECORD")
            importlib.reload(recorder_module)

    def test_default_capacity_constant(self):
        assert global_recorder().capacity == DEFAULT_CAPACITY


class TestFacadeHooks:
    def test_function_index_kinds(self, index, model):
        enable_recording()
        normal = model.sample_normal(0)
        index.query(normal, 500.0)
        index.query_range(normal, 100.0, 900.0)
        index.topk(normal, 500.0, k=3)
        index.query_batch(np.vstack([normal, normal]), [400.0, 600.0])
        kinds = [sketch.kind for sketch in global_recorder().sketches()]
        # range queries record one sketch per bound; batch one per query.
        assert kinds == ["inequality", "range", "range", "topk", "batch", "batch"]
        topk_sketch = global_recorder().sketches()[3]
        assert topk_sketch.k == 3

    def test_sketches_capture_original_coordinates(self, index, model):
        enable_recording()
        normal = model.sample_normal(1)
        index.query(normal, 321.5)
        sketch = global_recorder().sketches()[0]
        assert np.array_equal(sketch.normal, normal)
        assert sketch.offset == 321.5

    def test_disarmed_facade_records_nothing(self, index, model):
        index.query(model.sample_normal(2), 500.0)
        assert len(global_recorder()) == 0

    def test_sharded_engine_records(self, points, model):
        enable_recording()
        with ShardedFunctionIndex(
            points, model, n_indices=4, rng=0, n_shards=2
        ) as engine:
            normal = model.sample_normal(3)
            engine.query(normal, 500.0)
            engine.topk(normal, 500.0, k=2)
        kinds = [sketch.kind for sketch in global_recorder().sketches()]
        assert kinds == ["inequality", "topk"]
