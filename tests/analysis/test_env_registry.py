"""The repro.env registry, the EXPERIMENTS.md matrix, and reality agree.

REP014 already ties registry entries to actual ``os.environ`` reads in
``src/repro`` (see tests/test_lint_clean.py::test_src_is_graph_clean);
this module closes the remaining loop: the human-facing matrix in
EXPERIMENTS.md must list exactly the registered variables, so a flag
cannot ship undocumented or stay documented after removal.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.env import ENV_VARS, var_names

REPO = Path(__file__).resolve().parents[2]


def matrix_names() -> set[str]:
    """Variable names listed in the EXPERIMENTS.md env matrix table."""
    text = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
    section = text.split("## Environment-variable matrix", 1)[1]
    # Stop at the next section header so stray mentions elsewhere in the
    # document don't count as matrix rows.
    section = section.split("\n## ", 1)[0]
    return set(re.findall(r"^\| `(REPRO_[A-Z0-9_]+)", section, re.MULTILINE))


def test_registry_matches_experiments_matrix():
    assert matrix_names() == set(var_names()), (
        "repro.env.ENV_VARS and the EXPERIMENTS.md environment-variable "
        "matrix list different variables — update both together"
    )


def test_registry_entries_are_well_formed():
    names = var_names()
    assert len(names) == len(set(names)), "duplicate registry entries"
    for var in ENV_VARS:
        assert var.name.startswith("REPRO_")
        assert var.name.isupper()
        assert isinstance(var.default, str)
        assert var.help, f"{var.name} needs a help line"
        assert var.scope in ("runtime", "benchmarks")


def test_benchmark_scoped_vars_are_read_by_benchmarks():
    """``scope='benchmarks'`` entries must actually appear in benchmarks/."""
    bench_sources = "\n".join(
        path.read_text(encoding="utf-8")
        for path in (REPO / "benchmarks").rglob("*.py")
    )
    for var in ENV_VARS:
        if var.scope == "benchmarks":
            assert var.name in bench_sources, (
                f"{var.name} is registered with scope='benchmarks' but no "
                f"benchmark reads it"
            )
