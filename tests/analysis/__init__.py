"""Tests for the static-analysis subsystem (linter + runtime contracts)."""
