"""Tests for :mod:`repro.analysis.contracts`.

Covers the contract mini-grammar, the zero-overhead default mode, the
enforcement semantics of every flag, and a subprocess check that
``REPRO_SANITIZE=1`` actually arms the decorated entry points.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import contracts
from repro.analysis.contracts import (
    Contract,
    array_contract,
    checked,
    parse_param_spec,
    parse_return_spec,
    sanitize_enabled,
)
from repro.exceptions import (
    ContractSpecError,
    ContractViolationError,
    DimensionMismatchError,
    ReproError,
)

SRC = Path(__file__).resolve().parents[2] / "src"


# --------------------------------------------------------------------- #
# Grammar
# --------------------------------------------------------------------- #


class TestGrammar:
    def test_basic_param_spec(self):
        spec = parse_param_spec("features: (n, d) float64 C")
        assert spec.name == "features"
        assert spec.dims == ("n", "d")
        assert spec.dtype == np.dtype(np.float64)
        assert spec.contiguous
        assert not spec.cast and not spec.optional

    def test_trailing_comma_one_dim(self):
        spec = parse_param_spec("ids: (m,) int64 cast")
        assert spec.dims == ("m",)
        assert spec.cast

    def test_fixed_integer_dim(self):
        spec = parse_param_spec("corner: (3,) float64")
        assert spec.dims == (3,)

    def test_optional_question_mark(self):
        spec = parse_param_spec("ids: ?(n,) int64 cast")
        assert spec.optional

    def test_optional_flag_word(self):
        assert parse_param_spec("ids: (n,) int64 opt").optional

    def test_nonfinite_flag(self):
        assert not parse_param_spec("vals: (n,) float64 nonfinite").check_finite
        assert parse_param_spec("vals: (n,) float64").check_finite

    def test_any_dtype(self):
        assert parse_param_spec("x: (n,) any").dtype is None

    def test_return_spec_has_no_name(self):
        spec = parse_return_spec("(k,) int64")
        assert spec.name == "<return>"
        with pytest.raises(ContractSpecError):
            parse_return_spec("out: (k,) int64")

    @pytest.mark.parametrize(
        "bad",
        [
            "features (n, d) float64",  # missing colon
            "features: (n, d) float32",  # unknown dtype
            "features: (n, d) float64 Z",  # unknown flag
            "features: (n-d) float64",  # bad dim symbol
            "features: n, d float64",  # missing parens
            "",
        ],
    )
    def test_unparsable_specs(self, bad):
        with pytest.raises(ContractSpecError):
            parse_param_spec(bad)

    def test_duplicate_param_rejected(self):
        with pytest.raises(ContractSpecError):
            Contract.parse(("a: (n,) float64", "a: (n,) int64"), None)

    def test_signature_drift_fails_at_decoration_time(self):
        with pytest.raises(ContractSpecError):

            @array_contract("nope: (n,) float64")
            def fn(values):
                return values


# --------------------------------------------------------------------- #
# Zero-overhead default mode
# --------------------------------------------------------------------- #


class TestDefaultMode:
    def test_decorator_is_identity_when_disabled(self):
        """The deployed configuration: original function object, no wrapper."""
        if sanitize_enabled():
            pytest.skip("suite running under REPRO_SANITIZE=1")

        def fn(values):
            return values

        decorated = array_contract("values: (n,) float64")(fn)
        assert decorated is fn  # not merely equivalent: the same object
        assert hasattr(decorated, "__array_contract__")

    def test_library_entry_points_carry_contracts(self):
        from repro.core.feature_store import FeatureStore
        from repro.core.sorted_keys import SortedKeyStore
        from repro.scan.baseline import SequentialScan

        for fn in (
            FeatureStore.get,
            FeatureStore.take_rows,
            SortedKeyStore.update_batch,
            SequentialScan.query,
        ):
            assert getattr(fn, "__array_contract__", None) is not None

    def test_checked_requires_a_contract(self):
        with pytest.raises(ContractSpecError):
            contracts.checked(len)


# --------------------------------------------------------------------- #
# Enforcement (via contracts.checked, independent of the environment)
# --------------------------------------------------------------------- #


@array_contract(
    "ids: (m,) int64 cast",
    "rows: (m, d) float64 cast",
    returns="(m,) float64",
)
def _keyed(ids, rows, normal=None):
    rows = np.asarray(rows, dtype=np.float64)
    if rows.ndim == 1:
        rows = rows[None, :]
    if normal is None:
        normal = np.ones(rows.shape[1])
    return rows @ normal


@array_contract("x: (n,) float64", returns="(n,) float64")
def _strict_identity(x):
    return x


@array_contract("x: (n,) float64 C")
def _needs_contiguous(x):
    return x


@array_contract("x: ?(n,) float64 cast")
def _optional_arg(x=None):
    return 0 if x is None else len(x)


@array_contract("x: (n,) float64 nonfinite")
def _allows_nan(x):
    return x


@array_contract("x: (n, d) float64 cast promote")
def _promoting(x):
    return np.atleast_2d(np.asarray(x, dtype=np.float64))


@array_contract("x: (n,) float64", returns="(n,) int64")
def _lying_return(x):
    return x  # float64, but the contract promises int64


class TestEnforcement:
    def test_good_call_passes(self):
        fn = checked(_keyed)
        out = fn(np.arange(3, dtype=np.int64), np.ones((3, 2)))
        assert out.shape == (3,)

    def test_cross_parameter_dim_binding(self):
        fn = checked(_keyed)
        with pytest.raises(ContractViolationError, match="conflicts with"):
            fn(np.arange(3, dtype=np.int64), np.ones((4, 2)))

    def test_return_value_binds_same_env(self):
        fn = checked(_keyed)
        # m bound to 2 by the inputs; the (m,) return matches.
        assert fn(np.arange(2, dtype=np.int64), np.ones((2, 5))).shape == (2,)

    def test_return_contract_violation(self):
        fn = checked(_lying_return)
        with pytest.raises(ContractViolationError, match="return"):
            fn(np.ones(4))

    def test_strict_dtype_rejects_float32_ndarray(self):
        fn = checked(_strict_identity)
        with pytest.raises(ContractViolationError, match="dtype"):
            fn(np.ones(4, dtype=np.float32))

    def test_cast_accepts_same_kind(self):
        fn = checked(_keyed)
        # float32 rows are same-kind castable to float64 under `cast`.
        assert fn(np.arange(2), np.ones((2, 3), dtype=np.float32)).shape == (2,)

    def test_cast_rejects_cross_kind(self):
        fn = checked(_keyed)
        with pytest.raises(ContractViolationError, match="castable"):
            fn(np.array([1.5, 2.5]), np.ones((2, 3)))  # float ids

    def test_contiguity_enforced_for_ndarray(self):
        fn = checked(_needs_contiguous)
        strided = np.ones(16)[::2]
        assert not strided.flags["C_CONTIGUOUS"]
        with pytest.raises(ContractViolationError, match="contiguous"):
            fn(strided)
        fn(np.ones(8))  # contiguous passes

    def test_none_rejected_unless_optional(self):
        with pytest.raises(ContractViolationError, match="None"):
            checked(_strict_identity)(None)
        assert checked(_optional_arg)() == 0
        assert checked(_optional_arg)(np.ones(3)) == 3

    def test_nan_rejected_by_default(self):
        fn = checked(_strict_identity)
        # The message names the offending position, mirroring the
        # library's own eager validation.
        with pytest.raises(ContractViolationError, match=r"finite.*\[1\].*nan"):
            fn(np.array([1.0, np.nan]))

    def test_nonfinite_flag_admits_nan(self):
        fn = checked(_allows_nan)
        fn(np.array([np.inf, np.nan]))  # does not raise

    def test_promote_allows_single_point(self):
        fn = checked(_promoting)
        assert fn(np.ones(4)).shape == (1, 4)
        assert fn(np.ones((3, 4))).shape == (3, 4)
        with pytest.raises(ContractViolationError, match="shape"):
            fn(np.ones((2, 3, 4)))

    def test_fixed_dim_enforced(self):
        @array_contract("x: (2,) float64")
        def two(x):
            return x

        fn = checked(two)
        fn(np.ones(2))
        with pytest.raises(ContractViolationError, match="2 required"):
            fn(np.ones(3))

    def test_violation_is_a_value_error(self):
        """Sanitized runs must keep the library's documented error types."""
        assert issubclass(ContractViolationError, DimensionMismatchError)
        assert issubclass(ContractViolationError, ValueError)
        assert issubclass(ContractViolationError, ReproError)

    def test_checked_is_idempotent(self):
        fn = checked(_strict_identity)
        assert checked(fn) is fn

    def test_keyword_arguments_are_bound(self):
        fn = checked(_keyed)
        with pytest.raises(ContractViolationError):
            fn(rows=np.ones((3, 2)), ids=np.arange(4, dtype=np.int64))


# --------------------------------------------------------------------- #
# REPRO_SANITIZE=1 end-to-end (fresh interpreter: env read at import time)
# --------------------------------------------------------------------- #


def _run_sanitized(code: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, REPRO_SANITIZE="1", PYTHONPATH=str(SRC))
    return subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )


class TestSanitizedProcess:
    def test_violation_caught_at_entry_point(self):
        proc = _run_sanitized(
            "import numpy as np\n"
            "from repro.core.feature_store import FeatureStore\n"
            "from repro.exceptions import ContractViolationError\n"
            "store = FeatureStore(np.ones((4, 2)))\n"
            "try:\n"
            "    store.update(np.arange(2), np.full((2, 2), np.nan))\n"
            "except ContractViolationError as exc:\n"
            "    print('CAUGHT', exc)\n"
        )
        assert proc.returncode == 0, proc.stderr
        assert "CAUGHT" in proc.stdout
        assert "nan" in proc.stdout
        assert "[0, 0]" in proc.stdout  # first offending position is named

    def test_good_query_unaffected(self):
        proc = _run_sanitized(
            "import numpy as np\n"
            "from repro.core.planar import PlanarIndex\n"
            "from repro.core.query import ScalarProductQuery\n"
            "rng = np.random.default_rng(7)\n"
            "idx = PlanarIndex.from_features(rng.uniform(1, 9, (50, 3)), np.ones(3))\n"
            "q = ScalarProductQuery(np.array([1.0, 2.0, 1.0]), 20.0)\n"
            "print('OK', len(idx.query(q).ids))\n"
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.startswith("OK")

    def test_wrapper_installed_only_when_enabled(self):
        proc = _run_sanitized(
            "from repro.core.feature_store import FeatureStore\n"
            "print(getattr(FeatureStore.get, '__array_contract_checked__', False))\n"
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "True"
