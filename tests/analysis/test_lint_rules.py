"""Tests for the repo linter: every rule fires, suppression works, the CLI
reports findings in both formats with stable exit codes.

Violations are seeded into scratch files under ``tmp_path``.  Scratch files
live outside the ``repro`` package, so *all* rules apply to them — exactly
the configuration the acceptance criteria exercise.
"""

from __future__ import annotations

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import REGISTRY, lint_file, lint_paths, rule_ids
from repro.analysis.lint import main as lint_main
from repro.analysis.lint import module_name_for

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"

# One minimal seeded violation per rule.  Each module declares an empty
# ``__all__`` where needed so only the rule under test fires (REP001's seed
# has no public names, so a bare module suffices there too).
SEEDS: dict[str, str] = {
    "REP001": (
        "__all__ = []\n"
        "import numpy as np\n"
        "def scan(features, a):\n"
        "    return features @ a\n"
    ),
    "REP002": (
        "__all__ = []\n"
        "import numpy as np\n"
        "x = np.zeros(4, dtype=np.float32)\n"
    ),
    "REP003": (
        "__all__ = []\n"
        "def f(x, acc=[]):\n"
        "    acc.append(x)\n"
        "    return acc\n"
    ),
    "REP004": (
        "__all__ = ['missing_name']\n"
        "def public_fn():\n"
        "    return 1\n"
    ),
    "REP005": (
        "__all__ = []\n"
        "try:\n"
        "    x = 1\n"
        "except Exception:\n"
        "    pass\n"
    ),
    "REP006": (
        "__all__ = []\n"
        "import numpy as np\n"
        "arr = np.arange(10)\n"
        "total = 0\n"
        "for v in arr:\n"
        "    total += v\n"
    ),
    "REP007": (
        "__all__ = []\n"
        "import numpy as np\n"
        "np.random.seed(0)\n"
    ),
    "REP008": (
        "__all__ = []\n"
        "from repro.analysis.contracts import array_contract\n"
        "@array_contract('nope: (n,) float64')\n"
        "def f(values):\n"
        "    return values\n"
    ),
    "REP009": (
        "__all__ = ['f', 'C']\n"
        "def f():\n"
        "    return 1\n"
        "class C:\n"
        "    def method(self):\n"
        "        return 2\n"
    ),
}


def _seed(tmp_path: Path, rule: str) -> Path:
    path = tmp_path / f"violation_{rule.lower()}.py"
    path.write_text(SEEDS[rule], encoding="utf-8")
    return path


# --------------------------------------------------------------------- #
# Registry shape
# --------------------------------------------------------------------- #


class TestRegistry:
    def test_rule_ids_complete_and_sorted(self):
        ids = rule_ids()
        assert ids == sorted(ids)
        assert set(SEEDS) <= set(ids)

    def test_every_rule_documents_itself(self):
        for rule in REGISTRY.values():
            assert rule.id.startswith("REP")
            assert rule.name
            assert rule.summary


# --------------------------------------------------------------------- #
# Each rule fires on its seeded violation
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("rule", sorted(SEEDS))
class TestSeededViolations:
    def test_rule_fires(self, tmp_path, rule):
        findings = lint_file(_seed(tmp_path, rule))
        assert rule in {d.rule for d in findings}, findings

    def test_noqa_silences_exact_rule(self, tmp_path, rule):
        path = _seed(tmp_path, rule)
        findings = lint_file(path, select={rule})
        assert findings, f"{rule} did not fire without noqa"
        lines = SEEDS[rule].splitlines()
        for line_no in sorted({d.line for d in findings}):
            lines[line_no - 1] += f"  # repro: noqa({rule})"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert lint_file(path, select={rule}) == []

    def test_cli_text_exit_1_with_rule_id(self, tmp_path, rule):
        path = _seed(tmp_path, rule)
        stream = io.StringIO()
        code = lint_main([str(path), "--select", rule], stream=stream)
        assert code == 1
        assert rule in stream.getvalue()

    def test_cli_json_exit_1_with_rule_id(self, tmp_path, rule):
        path = _seed(tmp_path, rule)
        stream = io.StringIO()
        code = lint_main([str(path), "--select", rule, "--format", "json"], stream=stream)
        assert code == 1
        payload = json.loads(stream.getvalue())
        assert payload["counts"][rule] >= 1
        assert any(f["rule"] == rule for f in payload["findings"])


# --------------------------------------------------------------------- #
# Driver mechanics
# --------------------------------------------------------------------- #


class TestDriver:
    def test_clean_file_exits_zero(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text(
            '__all__ = ["f"]\n\ndef f():\n    """Docstring."""\n    return 1\n'
        )
        assert lint_main([str(path)], stream=io.StringIO()) == 0

    def test_syntax_error_is_rep000(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        findings = lint_file(path)
        assert [d.rule for d in findings] == ["REP000"]
        assert lint_main([str(path)], stream=io.StringIO()) == 1

    def test_blanket_noqa_silences_everything(self, tmp_path):
        path = tmp_path / "blanket.py"
        path.write_text(
            "__all__ = []\n"
            "import numpy as np\n"
            "x = np.zeros(4, dtype=np.float32)  # repro: noqa\n"
        )
        assert lint_file(path) == []

    def test_noqa_for_other_rule_does_not_silence(self, tmp_path):
        path = tmp_path / "wrong_noqa.py"
        path.write_text(
            "__all__ = []\n"
            "import numpy as np\n"
            "x = np.zeros(4, dtype=np.float32)  # repro: noqa(REP007)\n"
        )
        assert "REP002" in {d.rule for d in lint_file(path)}

    def test_suppressed_counted_in_report(self, tmp_path):
        path = tmp_path / "sup.py"
        path.write_text(
            "__all__ = []\n"
            "import numpy as np\n"
            "x = np.zeros(4, dtype=np.float32)  # repro: noqa(REP002)\n"
        )
        report = lint_paths([path])
        assert report.suppressed == 1
        assert report.exit_code == 0

    def test_directory_discovery_skips_caches(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("import numpy\n")
        (tmp_path / "ok.py").write_text("__all__ = []\n")
        report = lint_paths([tmp_path])
        assert report.files_scanned == 1

    def test_select_unknown_rule_is_usage_error(self, tmp_path):
        path = tmp_path / "x.py"
        path.write_text("__all__ = []\n")
        assert lint_main([str(path), "--select", "REP999"], stream=io.StringIO()) == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        assert lint_main([str(tmp_path / "nope.py")], stream=io.StringIO()) == 2

    def test_stats_output_shape(self, tmp_path):
        path = _seed(tmp_path, "REP003")
        stream = io.StringIO()
        code = lint_main([str(path), "--stats"], stream=stream)
        assert code == 1
        payload = json.loads(stream.getvalue())
        assert payload["lint_counts"]["REP003"] == 1
        assert payload["lint_files_scanned"] == 1
        assert payload["lint_wall_time_s"] >= 0.0
        # Zero entries present for silent rules (stable schema).
        assert set(rule_ids()) <= set(payload["lint_counts"])

    def test_list_rules(self):
        stream = io.StringIO()
        assert lint_main(["--list-rules"], stream=stream) == 0
        out = stream.getvalue()
        for rule_id in rule_ids():
            assert rule_id in out

    def test_module_name_resolution(self, tmp_path):
        assert module_name_for(SRC / "repro" / "core" / "planar.py") == "repro.core.planar"
        assert module_name_for(SRC / "repro" / "__init__.py") == "repro"
        scratch = tmp_path / "scratch.py"
        scratch.write_text("")
        assert module_name_for(scratch) is None

    def test_diagnostics_sorted_and_rendered(self, tmp_path):
        a = tmp_path / "a.py"
        b = tmp_path / "b.py"
        a.write_text(SEEDS["REP003"])
        b.write_text(SEEDS["REP005"])
        report = lint_paths([b, a])
        keys = [(d.path, d.line, d.col) for d in report.diagnostics]
        assert keys == sorted(keys)
        for diagnostic in report.diagnostics:
            line = diagnostic.render()
            assert line.startswith(f"{diagnostic.path}:{diagnostic.line}:")
            assert diagnostic.rule in line


# --------------------------------------------------------------------- #
# Scoping: hot-path exemptions inside the repro package
# --------------------------------------------------------------------- #


class TestScoping:
    def test_rep001_exempt_in_feature_store(self, tmp_path):
        """The same matmul that fires in scratch files is the *job* of
        FeatureStore.scan_values — package scoping must exempt it."""
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        body = SEEDS["REP001"]
        (pkg / "feature_store.py").write_text(body)
        findings = lint_file(pkg / "feature_store.py", select={"REP001"})
        assert findings == []

    def test_rep001_fires_outside_package(self, tmp_path):
        path = tmp_path / "loose.py"
        path.write_text(SEEDS["REP001"])
        assert lint_file(path, select={"REP001"})


# --------------------------------------------------------------------- #
# REP009 specifics: what counts as "public"
# --------------------------------------------------------------------- #


class TestRep009Exemptions:
    def test_private_and_dunder_names_exempt(self, tmp_path):
        path = tmp_path / "private.py"
        path.write_text(
            "__all__ = ['C']\n"
            "def _helper():\n"
            "    return 1\n"
            "class C:\n"
            '    """Documented."""\n'
            "    def __init__(self):\n"
            "        self.x = 1\n"
            "    def _internal(self):\n"
            "        return self.x\n"
        )
        assert lint_file(path, select={"REP009"}) == []

    def test_property_setter_companion_exempt(self, tmp_path):
        path = tmp_path / "props.py"
        path.write_text(
            "__all__ = ['C']\n"
            "class C:\n"
            '    """Documented."""\n'
            "    @property\n"
            "    def value(self):\n"
            '        """Docstring on the getter."""\n'
            "        return self._v\n"
            "    @value.setter\n"
            "    def value(self, v):\n"
            "        self._v = v\n"
        )
        assert lint_file(path, select={"REP009"}) == []

    def test_every_public_shape_flagged(self, tmp_path):
        path = tmp_path / "gaps.py"
        path.write_text(SEEDS["REP009"])
        messages = [d.message for d in lint_file(path, select={"REP009"})]
        assert len(messages) == 3
        assert any("function 'f'" in m for m in messages)
        assert any("class 'C'" in m for m in messages)
        assert any("C.method()" in m for m in messages)


# --------------------------------------------------------------------- #
# CLI integration (python -m repro lint)
# --------------------------------------------------------------------- #


class TestCliIntegration:
    def test_module_invocation_on_seeded_file(self, tmp_path):
        path = _seed(tmp_path, "REP002")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(path), "--format", "json"],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["counts"]["REP002"] == 1
