"""Meta-tests for the cross-module rules REP010–REP014.

Every rule gets at least one *planted* fixture package containing the
violation it exists to catch, plus a clean twin that must pass — so a
rule that silently stops firing (or starts overfiring) fails its
meta-test, not just code review.  Driver integration (noqa filtering of
graph findings, REP000 on unknown noqa ids, ``--select`` implying
``--graph``) is covered at the bottom.
"""

from __future__ import annotations

import re
import textwrap
from pathlib import Path

from repro.analysis.graph import build_graph
from repro.analysis.graph_rules import ARCHITECTURE, check_graph
from repro.analysis.lint import lint_paths, main as lint_main

REPO = Path(__file__).resolve().parents[2]


def write_package(root: Path, name: str, files: dict[str, str]) -> Path:
    pkg = root / name
    for relpath, source in files.items():
        path = pkg / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        current = path.parent
        while current != root:
            init = current / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
            current = current.parent
    return pkg


def findings(pkg: Path, rule: str) -> list:
    return check_graph(build_graph(pkg), select={rule})


class TestLayering:
    def test_forbidden_edge_is_flagged_with_edge_and_allowance(self, tmp_path):
        # ``obs`` may import nothing — an obs -> core edge is the planted
        # violation (the fixture package must be named ``repro`` so the
        # real ARCHITECTURE table applies).
        pkg = write_package(
            tmp_path,
            "repro",
            {
                "obs/bad.py": "from repro.core import engine\n",
                "core/engine.py": "",
            },
        )
        diags = findings(pkg, "REP010")
        assert len(diags) == 1
        message = diags[0].message
        assert "repro.obs.bad" in message and "repro.core.engine" in message
        assert "'obs'" in message and "ARCHITECTURE" in message
        assert diags[0].path.endswith("bad.py")

    def test_allowed_edge_and_lazy_import_pass(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "repro",
            {
                # core -> obs is declared; a function-scoped import of a
                # forbidden target is lazy and therefore exempt.
                "core/good.py": """\
                    from repro.obs import metrics

                    def report():
                        from repro.cli import helper
                        return metrics, helper
                    """,
                "obs/metrics.py": "",
                "cli/helper.py": "",
            },
        )
        assert findings(pkg, "REP010") == []

    def test_import_cycle_is_flagged_once(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "repro",
            {
                "core/a.py": "from repro.core import b\n",
                "core/b.py": "from repro.core import a\n",
            },
        )
        diags = findings(pkg, "REP010")
        cycles = [d for d in diags if "import cycle" in d.message]
        assert len(cycles) == 1
        assert "repro.core.a" in cycles[0].message
        assert "repro.core.b" in cycles[0].message

    def test_undeclared_package_is_flagged(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "repro",
            {
                "mystery/x.py": "from repro.core import engine\n",
                "core/engine.py": "",
            },
        )
        diags = findings(pkg, "REP010")
        assert len(diags) == 1
        assert "not declared in the ARCHITECTURE table" in diags[0].message

    def test_narrow_interface_admits_exact_module_only(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "repro",
            {
                "core/x.py": "from repro.tuning import recorder\n",
                "core/y.py": "from repro.tuning import advisor\n",
                "tuning/recorder.py": "",
                "tuning/advisor.py": "",
            },
        )
        diags = findings(pkg, "REP010")
        assert len(diags) == 1  # recorder sanctioned, advisor not
        assert "repro.tuning.advisor" in diags[0].message

    def test_architecture_table_matches_docs(self):
        """docs/architecture.md mirrors the enforced table verbatim."""
        text = (REPO / "docs" / "architecture.md").read_text(encoding="utf-8")
        rows: dict[str, frozenset] = {}
        for match in re.finditer(
            r"^\| `([a-z_./]+)`[^|]*\| ([^|]*)\|", text, re.MULTILINE
        ):
            key, allowed = match.group(1), match.group(2).strip()
            if key == "repro/__init__":
                key = ""
            elif not key.islower() or "/" in key:
                continue
            rows[key] = (
                frozenset()
                if allowed in ("", "—")
                else frozenset(p.strip("` ") for p in allowed.split(","))
            )
        assert rows == ARCHITECTURE, (
            "docs/architecture.md layering table is out of sync with "
            "repro.analysis.graph_rules.ARCHITECTURE"
        )


class TestLockDiscipline:
    MIXED = textwrap.dedent(
        """\
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def add(self, item):
                with self._lock:
                    self._items.append(item)

            def reset(self):
                self._items = []
        """
    )

    def test_mixed_guarded_unguarded_write_is_flagged(self, tmp_path):
        pkg = write_package(tmp_path, "app", {"store.py": self.MIXED})
        diags = findings(pkg, "REP011")
        assert len(diags) == 1
        assert "reset()" in diags[0].message
        assert "self._lock" in diags[0].message

    def test_all_guarded_twin_passes(self, tmp_path):
        clean = self.MIXED.replace(
            "    def reset(self):\n        self._items = []\n",
            "    def reset(self):\n"
            "        with self._lock:\n"
            "            self._items = []\n",
        )
        assert clean != self.MIXED
        pkg = write_package(tmp_path, "app", {"store.py": clean})
        assert findings(pkg, "REP011") == []

    def test_unguarded_write_on_executor_path_is_flagged(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "engine.py": """\
                    import threading
                    from concurrent.futures import ThreadPoolExecutor

                    class Engine:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self._results = []

                        def run(self):
                            with ThreadPoolExecutor() as pool:
                                pool.submit(self._work)

                        def _work(self):
                            self._results.append(1)
                    """
            },
        )
        diags = findings(pkg, "REP011")
        assert len(diags) == 1
        assert "executor threads" in diags[0].message
        assert "app.engine:" in diags[0].message

    def test_single_threaded_unguarded_write_passes(self, tmp_path):
        # A lock-owning class may mutate without the lock in methods that
        # never run on executor threads, as long as no method guards the
        # same attribute (no mixed discipline).
        pkg = write_package(
            tmp_path,
            "app",
            {
                "store.py": """\
                    import threading

                    class Store:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self._cache = {}

                        def set(self, key, value):
                            self._cache[key] = value
                    """
            },
        )
        assert findings(pkg, "REP011") == []


class TestForkSafety:
    UNSAFE = {
        "state.py": """\
            ENABLED = False

            def enable():
                global ENABLED
                ENABLED = True
            """,
        "engine.py": """\
            from concurrent.futures import ThreadPoolExecutor
            from app import state

            def work(shard):
                if state.ENABLED:
                    return None
                return shard

            def run():
                with ThreadPoolExecutor() as pool:
                    pool.submit(work, 1)
            """,
    }

    def test_global_read_on_submitted_path_is_flagged(self, tmp_path):
        pkg = write_package(tmp_path, "app", self.UNSAFE)
        diags = findings(pkg, "REP012")
        assert len(diags) == 1
        message = diags[0].message
        assert "app.engine.work" in message
        assert "app.state.ENABLED" in message
        assert "app.engine:" in message  # names the submission site
        assert "ProcessPoolExecutor" in message

    def test_parameter_passing_twin_passes(self, tmp_path):
        clean = dict(self.UNSAFE)
        clean["engine.py"] = """\
            from concurrent.futures import ThreadPoolExecutor

            def work(shard, enabled):
                if enabled:
                    return None
                return shard

            def run(enabled):
                with ThreadPoolExecutor() as pool:
                    pool.submit(work, 1, enabled)
            """
        pkg = write_package(tmp_path, "app", clean)
        assert findings(pkg, "REP012") == []

    def test_global_use_off_executor_paths_passes(self, tmp_path):
        # ``enable()`` writes the global but is never submitted.
        pkg = write_package(
            tmp_path, "app", {"state.py": self.UNSAFE["state.py"]}
        )
        assert findings(pkg, "REP012") == []


class TestResourceLifecycle:
    def test_executor_never_closed_is_flagged(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "run.py": """\
                    from concurrent.futures import ThreadPoolExecutor

                    def run(jobs):
                        pool = ThreadPoolExecutor(max_workers=2)
                        return [pool.submit(job).result() for job in jobs]
                    """
            },
        )
        diags = findings(pkg, "REP013")
        assert len(diags) == 1
        assert "executor 'pool'" in diags[0].message
        assert "never closed" in diags[0].message

    def test_with_managed_twin_passes(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "run.py": """\
                    from concurrent.futures import ThreadPoolExecutor

                    def run(jobs):
                        with ThreadPoolExecutor(max_workers=2) as pool:
                            return [pool.submit(job).result() for job in jobs]
                    """
            },
        )
        assert findings(pkg, "REP013") == []

    def test_close_outside_finally_is_straight_line_finding(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "run.py": """\
                    def run(path, data):
                        handle = open(path, "w")
                        handle.write(data)
                        handle.close()
                    """
            },
        )
        diags = findings(pkg, "REP013")
        assert len(diags) == 1
        assert "straight-line path" in diags[0].message

    def test_close_in_finally_passes(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "run.py": """\
                    def run(path, data):
                        handle = open(path, "w")
                        try:
                            handle.write(data)
                        finally:
                            handle.close()
                    """
            },
        )
        assert findings(pkg, "REP013") == []

    def test_factory_leak_is_flagged_at_the_caller(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "res.py": """\
                    class Index:
                        def close(self):
                            pass

                    def make_index(n):
                        index = Index()
                        return index
                    """,
                "use.py": """\
                    from app.res import make_index

                    def leaky(n):
                        index = make_index(n)
                        return index.close is not None
                    """,
            },
        )
        diags = findings(pkg, "REP013")
        assert len(diags) == 1
        assert "app.use.leaky" in diags[0].message
        assert "Index instance 'index'" in diags[0].message

    def test_returning_and_escaping_ownership_passes(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "res.py": """\
                    class Index:
                        def close(self):
                            pass

                    def make_index(n):
                        return Index()

                    def build_all(ns):
                        return [register(Index()) for n in ns]

                    def register(index):
                        return index
                    """
            },
        )
        assert findings(pkg, "REP013") == []

    def test_self_attr_without_teardown_is_flagged(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "engine.py": """\
                    from concurrent.futures import ThreadPoolExecutor

                    class Engine:
                        def start(self):
                            self._pool = ThreadPoolExecutor(max_workers=2)
                    """
            },
        )
        diags = findings(pkg, "REP013")
        assert len(diags) == 1
        assert "self._pool" in diags[0].message
        assert "no close()" in diags[0].message

    def test_self_attr_released_by_teardown_passes(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "engine.py": """\
                    from concurrent.futures import ThreadPoolExecutor

                    class Engine:
                        def start(self):
                            self._pool = ThreadPoolExecutor(max_workers=2)

                        def close(self):
                            self._pool.shutdown()
                    """
            },
        )
        assert findings(pkg, "REP013") == []


class TestEnvRegistry:
    REGISTRY = """\
        class EnvVar:
            def __init__(self, name, default="", help="", scope="runtime"):
                self.name = name

        ENV_VARS = (
            EnvVar("APP_FLAG", "0", "a flag"),
            EnvVar("APP_DEAD", "0", "registered but never read"),
            EnvVar("APP_BENCH", "1", "external harness", scope="benchmarks"),
        )
    """

    def test_unregistered_read_and_dead_flag_are_flagged(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "env.py": self.REGISTRY,
                "config.py": """\
                    import os

                    def load():
                        flag = os.environ.get("APP_FLAG", "0")
                        rogue = os.environ.get("APP_ROGUE")
                        return flag, rogue
                    """,
            },
        )
        diags = findings(pkg, "REP014")
        messages = [d.message for d in diags]
        assert len(diags) == 2
        assert any(
            "'APP_ROGUE'" in m and "not registered" in m for m in messages
        )
        assert any("'APP_DEAD'" in m and "never read" in m for m in messages)
        # Benchmark-scoped entries are exempt from the read check, and
        # non-prefixed reads are out of scope entirely.
        assert not any("APP_BENCH" in m for m in messages)

    def test_registered_and_read_twin_passes(self, tmp_path):
        registry = self.REGISTRY.replace(
            '    EnvVar("APP_DEAD", "0", "registered but never read"),\n', ""
        )
        pkg = write_package(
            tmp_path,
            "app",
            {
                "env.py": registry,
                "config.py": """\
                    import os

                    def load():
                        return os.environ.get("APP_FLAG", "0")
                    """,
            },
        )
        assert findings(pkg, "REP014") == []

    def test_missing_registry_module_names_the_fix(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "config.py": """\
                    import os

                    def load():
                        return os.environ.get("APP_FLAG", "0")
                    """
            },
        )
        diags = findings(pkg, "REP014")
        assert len(diags) == 1
        assert "create the app.env registry module" in diags[0].message


class TestDriverIntegration:
    def test_graph_finding_honors_noqa(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "repro",
            {
                "obs/bad.py": "from repro.core import engine  "
                "# repro: noqa(REP010) — fixture rationale\n",
                "core/engine.py": "",
            },
        )
        report = lint_paths([pkg], select={"REP010"}, graph=True)
        assert report.diagnostics == ()
        assert report.suppressed == 1

    def test_graph_findings_restricted_to_scanned_files(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "repro",
            {
                "obs/bad.py": "from repro.core import engine\n",
                "obs/other.py": "from repro.core import engine\n",
                "core/engine.py": "",
            },
        )
        # Scanning one file still builds the whole-package graph, but
        # only findings in that file are reported.
        report = lint_paths([pkg / "obs" / "bad.py"], graph=True)
        graph_diags = [d for d in report.diagnostics if d.rule == "REP010"]
        assert len(graph_diags) == 1
        assert graph_diags[0].path.endswith("bad.py")

    def test_selecting_a_graph_rule_implies_graph(self, tmp_path, capsys):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "state.py": TestForkSafety.UNSAFE["state.py"],
                "engine.py": TestForkSafety.UNSAFE["engine.py"],
            },
        )
        code = lint_main([str(pkg), "--select", "REP012"])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP012" in out

    def test_unknown_select_is_usage_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path), "--select", "REP999"]) == 2

    def test_unknown_noqa_id_is_rep000(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import os  # repro: noqa(REP999)\n", encoding="utf-8"
        )
        report = lint_paths([path], select={"REP000"})
        assert [d.rule for d in report.diagnostics] == ["REP000"]
        assert "'REP999'" in report.diagnostics[0].message
        assert "no effect" in report.diagnostics[0].message

    def test_unknown_noqa_fires_even_under_select(self, tmp_path):
        # A typo'd suppression must surface no matter which rules run.
        path = tmp_path / "mod.py"
        path.write_text("X = 1  # repro: noqa(REP0O7)\n", encoding="utf-8")
        report = lint_paths([path], select={"REP013"})
        assert [d.rule for d in report.diagnostics] == ["REP000"]

    def test_known_ids_and_blanket_noqa_are_not_flagged(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "A = 1  # repro: noqa(REP001, REP013)\nB = 2  # repro: noqa\n",
            encoding="utf-8",
        )
        report = lint_paths([path], select={"REP000"})
        assert report.diagnostics == ()

    def test_list_rules_includes_graph_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP010", "REP014"):
            assert rule_id in out
        assert "[graph]" in out
