"""Property test: the SI/LI/II interval partition is semantically exact.

For arbitrary integer-valued data and queries (integer arithmetic keeps
``<a, phi(x)>`` exactly representable in float64, so "on the hyperplane"
is a meaningful event rather than a measure-zero accident):

* every point the index places in SI certainly satisfies ``<a, x> < b``,
* every point in LI certainly satisfies ``<a, x> > b``,
* every boundary point (``<a, x> == b`` exactly) lands in the
  intermediate interval — this is what makes the strict operators
  (``<``, ``>``) correct, because only II is re-verified, and
* the full query answer matches the brute-force sequential scan for all
  four comparison operators.

The offset is drawn as the exact key of one data row, so every generated
case contains at least one boundary point and the strict/non-strict
answers genuinely differ.  Run with ``REPRO_SANITIZE=1`` the same
properties hold with every entry point contract-checked.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Comparison, PlanarIndex, ScalarProductQuery
from repro.scan.baseline import SequentialScan

# Small magnitudes: products and sums stay far below 2**53, so float64
# arithmetic over these integers is exact and equality is deterministic.
_coord = st.integers(min_value=-50, max_value=50)
_weight = st.integers(min_value=1, max_value=9)
_sign = st.sampled_from([-1, 1])


@st.composite
def partition_cases(draw):
    dim = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=1, max_value=40))
    rows = draw(
        st.lists(
            st.lists(_coord, min_size=dim, max_size=dim),
            min_size=n,
            max_size=n,
        )
    )
    features = np.array(rows, dtype=np.float64)
    # Index and query normals share a sign pattern (octant compatibility);
    # magnitudes differ so the interval split is non-trivial.
    signs = np.array(draw(st.lists(_sign, min_size=dim, max_size=dim)), dtype=np.float64)
    index_normal = signs * np.array(
        draw(st.lists(_weight, min_size=dim, max_size=dim)), dtype=np.float64
    )
    query_normal = signs * np.array(
        draw(st.lists(_weight, min_size=dim, max_size=dim)), dtype=np.float64
    )
    # Offset = exact key of one row under the query normal: at least one
    # point sits exactly on the hyperplane.
    anchor = draw(st.integers(min_value=0, max_value=n - 1))
    offset = float(query_normal @ features[anchor])
    op = draw(st.sampled_from(list(Comparison)))
    return features, index_normal, query_normal, offset, op, anchor


@settings(max_examples=120, deadline=None)
@given(case=partition_cases())
def test_partition_matches_brute_force(case):
    features, index_normal, query_normal, offset, op, anchor = case
    index = PlanarIndex.from_features(features, index_normal)
    query = ScalarProductQuery(query_normal, offset, op)
    oracle = SequentialScan(features)

    # 1. End-to-end answers agree with the sequential scan, exactly.
    got = index.query(query)
    expected = oracle.query(query)
    np.testing.assert_array_equal(got.ids, expected)

    # 2. The certain intervals really are certain (strictly), so they are
    # valid for strict and non-strict operators alike.
    wq = index.working_query(query)
    r_lo, r_hi, n = index.interval_ranks(wq)
    values = features @ query_normal
    si_ids = np.asarray(index._keys.ids_in_rank_range(0, r_lo))
    li_ids = np.asarray(index._keys.ids_in_rank_range(r_hi, n))
    ii_ids = np.asarray(index._keys.ids_in_rank_range(r_lo, r_hi))
    assert np.all(values[si_ids] < offset), "SI must strictly satisfy < b"
    assert np.all(values[li_ids] > offset), "LI must strictly satisfy > b"
    assert si_ids.size + ii_ids.size + li_ids.size == n == len(features)

    # 3. Every exact-boundary point is in the intermediate interval: the
    # measure-zero slice the strict operators depend on is re-verified,
    # never bulk-classified.
    boundary = np.nonzero(values == offset)[0]
    assert boundary.size >= 1  # the anchor row at minimum
    assert anchor in boundary
    assert set(boundary.tolist()) <= set(ii_ids.tolist())

    # 4. Strict vs non-strict answers differ by exactly the boundary set.
    strict = index.query(query.with_op(Comparison.LT if op.is_upper_bound else Comparison.GT))
    loose = index.query(query.with_op(Comparison.LE if op.is_upper_bound else Comparison.GE))
    np.testing.assert_array_equal(
        np.setdiff1d(loose.ids, strict.ids), np.sort(boundary)
    )


@settings(max_examples=60, deadline=None)
@given(case=partition_cases())
def test_stats_are_consistent(case):
    features, index_normal, query_normal, offset, op, _ = case
    index = PlanarIndex.from_features(features, index_normal)
    result = index.query(ScalarProductQuery(query_normal, offset, op))
    stats = result.stats
    assert stats.si_size + stats.ii_size + stats.li_size == stats.n_total
    assert stats.n_verified == stats.ii_size
    assert stats.n_results == len(result.ids)
    assert 0.0 <= stats.pruned_fraction <= 1.0
