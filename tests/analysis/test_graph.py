"""Unit tests for the whole-program graph layer (repro.analysis.graph).

Each test writes a tiny synthetic package into tmp_path and asserts the
graph facts the cross-module rules (REP010–REP014) consume: import edges
and their lazy flags, lock attributes and guarded writes, module-global
mutable state, environment reads, executor submissions and reachability.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.graph import build_graph, package_root_for


def write_package(root: Path, name: str, files: dict[str, str]) -> Path:
    """Materialise ``{relpath: source}`` as package ``name`` under ``root``."""
    pkg = root / name
    for relpath, source in files.items():
        path = pkg / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        # Every directory on the way needs an __init__.py to be a package.
        current = path.parent
        while current != root:
            init = current / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
            current = current.parent
    return pkg


class TestPackageRoot:
    def test_walks_to_topmost_package(self, tmp_path):
        pkg = write_package(tmp_path, "app", {"sub/mod.py": "X = 1\n"})
        assert package_root_for(pkg / "sub" / "mod.py") == pkg
        assert package_root_for(pkg / "sub") == pkg

    def test_none_outside_a_package(self, tmp_path):
        script = tmp_path / "script.py"
        script.write_text("X = 1\n", encoding="utf-8")
        assert package_root_for(script) is None


class TestImportEdges:
    def test_module_level_vs_lazy(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "a.py": """\
                    from app import b

                    def f():
                        from app import c
                    """,
                "b.py": "",
                "c.py": "",
            },
        )
        graph = build_graph(pkg)
        edges = {(e.target, e.lazy) for e in graph.modules["app.a"].import_edges}
        assert ("app.b", False) in edges
        assert ("app.c", True) in edges
        eager = {e.target for e in graph.module_edges()}
        assert "app.c" not in eager
        assert "app.c" in {e.target for e in graph.module_edges(include_lazy=True)}

    def test_relative_import_resolution(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "sub/a.py": "from ..other import helper\n",
                "other.py": "def helper():\n    pass\n",
            },
        )
        graph = build_graph(pkg)
        targets = {e.target for e in graph.modules["app.sub.a"].import_edges}
        assert targets == {"app.other"}

    def test_from_import_distinguishes_modules_and_names(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "a.py": "from app.sub import mod\nfrom app.other import helper\n",
                "sub/mod.py": "",
                "other.py": "def helper():\n    pass\n",
            },
        )
        graph = build_graph(pkg)
        info = graph.modules["app.a"]
        assert info.module_aliases["mod"] == "app.sub.mod"
        assert info.imported_names["helper"] == ("app.other", "helper")


class TestClassIndex:
    SOURCE = """\
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []
                self._count = 0

            def add(self, item):
                with self._lock:
                    self._items.append(item)

            def reset(self):
                self._count = 0
    """

    def test_lock_attrs_and_guarded_writes(self, tmp_path):
        pkg = write_package(tmp_path, "app", {"store.py": self.SOURCE})
        graph = build_graph(pkg)
        cls = graph.modules["app.store"].classes["Store"]
        assert cls.lock_attrs == {"_lock"}
        writes = {w.attr: w for w in cls.attr_writes if not w.in_init}
        assert "_lock" in writes["_items"].guard_attrs  # mutator call, guarded
        assert not writes["_count"].guard_attrs  # plain assign, unguarded
        init_writes = {w.attr for w in cls.attr_writes if w.in_init}
        assert init_writes == {"_items", "_count"}  # lock ctor excluded

    def test_lock_via_from_import(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "store.py": """\
                    from threading import RLock

                    class Store:
                        def __init__(self):
                            self._mu = RLock()
                    """
            },
        )
        graph = build_graph(pkg)
        assert graph.modules["app.store"].classes["Store"].lock_attrs == {"_mu"}


class TestGlobals:
    def test_global_decl_after_reader_still_counts(self, tmp_path):
        # The reader appears before the ``global`` statement in the file;
        # the two-pass scan must still classify ENABLED as mutable.
        pkg = write_package(
            tmp_path,
            "app",
            {
                "state.py": """\
                    ENABLED = False
                    LIMIT = 10

                    def check():
                        return ENABLED

                    def enable():
                        global ENABLED
                        ENABLED = True
                    """
            },
        )
        graph = build_graph(pkg)
        info = graph.modules["app.state"]
        assert "ENABLED" in info.mutable_globals
        assert "LIMIT" not in info.mutable_globals
        uses = info.functions["check"].global_uses
        assert [(u.name, u.is_write) for u in uses] == [("ENABLED", False)]

    def test_cross_module_alias_access_filtered_to_real_globals(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "state.py": """\
                    ARMED = False
                    CONST = 3

                    def arm():
                        global ARMED
                        ARMED = True
                    """,
                "user.py": """\
                    from app import state

                    def f():
                        return state.ARMED, state.CONST
                    """,
            },
        )
        graph = build_graph(pkg)
        uses = graph.modules["app.user"].functions["f"].global_uses
        assert [(u.owner, u.name) for u in uses] == [("app.state", "ARMED")]


class TestEnvReads:
    SOURCE = """\
        import os
        from os import environ, getenv

        STATE_ENV = "APP_STATE"

        def read():
            a = os.environ.get("APP_FLAG", "0")
            b = os.getenv("APP_SEED")
            c = environ["APP_MODE"]
            d = getenv(STATE_ENV)
            return a, b, c, d
    """

    def test_all_read_forms_and_constant_indirection(self, tmp_path):
        pkg = write_package(tmp_path, "app", {"config.py": self.SOURCE})
        graph = build_graph(pkg)
        names = {r.name for r in graph.modules["app.config"].env_reads}
        assert names == {"APP_FLAG", "APP_SEED", "APP_MODE", "APP_STATE"}


class TestSubmissionsAndReachability:
    SOURCE = {
        "engine.py": """\
            from concurrent.futures import ThreadPoolExecutor
            from app import state

            class Engine:
                def run(self):
                    with ThreadPoolExecutor() as pool:
                        pool.submit(self._work, 1)

                def _work(self, shard):
                    return state.helper(shard)
            """,
        "state.py": """\
            ARMED = False

            def arm():
                global ARMED
                ARMED = True

            def helper(shard):
                if ARMED:
                    return None
                return shard
            """,
    }

    def test_bfs_through_self_and_module_calls(self, tmp_path):
        pkg = write_package(tmp_path, "app", self.SOURCE)
        graph = build_graph(pkg)
        sites = list(graph.submission_sites())
        assert len(sites) == 1 and sites[0].module == "app.engine"
        reachable = graph.reachable_from_submissions()
        assert "app.engine.Engine._work" in reachable
        assert "app.state.helper" in reachable
        assert "app.state.arm" not in reachable  # never called from the pool


class TestResolution:
    def test_resolve_class_through_reexport(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "__init__.py": "from app.impl import Widget\n",
                "impl.py": """\
                    class Widget:
                        def close(self):
                            pass
                    """,
                "user.py": """\
                    from app import Widget

                    def make():
                        return Widget()
                    """,
            },
        )
        graph = build_graph(pkg)
        user = graph.modules["app.user"]
        from repro.analysis.graph import CallRef

        cls = graph.resolve_class(user, CallRef(kind="name", name="Widget"))
        assert cls is not None and cls.qualname == "app.impl.Widget"

    def test_closeable_excludes_pure_context_managers(self, tmp_path):
        pkg = write_package(
            tmp_path,
            "app",
            {
                "res.py": """\
                    class Handle:
                        def close(self):
                            pass

                    class Derived(Handle):
                        pass

                    class Span:
                        def __enter__(self):
                            return self

                        def __exit__(self, *exc):
                            return False
                    """
            },
        )
        graph = build_graph(pkg)
        closeable = graph.closeable_classes()
        assert "app.res.Handle" in closeable
        assert "app.res.Derived" in closeable  # inherited close counts
        assert "app.res.Span" not in closeable
