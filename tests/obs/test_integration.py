"""Integration tests: instrumentation of the live query pipeline.

The key property (ISSUE acceptance): for a deterministic selection
strategy, ``explain()`` reports exactly the SI/II/LI sizes, verification
count, and result count that ``query()`` measures for the same query —
the EXPLAIN layer must never drift from the executor.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FunctionIndex, QueryModel
from repro.obs import metrics as obs_metrics
from repro.obs import recent_traces, to_prometheus
from repro.obs import runtime as obs_runtime


@st.composite
def explain_cases(draw):
    dim = draw(st.integers(min_value=2, max_value=4))
    n = draw(st.integers(min_value=5, max_value=120))
    n_indices = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    strategy = draw(st.sampled_from(["min_stretch", "min_angle"]))
    fraction = draw(st.floats(min_value=0.0, max_value=1.0))
    return dim, n, n_indices, seed, strategy, fraction


class TestExplainMatchesQuery:
    @settings(max_examples=40, deadline=None)
    @given(case=explain_cases())
    def test_sizes_identical(self, case):
        dim, n, n_indices, seed, strategy, fraction = case
        rng = np.random.default_rng(seed)
        points = rng.uniform(1.0, 100.0, size=(n, dim))
        model = QueryModel.uniform(dim=dim, low=1.0, high=5.0, rq=4)
        index = FunctionIndex(
            points, model, n_indices=n_indices, strategy=strategy, rng=seed
        )
        normal = model.sample_normal(seed)
        # Offset sweeps from "nothing satisfies" to "everything satisfies".
        offset = fraction * float(normal @ points.max(axis=0)) * dim
        answer = index.query(normal, offset)
        report = index.explain_report(normal, offset)
        assert report.si_size == answer.stats.si_size
        assert report.ii_size == answer.stats.ii_size
        assert report.li_size == answer.stats.li_size
        assert report.n_verified == answer.stats.n_verified
        assert report.n_results == answer.stats.n_results == len(answer)
        assert report.si_size + report.ii_size + report.li_size == len(index)


@pytest.fixture
def small_index(uniform_points, uniform_model):
    return FunctionIndex(uniform_points, uniform_model, n_indices=5, rng=3)


class TestMetricsRecorded:
    def test_query_increments_counters(self, small_index, uniform_model, obs_enabled):
        counter = obs_metrics.queries_total()
        latency = obs_metrics.query_latency()
        normal = uniform_model.sample_normal(0)
        offset = 30.0 * float(normal.sum())
        answer = small_index.query(normal, offset)

        before = counter.value(
            kind="inequality", route="intervals", strategy="min_stretch"
        ) + counter.value(kind="inequality", route="scan", strategy="min_stretch")
        lat_before = latency.count(kind="inequality", route="intervals") + latency.count(
            kind="inequality", route="scan"
        )
        small_index.query(normal, offset)
        after = counter.value(
            kind="inequality", route="intervals", strategy="min_stretch"
        ) + counter.value(kind="inequality", route="scan", strategy="min_stretch")
        lat_after = latency.count(kind="inequality", route="intervals") + latency.count(
            kind="inequality", route="scan"
        )
        assert after == before + 1
        assert lat_after == lat_before + 1
        assert answer.stats is not None

    def test_interval_partition_counters(self, small_index, uniform_model, obs_enabled):
        intervals = obs_metrics.interval_points()
        verified = obs_metrics.verified_points()
        normal = uniform_model.sample_normal(1)
        offset = 30.0 * float(normal.sum())
        ver_before = verified.value(kind="inequality")
        si_before = sum(
            value
            for key, value in intervals.series().items()
            if key[0] == "si"
        )
        answer = small_index.query(normal, offset)
        ver_after = verified.value(kind="inequality")
        si_after = sum(
            value
            for key, value in intervals.series().items()
            if key[0] == "si"
        )
        assert ver_after - ver_before == answer.stats.n_verified
        assert si_after - si_before == answer.stats.si_size

    def test_selection_counter(self, small_index, uniform_model, obs_enabled):
        selections = obs_metrics.selection_total()
        before = sum(selections.series().values())
        normal = uniform_model.sample_normal(2)
        small_index.query(normal, 100.0)
        assert sum(selections.series().values()) == before + 1

    def test_query_span_tree(self, small_index, uniform_model, obs_enabled):
        normal = uniform_model.sample_normal(4)
        small_index.query(normal, 30.0 * float(normal.sum()))
        trace = recent_traces()[-1]
        # The facade now opens a trace root; the collection span nests under it.
        assert trace.name == "query.inequality"
        assert "trace_id" in trace.attrs
        (collection,) = [c for c in trace.children if c.name == "collection.query"]
        child_names = {child.name for child in collection.children}
        assert "select" in child_names
        assert "binary_search" in child_names
        assert child_names & {"verify_II", "materialize", "scan"}

    def test_topk_span_tree(self, small_index, uniform_model, obs_enabled):
        normal = uniform_model.sample_normal(5)
        small_index.topk(normal, 80.0 * float(normal.sum()), k=10)
        trace = recent_traces()[-1]
        assert trace.name == "query.topk"
        assert "trace_id" in trace.attrs
        (collection,) = [c for c in trace.children if c.name == "collection.topk"]
        child_names = {child.name for child in collection.children}
        assert "binary_search" in child_names

    def test_prometheus_export_has_acceptance_series(
        self, small_index, uniform_model, obs_enabled
    ):
        normal = uniform_model.sample_normal(6)
        small_index.query(normal, 30.0 * float(normal.sum()))
        text = to_prometheus()
        assert "# TYPE repro_query_latency_seconds histogram" in text
        assert "repro_query_latency_seconds_bucket" in text
        assert 'le="+Inf"' in text
        for interval in ("si", "ii", "li"):
            assert f'repro_interval_points_total{{interval="{interval}"' in text

    def test_disabled_path_records_nothing(
        self, small_index, uniform_model, obs_disabled
    ):
        registry = obs_metrics.registry()
        before = registry.n_samples()
        traces_before = len(recent_traces())
        normal = uniform_model.sample_normal(7)
        answer = small_index.query(normal, 30.0 * float(normal.sum()))
        small_index.topk(normal, 80.0 * float(normal.sum()), k=5)
        assert registry.n_samples() == before
        assert len(recent_traces()) == traces_before
        assert answer.stats is not None  # stats stay on, only telemetry is off
