"""Unit tests for tracing spans: nesting, ring buffer, disabled no-op."""

from __future__ import annotations

import time

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.spans import (
    DEFAULT_TRACE_CAPACITY,
    SpanRecord,
    clear_traces,
    current_span,
    recent_traces,
    record,
    set_trace_capacity,
    span,
    trace_capacity,
    traced,
)


class TestDisabledPath:
    def test_span_is_shared_null_singleton(self, obs_disabled):
        first = span("a")
        second = span("b", attr=1)
        assert first is second
        with first:
            assert current_span() is None
        assert recent_traces() == []

    def test_traced_bypasses(self, obs_disabled):
        calls = []

        @traced("named")
        def work(x):
            calls.append(x)
            return x * 2

        assert work(3) == 6
        assert calls == [3]
        assert recent_traces() == []


class TestNesting:
    def test_children_attach_to_parent(self, obs_enabled):
        with span("root", kind="test"):
            with span("child_a"):
                pass
            started = time.perf_counter()
            record("child_b", started, n=7)
        (trace,) = recent_traces()
        assert trace.name == "root"
        assert trace.attrs == {"kind": "test"}
        assert [child.name for child in trace.children] == ["child_a", "child_b"]
        assert trace.children[1].attrs == {"n": 7}
        assert trace.duration >= 0.0

    def test_record_without_parent_is_root(self, obs_enabled):
        record("lonely", time.perf_counter())
        (trace,) = recent_traces()
        assert trace.name == "lonely" and trace.children == []

    def test_current_span_inside(self, obs_enabled):
        with span("outer"):
            assert current_span() is not None
            assert current_span().name == "outer"
            with span("inner"):
                assert current_span().name == "inner"
        assert current_span() is None

    def test_annotate(self, obs_enabled):
        with span("root") as open_span:
            open_span.annotate(n_results=5)
        (trace,) = recent_traces()
        assert trace.attrs == {"n_results": 5}

    def test_traced_decorator_records(self, obs_enabled):
        @traced()
        def busy_work():
            return 42

        assert busy_work() == 42
        (trace,) = recent_traces()
        assert trace.name.endswith("busy_work")

    def test_exception_still_closes_span(self, obs_enabled):
        with pytest.raises(RuntimeError):
            with span("root"):
                with span("child"):
                    raise RuntimeError("boom")
        (trace,) = recent_traces()
        assert trace.name == "root"
        assert [child.name for child in trace.children] == ["child"]
        assert current_span() is None

    def test_spans_feed_histogram(self, obs_enabled):
        histogram = obs_metrics.span_seconds()
        before = histogram.count(name="hist_probe")
        with span("hist_probe"):
            pass
        assert histogram.count(name="hist_probe") == before + 1


class TestRingBuffer:
    def test_capacity_bounds_memory(self, obs_enabled):
        set_trace_capacity(4)
        try:
            for position in range(10):
                with span(f"s{position}"):
                    pass
            traces = recent_traces()
            assert len(traces) == 4
            assert [trace.name for trace in traces] == ["s6", "s7", "s8", "s9"]
            assert trace_capacity() == 4
        finally:
            set_trace_capacity(DEFAULT_TRACE_CAPACITY)

    def test_limit_and_clear(self, obs_enabled):
        for position in range(3):
            with span(f"s{position}"):
                pass
        assert len(recent_traces(limit=2)) == 2
        clear_traces()
        assert recent_traces() == []

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            set_trace_capacity(0)


class TestSpanRecord:
    def test_to_dict_and_render(self):
        root = SpanRecord(name="root", start=0.0, duration=1e-3, attrs={"k": 1})
        root.children.append(SpanRecord(name="leaf", start=0.0, duration=5e-4))
        payload = root.to_dict()
        assert payload["name"] == "root"
        assert payload["duration_us"] == pytest.approx(1000.0)
        assert payload["children"][0]["name"] == "leaf"
        text = root.render()
        assert "root" in text and "leaf" in text and "us" in text
        assert [rec.name for rec in root.walk()] == ["root", "leaf"]
