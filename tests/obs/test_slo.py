"""Unit tests for SLO objectives, burn rates, and ``repro slo check``."""

from __future__ import annotations

import argparse
import io
import json
import math

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import slo as obs_slo
from repro.obs.metrics import MetricsRegistry


def _latency_registry(samples_by_kind, buckets=(0.1, 1.0)):
    """Isolated registry with a latency histogram built from raw samples."""
    reg = MetricsRegistry()
    hist = reg.histogram(
        "repro_query_latency_seconds", "test fixture", ("kind", "route"), buckets
    )
    for kind, samples in samples_by_kind.items():
        for value in samples:
            hist.observe(value, kind=kind, route="intervals")
    return reg


def _completeness_registry(samples_by_kind):
    reg = MetricsRegistry()
    hist = reg.histogram(
        "repro_answer_completeness",
        "test fixture",
        ("kind",),
        obs_metrics.COMPLETENESS_BUCKETS,
    )
    for kind, samples in samples_by_kind.items():
        for value in samples:
            hist.observe(value, kind=kind)
    return reg


class TestParseObjectives:
    def test_valid_spec_roundtrip(self):
        spec = {
            "objectives": [
                {
                    "name": "p95-topk",
                    "type": "latency",
                    "kind": "topk",
                    "quantile": 0.95,
                    "threshold_ms": 50,
                },
                {"name": "whole", "type": "completeness", "floor": 0.99},
            ]
        }
        first, second = obs_slo.parse_objectives(spec)
        assert first.kind == "topk" and first.quantile == 0.95
        assert first.describe() == "p95(topk) <= 50 ms"
        assert second.floor == 0.99 and second.kind == "*"

    @pytest.mark.parametrize(
        ("spec", "match"),
        [
            ({}, "non-empty 'objectives'"),
            ({"objectives": []}, "non-empty 'objectives'"),
            ({"objectives": ["nope"]}, "not an object"),
            ({"objectives": [{"type": "latency"}]}, "missing 'name'"),
            (
                {
                    "objectives": [
                        {"name": "a", "type": "completeness"},
                        {"name": "a", "type": "completeness"},
                    ]
                },
                "duplicate",
            ),
            (
                {"objectives": [{"name": "a", "type": "latency", "quantile": 1.0}]},
                "quantile",
            ),
            (
                {"objectives": [{"name": "a", "type": "latency", "threshold_ms": 0}]},
                "threshold_ms",
            ),
            (
                {"objectives": [{"name": "a", "type": "completeness", "floor": 0.0}]},
                "floor",
            ),
            ({"objectives": [{"name": "a", "type": "availability"}]}, "type"),
        ],
    )
    def test_rejects_malformed_specs(self, spec, match):
        with pytest.raises(ValueError, match=match):
            obs_slo.parse_objectives(spec)

    def test_load_objectives_defaults_without_spec(self, monkeypatch):
        monkeypatch.delenv(obs_slo.SPEC_ENV, raising=False)
        assert obs_slo.load_objectives() == obs_slo.DEFAULT_OBJECTIVES

    def test_load_objectives_reads_env_spec(self, monkeypatch, tmp_path):
        spec = tmp_path / "slo.json"
        spec.write_text(
            json.dumps(
                {"objectives": [{"name": "only", "type": "completeness"}]}
            ),
            encoding="utf-8",
        )
        monkeypatch.setenv(obs_slo.SPEC_ENV, str(spec))
        (objective,) = obs_slo.load_objectives()
        assert objective.name == "only"


class TestHistogramMath:
    def test_estimate_quantile_interpolates(self):
        # 100 observations uniform over [0, 0.1): p50 sits mid-bucket.
        assert obs_slo.estimate_quantile((0.1, 1.0), [100, 0, 0], 0.5) == pytest.approx(
            0.05
        )
        assert math.isnan(obs_slo.estimate_quantile((0.1, 1.0), [0, 0, 0], 0.5))

    def test_estimate_quantile_overflow_reports_last_bound(self):
        assert obs_slo.estimate_quantile((0.1, 1.0), [0, 0, 10], 0.99) == 1.0

    def test_fraction_over(self):
        cells = [80, 0, 20]  # 20% in the overflow cell
        assert obs_slo.fraction_over((0.1, 1.0), cells, 0.1) == pytest.approx(0.2)
        assert obs_slo.fraction_over((0.1, 1.0), cells, 5.0) == pytest.approx(0.2)
        assert obs_slo.fraction_over((0.1, 1.0), [], 0.1) == 0.0

    def test_merge_series_kind_filter(self):
        reg = _latency_registry(
            {"inequality": [0.05] * 3, "topk": [0.05] * 7}
        )
        hist = reg.get("repro_query_latency_seconds")
        _, _, count_all = obs_slo.merge_series(hist, "*")
        _, _, count_topk = obs_slo.merge_series(hist, "topk")
        assert count_all == 10
        assert count_topk == 7


class TestEvaluate:
    def test_latency_within_budget(self):
        # 5% of queries over the 100 ms threshold; p90 objective allows 10%.
        reg = _latency_registry({"inequality": [0.05] * 95 + [2.0] * 5})
        objective = obs_slo.Objective(
            name="p90", type="latency", quantile=0.9, threshold_ms=100.0
        )
        (status,) = obs_slo.evaluate(reg, [objective], publish=False)
        assert status.ok
        assert status.burn_rate == pytest.approx(0.5)
        assert status.n_samples == 100

    def test_latency_burns_budget(self):
        # 20% over threshold against a 10% budget: burn 2x, violated.
        reg = _latency_registry({"inequality": [0.05] * 80 + [2.0] * 20})
        objective = obs_slo.Objective(
            name="p90", type="latency", quantile=0.9, threshold_ms=100.0
        )
        (status,) = obs_slo.evaluate(reg, [objective], publish=False)
        assert not status.ok
        assert status.burn_rate == pytest.approx(2.0)

    def test_latency_kind_filter_isolates_ops(self):
        reg = _latency_registry(
            {"inequality": [2.0] * 50, "topk": [0.05] * 50}
        )
        bad = obs_slo.Objective(
            name="ineq", type="latency", kind="inequality", quantile=0.9,
            threshold_ms=100.0,
        )
        good = obs_slo.Objective(
            name="topk", type="latency", kind="topk", quantile=0.9,
            threshold_ms=100.0,
        )
        statuses = obs_slo.evaluate(reg, [bad, good], publish=False)
        assert [status.ok for status in statuses] == [False, True]

    def test_completeness_mean_is_exact(self):
        reg = _completeness_registry({"inequality": [1.0] * 99 + [0.5]})
        objective = obs_slo.Objective(
            name="complete", type="completeness", floor=0.999
        )
        (status,) = obs_slo.evaluate(reg, [objective], publish=False)
        assert status.observed == pytest.approx(0.995)
        assert status.burn_rate == pytest.approx(5.0)
        assert not status.ok

    def test_completeness_within_floor(self):
        reg = _completeness_registry({"inequality": [1.0] * 99 + [0.5]})
        objective = obs_slo.Objective(
            name="complete", type="completeness", floor=0.99
        )
        (status,) = obs_slo.evaluate(reg, [objective], publish=False)
        assert status.ok
        assert status.burn_rate == pytest.approx(0.5)

    def test_no_data_is_ok_but_flagged(self):
        statuses = obs_slo.evaluate(
            MetricsRegistry(), obs_slo.DEFAULT_OBJECTIVES, publish=False
        )
        for status in statuses:
            assert status.ok
            assert status.n_samples == 0
            assert math.isnan(status.observed)
        table = obs_slo.render_table(statuses)
        assert "NO DATA" in table

    def test_publish_sets_gauges(self):
        reg = _completeness_registry({"inequality": [0.5] * 10})
        objective = obs_slo.Objective(
            name="pub-test-objective", type="completeness", floor=0.999
        )
        obs_slo.evaluate(reg, [objective], publish=True)
        assert obs_metrics.slo_ok().value(objective="pub-test-objective") == 0.0
        assert obs_metrics.slo_burn_rate().value(
            objective="pub-test-objective"
        ) == pytest.approx(500.0)

    def test_render_table_marks_violations(self):
        reg = _completeness_registry({"inequality": [0.5] * 4})
        objective = obs_slo.Objective(name="c", type="completeness", floor=0.999)
        table = obs_slo.render_table(obs_slo.evaluate(reg, [objective], publish=False))
        assert "VIOLATED" in table


class TestRunFromArgs:
    def _args(self, tmp_path, **overrides):
        values = {
            "action": "check",
            "objectives": None,
            "state": str(tmp_path / "no-such-state.json"),
            "json": False,
            "strict": False,
        }
        values.update(overrides)
        return argparse.Namespace(**values)

    def _spec(self, tmp_path, objectives):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"objectives": objectives}), encoding="utf-8")
        return str(path)

    def test_exit_zero_on_lenient_objective(self, tmp_path):
        spec = self._spec(
            tmp_path,
            [
                {
                    "name": "lenient",
                    "type": "latency",
                    "quantile": 0.99,
                    "threshold_ms": 1e9,
                }
            ],
        )
        stream = io.StringIO()
        code = obs_slo.run_from_args(
            self._args(tmp_path, objectives=spec), stream
        )
        assert code == 0

    def test_exit_one_on_violation(self, tmp_path):
        # The unique kind keeps the check isolated from whatever the
        # in-process registry accumulated earlier in the test session
        # (merged_registry overlays it on the state file).
        state = tmp_path / "state.json"
        reg = _completeness_registry({"unit-slo-kind": [0.5] * 10})
        state.write_text(
            json.dumps(reg.snapshot()), encoding="utf-8"
        )
        spec = self._spec(
            tmp_path,
            [
                {
                    "name": "c",
                    "type": "completeness",
                    "kind": "unit-slo-kind",
                    "floor": 0.999,
                }
            ],
        )
        stream = io.StringIO()
        code = obs_slo.run_from_args(
            self._args(tmp_path, objectives=spec, state=str(state)), stream
        )
        assert code == 1
        assert "VIOLATED" in stream.getvalue()

    def test_exit_two_on_bad_spec(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        stream = io.StringIO()
        code = obs_slo.run_from_args(
            self._args(tmp_path, objectives=str(bad)), stream
        )
        assert code == 2
        assert "bad SLO spec" in stream.getvalue()

    def test_strict_turns_no_data_into_failure(self, tmp_path):
        spec = self._spec(
            tmp_path,
            [
                {
                    "name": "ghost",
                    "type": "latency",
                    "kind": "no-such-kind",
                    "threshold_ms": 100,
                }
            ],
        )
        stream = io.StringIO()
        assert (
            obs_slo.run_from_args(self._args(tmp_path, objectives=spec), stream) == 0
        )
        assert (
            obs_slo.run_from_args(
                self._args(tmp_path, objectives=spec, strict=True), stream
            )
            == 1
        )

    def test_json_output_is_machine_readable(self, tmp_path):
        spec = self._spec(
            tmp_path,
            [
                {
                    "name": "c",
                    "type": "completeness",
                    "kind": "unit-slo-kind",
                    "floor": 0.999,
                }
            ],
        )
        stream = io.StringIO()
        code = obs_slo.run_from_args(
            self._args(tmp_path, objectives=spec, json=True), stream
        )
        payload = json.loads(stream.getvalue())
        (entry,) = payload["objectives"]
        assert entry["name"] == "c"
        assert entry["n_samples"] == 0 and entry["ok"] is True
        assert code == 0
