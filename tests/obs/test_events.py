"""Unit tests for the rotating JSONL query log."""

from __future__ import annotations

import json

import pytest

from repro.obs import events as obs_events


@pytest.fixture
def log(tmp_path):
    """An armed query log in a tmp dir, restored on teardown."""
    path = tmp_path / "queries.jsonl"
    previous = obs_events.configure(str(path))
    yield path
    obs_events.configure(previous)


def _record(index: int, **extra) -> dict:
    base = {
        "ts": 1000.0 + index,
        "trace_id": f"{index:016x}",
        "op": "inequality",
        "latency_ms": 1.5,
        "sampled": True,
        "slow": False,
        "shards": 1,
        "retries": 0,
        "n_queries": 1,
        "degraded": None,
    }
    base.update(extra)
    return base


class TestConfigure:
    def test_configure_returns_previous_and_disarms_on_none(self, tmp_path):
        previous = obs_events.configure(str(tmp_path / "a.jsonl"))
        try:
            assert obs_events.armed()
            assert obs_events.log_path() == str(tmp_path / "a.jsonl")
        finally:
            restored = obs_events.configure(previous)
            assert restored == str(tmp_path / "a.jsonl")
        if previous is None:
            assert not obs_events.armed()

    def test_slow_ms_set_and_restore(self):
        previous = obs_events.set_slow_ms(12.5)
        try:
            assert obs_events.slow_ms() == 12.5
        finally:
            obs_events.set_slow_ms(previous)
        assert obs_events.slow_ms() == previous

    def test_emit_swallows_os_errors(self, tmp_path):
        # Pointing the log at a directory makes every write fail; emit
        # must swallow it — telemetry never takes a query down.
        previous = obs_events.configure(str(tmp_path))
        try:
            obs_events.emit(_record(0))
        finally:
            obs_events.configure(previous)


class TestRoundtrip:
    def test_emit_then_tail_oldest_first(self, log):
        for index in range(5):
            obs_events.emit(_record(index))
        tail = obs_events.tail(3, str(log))
        assert [r["trace_id"] for r in tail] == [
            f"{i:016x}" for i in (2, 3, 4)
        ]

    def test_iter_records_skips_torn_lines(self, log):
        obs_events.emit(_record(0))
        with open(log, "a", encoding="utf-8") as handle:
            handle.write('{"torn": \n')
        obs_events.emit(_record(1))
        records = list(obs_events.iter_records(str(log)))
        assert [r["trace_id"] for r in records] == [
            "0000000000000000",
            "0000000000000001",
        ]

    def test_find_returns_last_match_by_prefix(self, log):
        obs_events.emit(_record(0, op="inequality"))
        obs_events.emit(_record(0, op="topk"))  # same id, later record
        obs_events.emit(_record(1))
        found = obs_events.find("0000000000000000", str(log))
        assert found is not None and found["op"] == "topk"
        assert obs_events.find("ffff", str(log)) is None

    def test_records_are_single_json_lines(self, log):
        obs_events.emit(_record(7, degraded={"completeness": 0.75}))
        lines = log.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        parsed = json.loads(lines[0])
        assert parsed["degraded"]["completeness"] == 0.75


class TestRotation:
    def test_rotates_and_keeps_backups(self, tmp_path):
        path = tmp_path / "q.jsonl"
        previous = obs_events.configure(str(path), max_bytes=4096, backups=2)
        try:
            pad = "x" * 200  # ~300 bytes per record → rotate every ~13
            for index in range(60):
                obs_events.emit(_record(index, pad=pad))
            assert path.exists()
            assert (tmp_path / "q.jsonl.1").exists()
            assert (tmp_path / "q.jsonl.2").exists()
            assert not (tmp_path / "q.jsonl.3").exists()
            assert path.stat().st_size <= 4096 + 400
            # iter_records stitches backups oldest-first before the active
            # file, so the retained window stays contiguous and ordered.
            ids = [int(r["trace_id"], 16) for r in obs_events.iter_records(str(path))]
            assert ids == sorted(ids)
            assert ids[-1] == 59
        finally:
            obs_events.configure(previous)


class TestRenderLine:
    def test_flags(self):
        plain = obs_events.render_line(_record(1))
        assert "inequality" in plain and "0000000000000001" in plain
        slow = obs_events.render_line(_record(2, slow=True))
        assert "SLOW" in slow
        unsampled = obs_events.render_line(_record(3, sampled=False))
        assert "unsampled" in unsampled
        errored = obs_events.render_line(_record(4, error="ValueError: boom"))
        assert "ERROR" in errored and "ValueError" in errored
        degraded = obs_events.render_line(
            _record(5, degraded={"completeness": 0.5, "failed_shards": [1]})
        )
        assert "degraded" in degraded and "0.5" in degraded
