"""Unit tests for trace contexts: ids, head sampling, facade protocol."""

from __future__ import annotations

import threading

import pytest

from repro.obs import clear_traces, recent_traces
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import runtime as obs_runtime
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace


@pytest.fixture
def tracing():
    """Armed obs with full sampling and a restored trace-id sequence."""
    was_enabled = obs_runtime.ENABLED
    obs_runtime.enable()
    rate = obs_trace.set_sample_rate(1.0)
    obs_trace.set_seed(0)
    clear_traces()
    yield
    clear_traces()
    obs_trace.set_sample_rate(rate)
    obs_trace.set_seed(0)
    if not was_enabled:
        obs_runtime.disable()


class TestIds:
    def test_ids_deterministic_per_seed(self, tracing):
        obs_trace.set_seed(42)
        first = [obs_trace._next_id() for _ in range(5)]
        obs_trace.set_seed(42)
        second = [obs_trace._next_id() for _ in range(5)]
        assert first == second
        obs_trace.set_seed(43)
        assert [obs_trace._next_id() for _ in range(5)] != first

    def test_reset_ids_restarts_sequence(self, tracing):
        obs_trace.set_seed(7)
        first = obs_trace._next_id()
        obs_trace.reset_ids()
        assert obs_trace._next_id() == first

    def test_ids_are_nonzero_64bit(self, tracing):
        for _ in range(100):
            id64 = obs_trace._next_id()
            assert 0 < id64 < 2**64


class TestSampling:
    def test_pure_function_of_id_bits(self, tracing):
        id64 = obs_trace._next_id()
        assert obs_trace.is_sampled(id64, 0.5) == obs_trace.is_sampled(id64, 0.5)

    def test_rate_extremes(self, tracing):
        id64 = obs_trace._next_id()
        assert obs_trace.is_sampled(id64, 1.0)
        assert not obs_trace.is_sampled(id64, 0.0)

    def test_rate_roughly_respected(self, tracing):
        obs_trace.set_seed(3)
        kept = sum(
            obs_trace.is_sampled(obs_trace._next_id(), 0.1) for _ in range(2000)
        )
        assert 100 < kept < 300  # ~200 expected; splitmix64 is uniform

    def test_set_sample_rate_clamps_and_returns_previous(self, tracing):
        previous = obs_trace.set_sample_rate(7.5)
        assert obs_trace.sample_rate() == 1.0
        obs_trace.set_sample_rate(-1.0)
        assert obs_trace.sample_rate() == 0.0
        obs_trace.set_sample_rate(previous)


class TestFacadeProtocol:
    def test_begin_none_when_disarmed(self):
        was_enabled = obs_runtime.ENABLED
        obs_runtime.disable()
        try:
            assert obs_trace.begin("inequality") is None
        finally:
            if was_enabled:
                obs_runtime.enable()

    def test_begin_none_when_nested(self, tracing):
        ctx = obs_trace.begin("batch")
        assert ctx is not None
        try:
            assert obs_trace.begin("inequality") is None
        finally:
            obs_trace.finish(ctx)

    def test_sampled_trace_opens_root_span(self, tracing):
        ctx = obs_trace.begin("inequality")
        assert ctx is not None and ctx.sampled
        assert obs_trace.current() is ctx
        with obs_spans.span("child"):
            pass
        obs_trace.finish(ctx, stats={"n_verified": 3})
        assert obs_trace.current() is None
        roots = recent_traces()
        assert [root.name for root in roots] == ["query.inequality"]
        assert roots[0].attrs["trace_id"] == ctx.trace_id
        assert roots[0].attrs["n_verified"] == 3
        assert [child.name for child in roots[0].children] == ["child"]

    def test_unsampled_trace_mutes_telemetry(self, tracing):
        obs_trace.set_sample_rate(0.0)
        before = obs_metrics.registry().n_samples()
        ctx = obs_trace.begin("inequality")
        assert ctx is not None and not ctx.sampled
        assert not obs_runtime.active()  # per-query telemetry is muted
        with obs_spans.span("child"):
            pass
        obs_trace.finish(ctx)
        assert obs_runtime.active()
        assert recent_traces() == []
        # Only the exact traces_total counter moved.
        counter = obs_metrics.traces_total()
        assert counter.value(kind="inequality", sampled="0") >= 1.0
        assert obs_metrics.registry().n_samples() >= before

    def test_traces_total_counts_every_trace(self, tracing):
        counter = obs_metrics.traces_total()
        sampled_before = counter.value(kind="range", sampled="1")
        ctx = obs_trace.begin("range")
        obs_trace.finish(ctx)
        assert counter.value(kind="range", sampled="1") == sampled_before + 1

    def test_abort_closes_and_marks_error(self, tracing):
        ctx = obs_trace.begin("topk")
        obs_trace.abort(ctx, ValueError("boom"))
        assert obs_trace.current() is None
        root = recent_traces()[-1]
        assert root.attrs["error"] == "ValueError"

    def test_find_trace_by_prefix(self, tracing):
        ctx = obs_trace.begin("inequality")
        obs_trace.finish(ctx)
        assert obs_trace.find_trace(ctx.trace_id[:6]) is not None
        assert obs_trace.find_trace("not-a-trace") is None


class TestAttach:
    def test_attach_none_is_noop(self, tracing):
        with obs_trace.attach(None):
            assert obs_trace.current() is None

    def test_attach_sampled_stitches_worker_spans(self, tracing):
        ctx = obs_trace.begin("inequality")

        def worker():
            with obs_trace.attach(ctx):
                assert obs_trace.current() is ctx
                with obs_spans.span("shard.work", shard=0):
                    pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        obs_trace.finish(ctx)
        roots = recent_traces()
        assert len(roots) == 1, "worker span must stitch, not orphan"
        assert [child.name for child in roots[0].children] == ["shard.work"]

    def test_attach_unsampled_mutes_worker(self, tracing):
        obs_trace.set_sample_rate(0.0)
        ctx = obs_trace.begin("inequality")
        observed = {}

        def worker():
            with obs_trace.attach(ctx):
                observed["active"] = obs_runtime.active()
            observed["after"] = obs_runtime.active()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        obs_trace.finish(ctx)
        assert observed == {"active": False, "after": True}


class TestQueryLogIntegration:
    def test_sampled_trace_emits_record(self, tracing, tmp_path):
        log = tmp_path / "q.jsonl"
        previous = obs_events.configure(str(log))
        try:
            ctx = obs_trace.begin("inequality")
            obs_trace.finish(ctx, stats={"n_verified": 5}, results=2)
        finally:
            obs_events.configure(previous)
        (record,) = obs_events.tail(5, str(log))
        assert record["trace_id"] == ctx.trace_id
        assert record["op"] == "inequality"
        assert record["sampled"] is True
        assert record["cost"]["n_verified"] == 5
        assert record["results"] == 2
        assert record["degraded"] is None
        assert record["trace"]["name"] == "query.inequality"

    def test_unsampled_fast_trace_not_logged(self, tracing, tmp_path):
        log = tmp_path / "q.jsonl"
        obs_trace.set_sample_rate(0.0)
        previous = obs_events.configure(str(log))
        try:
            ctx = obs_trace.begin("inequality")
            obs_trace.finish(ctx)
        finally:
            obs_events.configure(previous)
        assert obs_events.tail(5, str(log)) == []

    def test_slow_unsampled_trace_always_logged(self, tracing, tmp_path):
        log = tmp_path / "q.jsonl"
        obs_trace.set_sample_rate(0.0)
        previous = obs_events.configure(str(log))
        threshold = obs_events.set_slow_ms(0.0)  # everything is "slow"
        try:
            ctx = obs_trace.begin("inequality")
            obs_trace.finish(ctx)
        finally:
            obs_events.set_slow_ms(threshold)
            obs_events.configure(previous)
        (record,) = obs_events.tail(5, str(log))
        assert record["slow"] is True
        assert record["sampled"] is False
        assert "trace" not in record  # unsampled records carry no span tree

    def test_errored_trace_always_logged(self, tracing, tmp_path):
        log = tmp_path / "q.jsonl"
        obs_trace.set_sample_rate(0.0)
        previous = obs_events.configure(str(log))
        try:
            ctx = obs_trace.begin("topk")
            obs_trace.abort(ctx, RuntimeError("shard exploded"))
        finally:
            obs_events.configure(previous)
        (record,) = obs_events.tail(5, str(log))
        assert record["error"].startswith("RuntimeError")
