"""EXPLAIN layer tests: report structures, renderer, and core methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FunctionIndex, PlanarIndex, ScalarProductQuery
from repro.exceptions import InvalidQueryError
from repro.obs.explain import ExplainReport, IndexCandidate, render_report


class TestReportStructures:
    def test_to_dict_drops_none(self):
        report = ExplainReport(kind="inequality", route="scan", n_total=10)
        payload = report.to_dict()
        assert payload["kind"] == "inequality"
        assert "si_size" not in payload and "strategy" not in payload

    def test_to_dict_full(self):
        report = ExplainReport(
            kind="inequality",
            route="intervals",
            n_total=100,
            strategy="min_stretch",
            chosen_index=2,
            index_normal=(1.0, 2.0),
            candidates=(IndexCandidate(0, 1.5, 0.9, 30, chosen=True),),
            rank_lo=10,
            rank_hi=40,
            si_size=10,
            ii_size=30,
            li_size=60,
            n_verified=30,
            n_results=12,
            estimated_pruned=0.7,
            actual_pruned=0.7,
            notes=("hello",),
            extra={"k": 1},
        )
        payload = report.to_dict()
        assert payload["candidates"][0]["chosen"] is True
        assert payload["index_normal"] == [1.0, 2.0]
        assert payload["notes"] == ["hello"]
        assert payload["extra"] == {"k": 1}

    def test_render_contains_sections(self):
        report = ExplainReport(
            kind="inequality",
            route="intervals",
            n_total=100,
            strategy="min_stretch",
            chosen_index=1,
            candidates=(
                IndexCandidate(0, 2.0, 0.8, 50),
                IndexCandidate(1, 1.0, 0.95, 20, chosen=True),
            ),
            si_size=30,
            ii_size=20,
            li_size=50,
            n_verified=20,
            n_results=7,
            estimated_pruned=0.8,
            actual_pruned=0.8,
        )
        text = render_report(report)
        assert "EXPLAIN" in text
        assert "strategy=min_stretch" in text
        assert "candidates:" in text
        assert "|SI|=30" in text and "|II|=20" in text
        assert "estimated= 80.00%" in text
        assert text == report.render()


@pytest.fixture
def built_index(uniform_points, uniform_model):
    return FunctionIndex(uniform_points, uniform_model, n_indices=6, rng=7)


class TestPlanarExplain:
    def test_matches_query_stats(self, uniform_points):
        index = PlanarIndex.from_features(uniform_points, np.array([1.0, 1.0, 1.0, 1.0]))
        query = ScalarProductQuery(
            np.array([2.0, 1.0, 1.0, 3.0]), float(uniform_points.sum(axis=1).mean())
        )
        result = index.query(query)
        report = index.explain(query)
        assert report.route == "intervals"
        assert report.si_size == result.stats.si_size
        assert report.ii_size == result.stats.ii_size
        assert report.li_size == result.stats.li_size
        assert report.n_verified == result.stats.n_verified
        assert report.n_results == len(result.ids)


class TestCollectionExplain:
    def test_candidates_cover_all_indices(self, built_index, uniform_model):
        normal = uniform_model.sample_normal(3)
        offset = 40.0 * float(normal.sum())
        report = built_index.collection.explain(ScalarProductQuery(normal, offset))
        assert len(report.candidates) == built_index.n_indices
        assert sum(candidate.chosen for candidate in report.candidates) == 1
        chosen = next(c for c in report.candidates if c.chosen)
        assert chosen.position == report.chosen_index
        assert report.route in ("intervals", "scan")
        assert report.si_size + report.ii_size + report.li_size == report.n_total

    def test_matches_query(self, built_index, uniform_model):
        for seed in range(5):
            normal = uniform_model.sample_normal(seed)
            offset = 30.0 * float(normal.sum())
            answer = built_index.query(normal, offset)
            report = built_index.explain_report(normal, offset)
            assert report.n_results == len(answer)
            assert report.si_size == answer.stats.si_size
            assert report.ii_size == answer.stats.ii_size
            assert report.li_size == answer.stats.li_size
            assert report.n_verified == answer.stats.n_verified


class TestOctantFallbackExplain:
    def test_fallback_report(self, built_index):
        normal = np.array([-1.0, 2.0, 1.0, 1.0])  # sign outside the octant
        report = built_index.explain_report(normal, 10.0)
        assert report.route == "octant-fallback"
        assert report.n_verified == report.n_total == len(built_index)
        assert report.actual_pruned == 0.0
        assert report.notes  # carries the octant error message
        answer = built_index.query(normal, 10.0)
        assert answer.used_fallback
        assert report.n_results == len(answer)

    def test_fallback_disabled_raises(self, uniform_points, uniform_model):
        strict = FunctionIndex(
            uniform_points, uniform_model, n_indices=4, scan_fallback=False, rng=0
        )
        with pytest.raises(InvalidQueryError):
            strict.explain_report(np.array([-1.0, 1.0, 1.0, 1.0]), 10.0)

    def test_legacy_explain_dict_unchanged(self, built_index, uniform_model):
        normal = uniform_model.sample_normal(2)
        plan = built_index.explain(normal, 100.0)
        assert isinstance(plan, dict)
        assert {"route", "n_total"} <= set(plan)
