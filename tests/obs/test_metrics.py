"""Unit tests for the metrics registry: counters, gauges, histograms."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestNaming:
    def test_invalid_metric_name(self):
        with pytest.raises(ValueError):
            Counter("0bad")

    def test_invalid_label_name(self):
        with pytest.raises(ValueError):
            Counter("ok_name", labelnames=("bad-label",))


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c_total", labelnames=("kind",))
        counter.inc(kind="a")
        counter.inc(2.5, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == pytest.approx(3.5)
        assert counter.value(kind="b") == pytest.approx(1.0)
        assert counter.value(kind="never") == 0.0

    def test_rejects_negative(self):
        counter = Counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_strict_labels(self):
        counter = Counter("c_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.inc()  # missing
        with pytest.raises(ValueError):
            counter.inc(kind="a", extra="x")  # surplus
        with pytest.raises(ValueError):
            counter.inc(other="a")  # wrong name

    def test_label_values_stringified(self):
        counter = Counter("c_total", labelnames=("index",))
        counter.inc(index=3)
        assert counter.value(index="3") == 1.0


class TestGauge:
    def test_set_inc(self):
        gauge = Gauge("g", labelnames=("index",))
        gauge.set(10.0, index="0")
        gauge.inc(-3.0, index="0")
        assert gauge.value(index="0") == pytest.approx(7.0)


class TestHistogram:
    def test_default_buckets_are_log_scale(self):
        assert LATENCY_BUCKETS[0] == pytest.approx(1e-6)
        assert LATENCY_BUCKETS[-1] == pytest.approx(1e1)
        ratios = [
            b2 / b1 for b1, b2 in zip(LATENCY_BUCKETS, LATENCY_BUCKETS[1:])
        ]
        for ratio in ratios:
            assert ratio == pytest.approx(10.0 ** (1.0 / 3.0), rel=1e-6)

    def test_observe_le_semantics(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        histogram.observe(1.0)  # boundary lands in its own bucket (le=1)
        histogram.observe(1.5)
        histogram.observe(100.0)  # overflow cell
        (series,) = histogram.series().values()
        assert series.counts == [1, 1, 0, 1]
        assert series.cumulative() == [1, 2, 2, 3]
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(102.5)

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", labelnames=("kind",))
        second = registry.counter("c_total", labelnames=("kind",))
        assert first is second
        assert len(registry) == 1

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c_total")
        with pytest.raises(ValueError):
            registry.gauge("c_total")

    def test_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            registry.counter("c_total", labelnames=("other",))

    def test_reset_and_n_samples(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        registry.histogram("h_seconds").observe(0.001)
        assert registry.n_samples() == 2
        registry.reset()
        assert registry.n_samples() == 0
        assert len(registry) == 0

    def test_snapshot_restore_roundtrip_adds(self):
        source = MetricsRegistry()
        source.counter("c_total", labelnames=("kind",)).inc(2.0, kind="x")
        source.gauge("g", labelnames=()).set(5.0)
        source.histogram("h_seconds").observe(0.01)
        dump = source.snapshot()

        target = MetricsRegistry()
        target.restore(dump)
        target.restore(dump)  # merge semantics: counters/histograms add
        counter = target.counter("c_total", labelnames=("kind",))
        assert counter.value(kind="x") == pytest.approx(4.0)
        assert target.gauge("g").value() == pytest.approx(5.0)  # overwrite
        assert target.histogram("h_seconds").count() == 2

    def test_restore_bucket_mismatch(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        dump = source.snapshot()
        target = MetricsRegistry()
        target.histogram("h", buckets=(1.0, 3.0))
        with pytest.raises(ValueError):
            target.restore(dump)

    def test_restore_unknown_type(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.restore({"metrics": [{"name": "x", "type": "summary"}]})

    def test_iteration_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("z_total")
        registry.counter("a_total")
        assert [metric.name for metric in registry] == ["a_total", "z_total"]
