"""Exporter tests: JSON round-trip, Prometheus exposition, state files."""

from __future__ import annotations

import json

import pytest

from repro.obs.exporters import (
    DEFAULT_STATE_FILE,
    STATE_ENV,
    default_state_path,
    load_state,
    merge_into_file,
    save_state,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("demo_total", "a counter", ("kind",))
    counter.inc(3.0, kind="x")
    counter.inc(kind='we"ird\nlabel\\')
    registry.gauge("demo_points", "a gauge").set(12.0)
    histogram = registry.histogram("demo_seconds", "a histogram", ("route",))
    histogram.observe(2e-6, route="fast")
    histogram.observe(0.5, route="fast")
    return registry


class TestJson:
    def test_round_trip(self, sample_registry):
        text = to_json(sample_registry)
        restored = MetricsRegistry()
        restored.restore(json.loads(text))
        assert restored.counter("demo_total", labelnames=("kind",)).value(
            kind="x"
        ) == pytest.approx(3.0)
        assert restored.histogram(
            "demo_seconds", labelnames=("route",)
        ).count(route="fast") == 2


class TestPrometheus:
    def test_headers_and_samples(self, sample_registry):
        text = to_prometheus(sample_registry)
        assert "# HELP demo_total a counter" in text
        assert "# TYPE demo_total counter" in text
        assert "# TYPE demo_points gauge" in text
        assert "# TYPE demo_seconds histogram" in text
        assert 'demo_total{kind="x"} 3' in text
        assert "demo_points 12" in text

    def test_label_escaping(self, sample_registry):
        text = to_prometheus(sample_registry)
        assert 'kind="we\\"ird\\nlabel\\\\"' in text

    def test_histogram_is_cumulative_with_inf(self, sample_registry):
        text = to_prometheus(sample_registry)
        bucket_lines = [
            line for line in text.splitlines() if line.startswith("demo_seconds_bucket")
        ]
        assert any('le="+Inf"' in line for line in bucket_lines)
        # cumulative counts never decrease
        values = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert values == sorted(values)
        assert values[-1] == 2
        assert 'demo_seconds_count{route="fast"} 2' in text
        assert 'demo_seconds_sum{route="fast"}' in text

    def test_every_line_well_formed(self, sample_registry):
        for line in to_prometheus(sample_registry).splitlines():
            assert line.startswith("#") or " " in line

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestStateFiles:
    def test_default_path_env_override(self, monkeypatch, tmp_path):
        target = tmp_path / "custom.json"
        monkeypatch.setenv(STATE_ENV, str(target))
        assert default_state_path() == target
        monkeypatch.delenv(STATE_ENV)
        assert default_state_path().name == DEFAULT_STATE_FILE

    def test_save_load(self, tmp_path, sample_registry):
        target = tmp_path / "state.json"
        assert save_state(target, sample_registry) == target
        loaded = load_state(target)
        assert loaded.counter("demo_total", labelnames=("kind",)).value(
            kind="x"
        ) == pytest.approx(3.0)

    def test_load_missing_is_empty(self, tmp_path):
        loaded = load_state(tmp_path / "absent.json")
        assert loaded.n_samples() == 0

    def test_merge_accumulates(self, tmp_path, sample_registry):
        target = tmp_path / "state.json"
        merge_into_file(target, sample_registry)
        merge_into_file(target, sample_registry)
        merged = load_state(target)
        assert merged.counter("demo_total", labelnames=("kind",)).value(
            kind="x"
        ) == pytest.approx(6.0)
        assert merged.histogram(
            "demo_seconds", labelnames=("route",)
        ).count(route="fast") == 4
        # gauges overwrite rather than add
        assert merged.gauge("demo_points").value() == pytest.approx(12.0)
