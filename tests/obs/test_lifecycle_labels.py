"""Regression tests: index-lifecycle metric labels and range-query labels.

Two bugs pinned here:

1. **Label aliasing after ``drop_index`` + ``add_index``.**  Dropping
   index 0 of three left survivors labelled {"1", "2"}; a subsequent
   ``add_index`` labelled the newcomer ``str(len)`` — colliding with a
   survivor, so two distinct indices aliased one
   ``repro_indexed_points`` / ``repro_interval_points_total`` series.
   The collection now relabels after every mutation (label == position)
   and carries the gauge values across the rename.

2. **``query_range`` mislabelled ``strategy="solo"``.**  Collection-routed
   range queries used to call the member index's standalone entry point,
   recording ``repro_queries_total{strategy="solo"}`` while inequality
   and top-k recorded the real selection strategy.  The collection now
   owns the range metrics; ``"solo"`` is reserved for genuinely
   standalone :class:`~repro.core.planar.PlanarIndex` use.

Label assertions use a test-unique ``obs_prefix`` so the global metrics
registry (shared across the whole test session) cannot pollute them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FeatureStore,
    FunctionIndex,
    PlanarIndexCollection,
    QueryModel,
    ScalarProductQuery,
)
from repro.geometry.translation import Translator
from repro.obs import metrics as obs_metrics


@pytest.fixture
def model() -> QueryModel:
    return QueryModel.uniform(dim=3, low=1.0, high=5.0, rq=4)


def _collection(model, prefix, n_points=64):
    rng = np.random.default_rng(11)
    features = rng.uniform(1.0, 50.0, size=(n_points, 3))
    store = FeatureStore(features)
    translator = Translator(model.octant())
    translator.observe(features)
    normals = np.asarray(
        [[1.0, 2.0, 3.0], [3.0, 1.0, 1.0], [1.0, 5.0, 2.0]], dtype=np.float64
    )
    return PlanarIndexCollection(
        store, translator, normals, rng=0, obs_prefix=prefix
    )


def _labels(collection):
    return [index.obs_label for index in collection]


def _series_for_prefix(gauge, prefix):
    return {
        key[0]: value
        for key, value in gauge.series().items()
        if key[0].startswith(prefix)
    }


class TestLifecycleLabels:
    def test_labels_track_positions_through_drop(self, model, obs_enabled):
        prefix = "lifecycle_a:"
        collection = _collection(model, prefix)
        assert _labels(collection) == [f"{prefix}{i}" for i in range(3)]
        collection.drop_index(0)
        # Survivors are relabelled to their new positions, not left at
        # their construction-time labels {"1", "2"}.
        assert _labels(collection) == [f"{prefix}0", f"{prefix}1"]

    def test_add_after_drop_does_not_alias(self, model, obs_enabled):
        prefix = "lifecycle_b:"
        collection = _collection(model, prefix)
        collection.drop_index(0)
        assert collection.add_index(np.asarray([2.0, 2.0, 7.0]))
        labels = _labels(collection)
        # The regression: the newcomer used to be labelled str(len) == "2"
        # while a survivor already held "2" — two indices, one series.
        assert labels == [f"{prefix}0", f"{prefix}1", f"{prefix}2"]
        assert len(set(labels)) == len(labels)

    def test_indexed_points_gauge_carried_and_pruned(self, model, obs_enabled):
        prefix = "lifecycle_c:"
        n_points = 64
        collection = _collection(model, prefix, n_points=n_points)
        gauge = obs_metrics.indexed_points()
        assert _series_for_prefix(gauge, prefix) == {
            f"{prefix}{i}": float(n_points) for i in range(3)
        }
        collection.drop_index(1)
        # The dropped series is removed and the survivor that moved from
        # position 2 to 1 carries its gauge value under the new label.
        assert _series_for_prefix(gauge, prefix) == {
            f"{prefix}0": float(n_points),
            f"{prefix}1": float(n_points),
        }
        collection.add_index(np.asarray([2.0, 2.0, 7.0]))
        assert _series_for_prefix(gauge, prefix) == {
            f"{prefix}{i}": float(n_points) for i in range(3)
        }


class TestRangeStrategyLabel:
    def test_collection_routed_range_uses_real_strategy(
        self, uniform_points, uniform_model, obs_enabled
    ):
        index = FunctionIndex(uniform_points, uniform_model, n_indices=4, rng=0)
        counter = obs_metrics.queries_total()
        strategy_before = counter.value(
            kind="range", route="intervals", strategy="min_stretch"
        )
        solo_before = counter.value(kind="range", route="intervals", strategy="solo")
        normal = uniform_model.sample_normal(0)
        index.query_range(normal, 100.0, 600.0)
        assert (
            counter.value(kind="range", route="intervals", strategy="min_stretch")
            == strategy_before + 1
        )
        # The regression: this used to be the series that incremented.
        assert (
            counter.value(kind="range", route="intervals", strategy="solo")
            == solo_before
        )

    def test_standalone_range_still_reports_solo(
        self, uniform_points, uniform_model, obs_enabled
    ):
        index = FunctionIndex(uniform_points, uniform_model, n_indices=4, rng=0)
        collection = index.collection
        normal = uniform_model.sample_normal(0)
        wq_low = collection.working_query(ScalarProductQuery(normal, 100.0, ">="))
        wq_high = collection.working_query(ScalarProductQuery(normal, 600.0, "<="))
        counter = obs_metrics.queries_total()
        solo_before = counter.value(kind="range", route="intervals", strategy="solo")
        collection[0].query_range(wq_low, wq_high)
        assert (
            counter.value(kind="range", route="intervals", strategy="solo")
            == solo_before + 1
        )
