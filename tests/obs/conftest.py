"""Shared fixtures for the observability tests."""

from __future__ import annotations

import pytest

from repro.obs import clear_traces
from repro.obs import runtime as obs_runtime
from repro.obs import trace as obs_trace


@pytest.fixture
def obs_enabled():
    """Arm observability for one test, restoring the prior state after.

    The suite may itself run with ``REPRO_OBS=1`` (the armed CI job) and
    with ``REPRO_OBS_SAMPLE`` below 1 (the sampled chaos lane), so the
    fixture pins full sampling — tests using it assert on recorded spans
    and metrics — and restores whatever was set rather than blindly
    disabling.
    """
    was_enabled = obs_runtime.ENABLED
    obs_runtime.enable()
    rate = obs_trace.set_sample_rate(1.0)
    clear_traces()
    yield
    clear_traces()
    obs_trace.set_sample_rate(rate)
    if not was_enabled:
        obs_runtime.disable()


@pytest.fixture
def obs_disabled():
    """Force the disabled path for one test, restoring the prior state."""
    was_enabled = obs_runtime.ENABLED
    obs_runtime.disable()
    yield
    if was_enabled:
        obs_runtime.enable()
