"""Shared fixtures for the observability tests."""

from __future__ import annotations

import pytest

from repro.obs import clear_traces
from repro.obs import runtime as obs_runtime


@pytest.fixture
def obs_enabled():
    """Arm observability for one test, restoring the prior state after.

    The suite may itself run with ``REPRO_OBS=1`` (the armed CI job), so
    the fixture restores whatever was set rather than blindly disabling.
    """
    was_enabled = obs_runtime.ENABLED
    obs_runtime.enable()
    clear_traces()
    yield
    clear_traces()
    if not was_enabled:
        obs_runtime.disable()


@pytest.fixture
def obs_disabled():
    """Force the disabled path for one test, restoring the prior state."""
    was_enabled = obs_runtime.ENABLED
    obs_runtime.disable()
    yield
    if was_enabled:
        obs_runtime.enable()
