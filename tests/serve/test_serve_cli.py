"""``python -m repro serve``: startup, readiness, one query, clean SIGTERM.

The test drives the real subprocess exactly the way the serving smoke CI
lane does: wait on ``--ready-file`` for the bound address, speak one HTTP
request, then SIGTERM and assert the graceful-shutdown lines landed.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from .conftest import http_json

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def _spawn(tmp_path, extra_args=()):
    ready = tmp_path / "ready"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--n", "800", "--dim", "3", "--indices", "4",
            "--shards", "2",
            "--ready-file", str(ready),
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    return process, ready


def _wait_ready(process, ready, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if ready.exists() and ready.read_text().strip():
            host, _, port = ready.read_text().strip().partition(":")
            return host, int(port)
        if process.poll() is not None:
            out, err = process.communicate()
            pytest.fail(
                f"serve exited early (code {process.returncode}):\n{out}\n{err}"
            )
        time.sleep(0.05)
    process.kill()
    pytest.fail("serve never wrote its ready file")


def test_serve_cli_round_trip(tmp_path):
    process, ready = _spawn(tmp_path)
    try:
        host, port = _wait_ready(process, ready)

        status, _, health = http_json(host, port, "GET", "/healthz")
        assert status == 200
        assert health["points"] == 800
        assert health["shards"] == 2

        status, _, body = http_json(
            host, port, "POST", "/query",
            {"normal": [1.0, 2.0, 1.0], "offset": 30.0},
        )
        assert status == 200
        assert isinstance(body["ids"], list)

        process.send_signal(signal.SIGTERM)
        out, err = process.communicate(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()

    assert process.returncode == 0, f"stdout:\n{out}\nstderr:\n{err}"
    assert "repro serve: listening on" in out
    assert "repro serve: drained and stopped" in out
