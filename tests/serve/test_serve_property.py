"""Property test: served answers are bit-identical to direct library calls.

Hypothesis draws mixed request sets (inequality vs top-k, all four
comparison operators, varying k) and fires them at a live service from
concurrent threads — so requests land in arbitrary interleavings and
coalesce into arbitrary micro-batches — then asserts every response's
ids (and distances, for top-k) equal the direct engine call on the same
arguments.  The dataset is integer-valued, so "equal" includes boundary
membership and tie-breaks.

The assertions compare ids and distances only (not degraded metadata):
under the chaos CI lane an ambient ``every=N`` fault plan ticks global
counters, so which request absorbs a (healed) retry differs between the
served and direct runs even though the answers do not.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability import faults as _flt
from repro.serve import ServiceConfig, serve_in_thread

from .conftest import build_engine, http_json, integer_queries
from .test_resilience_http import http_json_with_headers


@pytest.fixture(scope="module")
def served():
    engine, points = build_engine(n=300, dim=3, seed=20, n_shards=2)
    config = ServiceConfig(batch_window_s=0.005, batch_max=32, queue_depth=128)
    handle = serve_in_thread(engine, config)
    yield engine, points, handle
    handle.stop()
    engine.close()


@st.composite
def request_sets(draw):
    m = draw(st.integers(min_value=1, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    scale = draw(st.floats(min_value=0.0, max_value=1.2))
    specs = [
        (
            draw(st.sampled_from(["query", "topk"])),
            draw(st.sampled_from(["<=", "<", ">=", ">"])),
            draw(st.integers(min_value=1, max_value=9)),
        )
        for _ in range(m)
    ]
    return seed, scale, specs


@given(case=request_sets())
@settings(max_examples=10, deadline=None)
def test_served_answers_equal_direct_calls(served, case):
    engine, points, handle = served
    seed, scale, specs = case
    normals, offsets = integer_queries(
        points, m=len(specs), seed=seed, scale=scale
    )

    def fire(i):
        op, comparison, k = specs[i]
        body = {
            "normal": normals[i].tolist(),
            "offset": float(offsets[i]),
            "op": comparison,
        }
        if op == "topk":
            body["k"] = k
        path = "/topk" if op == "topk" else "/query"
        return http_json(handle.host, handle.port, "POST", path, body)

    with ThreadPoolExecutor(max_workers=len(specs)) as pool:
        responses = list(pool.map(fire, range(len(specs))))

    for i, (status, _, body) in enumerate(responses):
        op, comparison, k = specs[i]
        assert status == 200
        if op == "topk":
            direct = engine.topk(normals[i], float(offsets[i]), k=k, op=comparison)
            assert body["ids"] == direct.ids.tolist()
            assert body["distances"] == direct.distances.tolist()
        else:
            direct = engine.query(normals[i], float(offsets[i]), comparison)
            assert body["ids"] == direct.ids.tolist()


# --------------------------------------------------------------------- #
# Truthfulness under chaos: no partial answer disguised as complete
# --------------------------------------------------------------------- #

#: Fault plans spanning the serve sites and the shard sites they front.
FAULT_SPECS = (
    "serve.accept:error:every=3",
    "serve.flush:error:every=2",
    "serve.dispatch:stall:ms=80:every=3",
    "shard.query:error:shard=1;shard.scan:error:shard=1",
    "shard.query:error:p=0.5",
    "serve.accept:error:every=4;shard.query:error:shard=0;shard.scan:error:shard=0",
)


@pytest.fixture(scope="module")
def chaos_served():
    """A degrade-policy service whose breaker never interferes (huge
    threshold), so the property stays about response truthfulness."""
    engine, points = build_engine(
        n=300, dim=3, seed=50, n_shards=3, failure_policy="degrade"
    )
    config = ServiceConfig(
        batch_window_s=0.005,
        batch_max=32,
        queue_depth=128,
        breaker_threshold=10_000,
    )
    handle = serve_in_thread(engine, config)
    yield engine, points, handle
    handle.stop()
    engine.close()


@st.composite
def chaos_cases(draw):
    spec = draw(st.sampled_from(FAULT_SPECS))
    deadline_ms = draw(st.sampled_from([None, 50.0, 5000.0]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    faults_seed = draw(st.integers(min_value=0, max_value=2**16))
    specs = [
        (
            draw(st.sampled_from(["query", "topk"])),
            draw(st.integers(min_value=1, max_value=8)),
        )
        for _ in range(draw(st.integers(min_value=3, max_value=8)))
    ]
    return spec, deadline_ms, seed, faults_seed, specs


@given(case=chaos_cases())
@settings(max_examples=8, deadline=None)
def test_faulted_responses_are_exact_degraded_or_refused(chaos_served, case):
    """Under armed serve-site and shard-site faults plus deadlines, every
    response is one of: 200-exact, 200 with a *truthful* ``degraded``
    block (ids a subset of the exact answer, completeness in [0, 1]),
    or an explicit 429/503/504 refusal.  A deadline-expired or shed
    request never comes back as a partial answer dressed up complete."""
    engine, points, handle = chaos_served
    spec, deadline_ms, seed, faults_seed, request_specs = case
    normals, offsets = integer_queries(points, m=len(request_specs), seed=seed)
    headers = {}
    if deadline_ms is not None:
        headers["X-Repro-Deadline-Ms"] = f"{deadline_ms:g}"

    # Neutralize any ambient plan (the chaos CI lane arms one process-
    # wide): the drawn spec must be the only fault source, and the direct
    # reference answers below must be clean.
    previous_plan = _flt.active_plan()
    previously_armed = _flt.is_armed()
    _flt.disarm()
    try:
        def fire(i):
            op, k = request_specs[i]
            body = {"normal": normals[i].tolist(), "offset": float(offsets[i])}
            if op == "topk":
                body["k"] = k
            return http_json_with_headers(
                handle.host, handle.port, "POST",
                "/topk" if op == "topk" else "/query", body, headers,
            )

        with _flt.injected(spec, seed=faults_seed):
            with ThreadPoolExecutor(max_workers=len(request_specs)) as pool:
                responses = list(pool.map(fire, range(len(request_specs))))

        for i, (status, _, body) in enumerate(responses):
            op, k = request_specs[i]
            if status == 200:
                if op == "topk":
                    exact = engine.topk(normals[i], float(offsets[i]), k=k)
                else:
                    exact = engine.query(normals[i], float(offsets[i]))
                degraded = body["degraded"]
                if degraded is None:
                    assert body["ids"] == exact.ids.tolist()
                else:
                    completeness = degraded["completeness"]
                    assert 0.0 <= completeness <= 1.0
                    if op == "topk":
                        assert len(body["ids"]) <= k
                        assert all(
                            0 <= i_ < len(points) for i_ in body["ids"]
                        )
                    else:
                        assert set(body["ids"]) <= set(exact.ids.tolist())
            elif status == 429:
                assert body["error"] == "shed"
            elif status == 503:
                assert body["error"] in ("shed", "unavailable", "draining")
            elif status == 504:
                assert body["error"] == "deadline_exceeded"
                assert body["budget_ms"] == deadline_ms
            else:
                raise AssertionError(
                    f"request {i}: unexpected status {status}: {body!r}"
                )
    finally:
        if previously_armed and previous_plan is not None:
            _flt.arm(previous_plan)
        else:
            _flt.disarm()
