"""Property test: served answers are bit-identical to direct library calls.

Hypothesis draws mixed request sets (inequality vs top-k, all four
comparison operators, varying k) and fires them at a live service from
concurrent threads — so requests land in arbitrary interleavings and
coalesce into arbitrary micro-batches — then asserts every response's
ids (and distances, for top-k) equal the direct engine call on the same
arguments.  The dataset is integer-valued, so "equal" includes boundary
membership and tie-breaks.

The assertions compare ids and distances only (not degraded metadata):
under the chaos CI lane an ambient ``every=N`` fault plan ticks global
counters, so which request absorbs a (healed) retry differs between the
served and direct runs even though the answers do not.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import ServiceConfig, serve_in_thread

from .conftest import build_engine, http_json, integer_queries


@pytest.fixture(scope="module")
def served():
    engine, points = build_engine(n=300, dim=3, seed=20, n_shards=2)
    config = ServiceConfig(batch_window_s=0.005, batch_max=32, queue_depth=128)
    handle = serve_in_thread(engine, config)
    yield engine, points, handle
    handle.stop()
    engine.close()


@st.composite
def request_sets(draw):
    m = draw(st.integers(min_value=1, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    scale = draw(st.floats(min_value=0.0, max_value=1.2))
    specs = [
        (
            draw(st.sampled_from(["query", "topk"])),
            draw(st.sampled_from(["<=", "<", ">=", ">"])),
            draw(st.integers(min_value=1, max_value=9)),
        )
        for _ in range(m)
    ]
    return seed, scale, specs


@given(case=request_sets())
@settings(max_examples=10, deadline=None)
def test_served_answers_equal_direct_calls(served, case):
    engine, points, handle = served
    seed, scale, specs = case
    normals, offsets = integer_queries(
        points, m=len(specs), seed=seed, scale=scale
    )

    def fire(i):
        op, comparison, k = specs[i]
        body = {
            "normal": normals[i].tolist(),
            "offset": float(offsets[i]),
            "op": comparison,
        }
        if op == "topk":
            body["k"] = k
        path = "/topk" if op == "topk" else "/query"
        return http_json(handle.host, handle.port, "POST", path, body)

    with ThreadPoolExecutor(max_workers=len(specs)) as pool:
        responses = list(pool.map(fire, range(len(specs))))

    for i, (status, _, body) in enumerate(responses):
        op, comparison, k = specs[i]
        assert status == 200
        if op == "topk":
            direct = engine.topk(normals[i], float(offsets[i]), k=k, op=comparison)
            assert body["ids"] == direct.ids.tolist()
            assert body["distances"] == direct.distances.tolist()
        else:
            direct = engine.query(normals[i], float(offsets[i]), comparison)
            assert body["ids"] == direct.ids.tolist()
