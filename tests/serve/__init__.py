"""Tests for the HTTP serving layer (micro-batching, admission, endpoints)."""
