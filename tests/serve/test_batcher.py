"""Micro-batcher edge cases: coalescing, passthrough, flush policy, errors.

Each test runs the batcher under a private event loop (``asyncio.run``)
against a real (small) engine, so the executor handoff and the
bit-identity of grouped calls are exercised for real.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, DrainTimeoutError
from repro.reliability import faults as _flt
from repro.serve import MicroBatcher, PendingRequest

from .conftest import build_engine, integer_queries


@pytest.fixture(scope="module")
def engine_and_queries():
    engine, points = build_engine(n=300, dim=3, seed=2)
    normals, offsets = integer_queries(points, m=16, seed=3)
    yield engine, normals, offsets
    engine.close()


def _request(normals, offsets, i, op="query", k=0, comparison="<="):
    return PendingRequest(
        op=op, normal=normals[i], offset=float(offsets[i]),
        comparison=comparison, k=k, tenant="t",
    )


def _run_batch(engine, requests, *, window_s, batch_max=64):
    """Start a batcher, enqueue ``requests`` concurrently, await answers."""

    async def main():
        batcher = MicroBatcher(engine, window_s=window_s, batch_max=batch_max)
        batcher.start()
        try:
            results = await asyncio.gather(
                *(batcher.enqueue(r) for r in requests),
                return_exceptions=True,
            )
        finally:
            await batcher.stop()
        return results, batcher.stats(), batcher.outstanding

    return asyncio.run(main())


class TestCoalescing:
    def test_same_tick_burst_coalesces_into_one_batch(self, engine_and_queries):
        engine, normals, offsets = engine_and_queries
        requests = [_request(normals, offsets, i) for i in range(8)]
        results, stats, outstanding = _run_batch(
            engine, requests, window_s=0.25
        )
        assert stats["batches"] == 1
        assert stats["max_batch"] == 8
        assert outstanding == 0
        for i, (answer, _trace) in enumerate(results):
            direct = engine.query(normals[i], float(offsets[i]))
            assert np.array_equal(answer.ids, direct.ids)

    def test_batch_max_splits_the_burst(self, engine_and_queries):
        engine, normals, offsets = engine_and_queries
        requests = [_request(normals, offsets, i) for i in range(7)]
        _results, stats, _ = _run_batch(
            engine, requests, window_s=0.25, batch_max=3
        )
        assert stats["batches"] == 3  # 3 + 3 + 1
        assert stats["max_batch"] == 3

    def test_mixed_ops_group_within_one_batch(self, engine_and_queries):
        """One batch may mix /query and /topk; groups resolve separately
        but the batch is counted once."""
        engine, normals, offsets = engine_and_queries
        requests = [
            _request(normals, offsets, 0),
            _request(normals, offsets, 1, op="topk", k=5),
            _request(normals, offsets, 2, comparison=">"),
        ]
        results, stats, _ = _run_batch(engine, requests, window_s=0.25)
        assert stats["batches"] == 1
        (ineq, _), (topk, _), (gt, _) = results
        assert np.array_equal(
            ineq.ids, engine.query(normals[0], float(offsets[0])).ids
        )
        direct_topk = engine.topk(normals[1], float(offsets[1]), k=5)
        assert np.array_equal(topk.ids, direct_topk.ids)
        assert np.array_equal(topk.distances, direct_topk.distances)
        assert np.array_equal(
            gt.ids, engine.query(normals[2], float(offsets[2]), ">").ids
        )


class TestPassthroughAndFlush:
    def test_window_zero_is_strict_passthrough(self, engine_and_queries):
        engine, normals, offsets = engine_and_queries
        requests = [_request(normals, offsets, i) for i in range(6)]
        _results, stats, _ = _run_batch(engine, requests, window_s=0.0)
        assert stats["batches"] == 6
        assert stats["max_batch"] == 1

    def test_idle_single_request_flushes_before_the_window(
        self, engine_and_queries
    ):
        """A lone request on an idle service must not wait out the window:
        with a 5 s window the answer still arrives in well under a second."""
        engine, normals, offsets = engine_and_queries

        async def main():
            batcher = MicroBatcher(engine, window_s=5.0, batch_max=64)
            batcher.start()
            try:
                start = time.perf_counter()
                answer, _trace = await batcher.enqueue(
                    _request(normals, offsets, 0)
                )
                elapsed = time.perf_counter() - start
            finally:
                await batcher.stop()
            return answer, elapsed

        answer, elapsed = asyncio.run(main())
        assert elapsed < 1.0
        assert np.array_equal(
            answer.ids, engine.query(normals[0], float(offsets[0])).ids
        )

    def test_empty_queue_window_dispatches_partial_batch(
        self, engine_and_queries
    ):
        """Requests arriving while a window is open join it; the window
        closes at the deadline even though batch_max was never reached."""
        engine, normals, offsets = engine_and_queries

        async def main():
            batcher = MicroBatcher(engine, window_s=0.2, batch_max=64)
            batcher.start()
            try:
                first = asyncio.ensure_future(
                    batcher.enqueue(_request(normals, offsets, 0))
                )
                await asyncio.sleep(0.02)  # the window is now open
                second = asyncio.ensure_future(
                    batcher.enqueue(_request(normals, offsets, 1))
                )
                results = await asyncio.gather(first, second)
            finally:
                await batcher.stop()
            return results, batcher.stats()

        results, stats = asyncio.run(main())
        assert stats["batched_requests"] == 2
        for i, (answer, _trace) in enumerate(results):
            assert np.array_equal(
                answer.ids, engine.query(normals[i], float(offsets[i])).ids
            )


class TestErrorsAndLifecycle:
    def test_group_failure_fans_out_to_every_member(self, engine_and_queries):
        engine, normals, offsets = engine_and_queries
        bad = PendingRequest(
            op="query", normal=np.ones(7), offset=1.0,
            comparison="<=", k=0, tenant="t",
        )
        results, _stats, outstanding = _run_batch(engine, [bad], window_s=0.0)
        assert isinstance(results[0], DimensionMismatchError)
        assert outstanding == 0

    def test_failed_group_does_not_poison_the_next(self, engine_and_queries):
        engine, normals, offsets = engine_and_queries

        async def main():
            batcher = MicroBatcher(engine, window_s=0.0, batch_max=64)
            batcher.start()
            try:
                bad = PendingRequest(
                    op="query", normal=np.ones(7), offset=1.0,
                    comparison="<=", k=0, tenant="t",
                )
                with pytest.raises(DimensionMismatchError):
                    await batcher.enqueue(bad)
                answer, _ = await batcher.enqueue(
                    _request(normals, offsets, 0)
                )
            finally:
                await batcher.stop()
            return answer

        answer = asyncio.run(main())
        assert np.array_equal(
            answer.ids, engine.query(normals[0], float(offsets[0])).ids
        )

    def test_constructor_validation(self, engine_and_queries):
        engine, _, _ = engine_and_queries
        with pytest.raises(ValueError, match="window"):
            MicroBatcher(engine, window_s=-0.1, batch_max=4)
        with pytest.raises(ValueError, match="batch_max"):
            MicroBatcher(engine, window_s=0.0, batch_max=0)

    def test_stop_drains_admitted_requests(self, engine_and_queries):
        """stop() resolves every admitted future before the loop dies."""
        engine, normals, offsets = engine_and_queries

        async def main():
            batcher = MicroBatcher(engine, window_s=0.05, batch_max=64)
            batcher.start()
            futures = [
                asyncio.ensure_future(
                    batcher.enqueue(_request(normals, offsets, i))
                )
                for i in range(4)
            ]
            await asyncio.sleep(0)  # let the enqueues land
            await batcher.stop()
            return await asyncio.gather(*futures)

        results = asyncio.run(main())
        assert len(results) == 4
        for i, (answer, _trace) in enumerate(results):
            assert np.array_equal(
                answer.ids, engine.query(normals[i], float(offsets[i])).ids
            )


class TestDrainBudget:
    """SIGTERM-shaped shutdown: flush what fits, fail-fast the rest."""

    def test_stop_flushes_queued_backlog_within_budget(
        self, engine_and_queries
    ):
        """Requests still queued (coalescing window open) when stop()
        lands must flush and answer normally, well inside the budget."""
        engine, normals, offsets = engine_and_queries

        async def main():
            batcher = MicroBatcher(engine, window_s=5.0, batch_max=64)
            batcher.start()
            futures = [
                asyncio.ensure_future(
                    batcher.enqueue(_request(normals, offsets, i))
                )
                for i in range(6)
            ]
            await asyncio.sleep(0)  # enqueues land; window would run 5s
            start = time.perf_counter()
            await batcher.stop(drain_timeout_s=5.0)
            elapsed = time.perf_counter() - start
            return await asyncio.gather(*futures), elapsed

        results, elapsed = asyncio.run(main())
        assert elapsed < 2.0  # drained, did not wait out the budget
        for i, (answer, _trace) in enumerate(results):
            assert np.array_equal(
                answer.ids, engine.query(normals[i], float(offsets[i])).ids
            )

    def test_stop_fail_fasts_stuck_requests(
        self, engine_and_queries, pristine_faults
    ):
        """A request stuck behind a stalled engine call resolves with
        DrainTimeoutError when the drain budget runs out — bounded
        shutdown, never a hung future."""
        engine, normals, offsets = engine_and_queries

        async def main():
            batcher = MicroBatcher(engine, window_s=0.0, batch_max=64)
            batcher.start()
            with _flt.injected("serve.dispatch:stall:ms=700:times=2"):
                futures = [
                    asyncio.ensure_future(
                        batcher.enqueue(_request(normals, offsets, i))
                    )
                    for i in range(2)
                ]
                await asyncio.sleep(0.05)  # both are now stalled in flight
                start = time.perf_counter()
                await batcher.stop(drain_timeout_s=0.1)
                resolved_in = time.perf_counter() - start
                results = await asyncio.gather(
                    *futures, return_exceptions=True
                )
            return results, resolved_in, batcher.outstanding

        results, resolved_in, outstanding = asyncio.run(main())
        assert resolved_in < 0.6  # the 0.1s budget, not the 0.7s stall
        assert outstanding == 0
        assert all(isinstance(r, DrainTimeoutError) for r in results)
        assert "drain budget" in str(results[0])
