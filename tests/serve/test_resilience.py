"""Resilience primitives under a fake clock: no sleeps, no flakiness.

Every state transition in ``repro.serve.resilience`` is a pure function
of an injectable monotonic clock, so these tests advance time by hand
and assert exact budgets, exact breaker flips, and exact jitter
sequences.
"""

from __future__ import annotations

import pytest

from repro.obs import metrics as _om
from repro.serve import BreakerBoard, CircuitBreaker, Deadline, RetryJitter
from repro.serve.resilience import BREAKER_STATES, HEALTH_STATES, health_state


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_budget_must_be_positive(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError, match="positive"):
                Deadline(bad, clock=FakeClock())

    def test_elapsed_remaining_expired(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.elapsed_s() == 0.0
        assert deadline.remaining_s() == 1.0
        assert not deadline.expired()
        clock.advance(0.4)
        assert deadline.elapsed_s() == pytest.approx(0.4)
        assert deadline.remaining_s() == pytest.approx(0.6)
        clock.advance(0.6)
        assert deadline.expired()
        clock.advance(5.0)  # overrun never goes negative
        assert deadline.remaining_s() == 0.0

    def test_mark_charges_stages_and_breakdown_renders_ms(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        clock.advance(0.1)
        deadline.mark("admission")
        clock.advance(0.25)
        deadline.mark("linger")
        report = deadline.breakdown()
        assert report["budget_ms"] == 500.0
        assert report["elapsed_ms"] == pytest.approx(350.0)
        assert report["stages_ms"] == {
            "admission": pytest.approx(100.0),
            "linger": pytest.approx(250.0),
        }

    def test_mark_accumulates_repeat_stages(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(0.1)
        deadline.mark("linger")
        clock.advance(0.2)
        deadline.mark("linger")
        assert deadline.breakdown()["stages_ms"]["linger"] == pytest.approx(300.0)


class TestRetryJitter:
    def test_same_seed_replays_the_exact_sequence(self):
        a = [RetryJitter(seed=7).apply(1.0) for _ in range(1)]
        first = RetryJitter(seed=7)
        second = RetryJitter(seed=7)
        assert [first.apply(2.0) for _ in range(10)] == [
            second.apply(2.0) for _ in range(10)
        ]
        assert a == [RetryJitter(seed=7).apply(1.0)]

    def test_never_undercuts_base_and_bounded_by_spread(self):
        jitter = RetryJitter(seed=0, spread=0.5)
        for _ in range(200):
            value = jitter.apply(2.0)
            assert 2.0 <= value <= 3.0

    def test_zero_spread_and_nonpositive_base_pass_through(self):
        assert RetryJitter(seed=0, spread=0.0).apply(1.5) == 1.5
        assert RetryJitter(seed=0).apply(0.0) == 0.0
        assert RetryJitter(seed=0).apply(-1.0) == -1.0

    def test_negative_spread_rejected(self):
        with pytest.raises(ValueError, match="spread"):
            RetryJitter(seed=0, spread=-0.1)


class TestCircuitBreaker:
    def make(self, clock, threshold=3, cooldown_s=2.0, transitions=None):
        on_transition = None
        if transitions is not None:
            on_transition = lambda old, new: transitions.append((old, new))
        return CircuitBreaker(
            threshold=threshold, cooldown_s=cooldown_s, clock=clock,
            on_transition=on_transition,
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown_s=0.0)

    def test_consecutive_failures_trip_interleaved_success_resets(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # streak broken
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()  # third consecutive
        assert breaker.state == "open"

    def test_open_sheds_with_cooldown_remainder(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, cooldown_s=2.0)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(0.5)
        admitted, retry_after = breaker.allow()
        assert not admitted
        assert retry_after == pytest.approx(1.5)

    def test_cooldown_elapses_into_single_half_open_probe(self):
        clock = FakeClock()
        transitions = []
        breaker = self.make(
            clock, threshold=1, cooldown_s=2.0, transitions=transitions
        )
        breaker.record_failure()
        clock.advance(2.0)
        admitted, retry_after = breaker.allow()
        assert admitted and retry_after == 0.0
        assert breaker.state == "half_open"
        # While the probe is out, everyone else sheds.
        admitted, retry_after = breaker.allow()
        assert not admitted
        assert retry_after == pytest.approx(2.0)
        breaker.record_success()
        assert breaker.state == "closed"
        assert transitions == [
            ("closed", "open"), ("open", "half_open"), ("half_open", "closed"),
        ]

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, cooldown_s=2.0)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow() == (True, 0.0)  # the probe
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(1.0)  # fresh cooldown: 1s of 2s elapsed
        admitted, retry_after = breaker.allow()
        assert not admitted
        assert retry_after == pytest.approx(1.0)

    def test_open_state_ignores_straggler_outcomes(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, cooldown_s=2.0)
        breaker.record_failure()
        breaker.record_success()  # straggler from before the trip
        assert breaker.state == "open"
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(2.0)
        assert breaker.allow() == (True, 0.0)  # cooldown unchanged


class TestBreakerBoard:
    def test_keys_are_independent(self):
        clock = FakeClock()
        board = BreakerBoard(threshold=1, cooldown_s=1.0, clock=clock)
        board.record("t1", "query", ok=False)
        assert board.allow("t1", "query")[0] is False
        assert board.allow("t1", "topk")[0] is True
        assert board.allow("t2", "query")[0] is True

    def test_summary_counts_and_tripped_keys(self):
        clock = FakeClock()
        board = BreakerBoard(threshold=1, cooldown_s=1.0, clock=clock)
        board.record("a", "query", ok=True)
        board.record("b", "query", ok=False)
        board.record("c", "topk", ok=False)
        clock.advance(1.0)
        board.allow("c", "topk")  # half-open probe
        summary = board.summary()
        assert summary == {
            "closed": 1,
            "open": 1,
            "half_open": 1,
            "tripped": ["b:query", "c:topk"],
        }

    def test_transitions_drive_the_state_gauge(self):
        clock = FakeClock()
        board = BreakerBoard(threshold=1, cooldown_s=1.0, clock=clock)
        gauge = _om.breaker_state()

        def value():
            return gauge.value(tenant="gauge-t", op="query")

        board.record("gauge-t", "query", ok=False)
        assert value() == float(BREAKER_STATES.index("open"))
        clock.advance(1.0)
        board.allow("gauge-t", "query")
        assert value() == float(BREAKER_STATES.index("half_open"))
        board.record("gauge-t", "query", ok=True)
        assert value() == float(BREAKER_STATES.index("closed"))


class TestHealthState:
    def kwargs(self, **overrides):
        base = dict(
            phase="running",
            open_breakers=0,
            half_open_breakers=0,
            queue_depth=0,
            brownout_depth=10,
        )
        base.update(overrides)
        return base

    def test_healthy_by_default(self):
        assert health_state(**self.kwargs()) == "healthy"

    def test_breakers_mean_degraded(self):
        assert health_state(**self.kwargs(open_breakers=1)) == "degraded"
        assert health_state(**self.kwargs(half_open_breakers=1)) == "degraded"

    def test_deep_queue_dominates_degraded(self):
        state = health_state(
            **self.kwargs(open_breakers=3, queue_depth=10)
        )
        assert state == "browned_out"

    def test_draining_dominates_everything(self):
        state = health_state(
            **self.kwargs(phase="draining", open_breakers=5, queue_depth=99)
        )
        assert state == "draining"

    def test_every_state_is_gauge_encodable(self):
        for kwargs in (
            self.kwargs(),
            self.kwargs(open_breakers=1),
            self.kwargs(queue_depth=10),
            self.kwargs(phase="stopped"),
        ):
            assert health_state(**kwargs) in HEALTH_STATES
