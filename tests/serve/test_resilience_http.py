"""Deadlines, breakers, and the health lifecycle on the wire.

These tests boot real services and speak HTTP, so the resilience
machinery is exercised exactly as a client sees it: the
``X-Repro-Deadline-Ms`` header, ``504`` budget breakdowns, ``503``
breaker sheds with ``Retry-After``, and ``/healthz`` state flips.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection

import pytest

from repro.reliability import faults as _flt
from repro.serve import ServiceConfig, serve_in_thread

from .conftest import build_engine, http_json, integer_queries


def http_json_with_headers(host, port, method, path, body=None, headers=None):
    """Like conftest.http_json, plus caller-supplied request headers."""
    conn = HTTPConnection(host, port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        merged = {"Content-Type": "application/json"}
        merged.update(headers or {})
        conn.request(method, path, body=payload, headers=merged)
        response = conn.getresponse()
        raw = response.read()
        try:
            decoded = json.loads(raw)
        except ValueError:
            decoded = raw.decode("utf-8", "replace")
        return response.status, dict(response.getheaders()), decoded
    finally:
        conn.close()


def _query_body(normals, offsets, i, **extra):
    body = {"normal": normals[i].tolist(), "offset": float(offsets[i])}
    body.update(extra)
    return body


class TestDeadlinePropagation:
    @pytest.mark.parametrize("raw", ["abc", "0", "-5", "inf", "nan"])
    def test_junk_deadline_header_answers_400(self, raw):
        engine, points = build_engine(n=200, dim=3, seed=30)
        normals, offsets = integer_queries(points, m=1, seed=31)
        handle = serve_in_thread(engine, ServiceConfig(batch_window_s=0.0))
        try:
            status, _, payload = http_json_with_headers(
                handle.host, handle.port, "POST", "/query",
                _query_body(normals, offsets, 0),
                headers={"X-Repro-Deadline-Ms": raw},
            )
            assert status == 400
            assert "X-Repro-Deadline-Ms" in payload["detail"]
        finally:
            handle.stop()
            engine.close()

    def test_generous_deadline_header_still_answers_200(self):
        engine, points = build_engine(n=200, dim=3, seed=32)
        normals, offsets = integer_queries(points, m=1, seed=33)
        handle = serve_in_thread(engine, ServiceConfig(batch_window_s=0.0))
        try:
            status, _, body = http_json_with_headers(
                handle.host, handle.port, "POST", "/query",
                _query_body(normals, offsets, 0),
                headers={"X-Repro-Deadline-Ms": "30000"},
            )
            assert status == 200
            direct = engine.query(normals[0], float(offsets[0]))
            assert body["ids"] == direct.ids.tolist()
        finally:
            handle.stop()
            engine.close()

    def test_tight_deadline_fails_in_budget_time_not_30s(
        self, pristine_faults
    ):
        """The regression the deadline work exists for: a 100 ms budget
        against a stalled engine answers 504 in well under a second —
        the old hard-coded 30 s timeouts never get a say — and the body
        accounts for where the budget went."""
        engine, points = build_engine(n=200, dim=3, seed=34)
        normals, offsets = integer_queries(points, m=1, seed=35)
        handle = serve_in_thread(engine, ServiceConfig(batch_window_s=0.001))
        try:
            with _flt.injected("serve.dispatch:stall:ms=700:times=1"):
                start = time.perf_counter()
                status, _, payload = http_json_with_headers(
                    handle.host, handle.port, "POST", "/query",
                    _query_body(normals, offsets, 0),
                    headers={"X-Repro-Deadline-Ms": "100"},
                )
                elapsed = time.perf_counter() - start
            assert status == 504
            assert elapsed < 0.6  # ~the 100ms budget, never the stall
            assert payload["error"] == "deadline_exceeded"
            assert payload["stage"] in ("accept", "await", "dispatch")
            assert payload["budget_ms"] == 100.0
            assert payload["elapsed_ms"] >= 0.0
            assert isinstance(payload["stages_ms"], dict)
            stats = http_json(handle.host, handle.port, "GET", "/stats")[2]
            assert stats["deadline_expired"] >= 1
            metrics = http_json(handle.host, handle.port, "GET", "/metrics")[2]
            assert "repro_serve_deadline_expired_total" in metrics
        finally:
            handle.stop()
            engine.close()


class TestBreakerLifecycle:
    def test_trip_shed_probe_close_over_http(self, pristine_faults):
        """Consecutive engine failures trip the (tenant, op) breaker:
        requests shed 503 + Retry-After while open, /healthz degrades,
        and after the cooldown one probe closes it again."""
        engine, points = build_engine(
            n=200, dim=3, seed=36, failure_policy="raise"
        )
        normals, offsets = integer_queries(points, m=1, seed=37)
        config = ServiceConfig(
            batch_window_s=0.0,
            breaker_threshold=2,
            breaker_cooldown_s=0.2,
        )
        handle = serve_in_thread(engine, config)
        body = _query_body(normals, offsets, 0)
        try:
            with _flt.injected("shard.query:error"):
                for _ in range(2):  # two consecutive engine failures
                    status, _, payload = http_json(
                        handle.host, handle.port, "POST", "/query", body
                    )
                    assert status == 503
                    assert payload["error"] == "unavailable"
                # The breaker is now open: this shed never reaches the
                # engine (the fault plan would fire if it did).
                status, headers, payload = http_json(
                    handle.host, handle.port, "POST", "/query", body
                )
                assert status == 503
                assert payload["error"] == "shed"
                assert payload["reason"] == "breaker"
                assert int(headers["Retry-After"]) >= 1
                health = http_json(
                    handle.host, handle.port, "GET", "/healthz"
                )[2]
                assert health["status"] == "degraded"
                assert health["breakers"]["open"] == 1
                assert health["breakers"]["tripped"] == ["default:query"]
            # Faults disarmed; once the cooldown elapses the half-open
            # probe goes through, succeeds, and the breaker closes.
            time.sleep(0.25)
            status, _, answer = http_json(
                handle.host, handle.port, "POST", "/query", body
            )
            assert status == 200
            direct = engine.query(normals[0], float(offsets[0]))
            assert answer["ids"] == direct.ids.tolist()
            health = http_json(handle.host, handle.port, "GET", "/healthz")[2]
            assert health["status"] == "healthy"
            assert health["breakers"]["open"] == 0
            stats = http_json(handle.host, handle.port, "GET", "/stats")[2]
            assert stats["shed"]["breaker"] >= 1
            metrics = http_json(handle.host, handle.port, "GET", "/metrics")[2]
            assert "repro_breaker_state" in metrics
            assert "repro_breaker_transitions_total" in metrics
        finally:
            handle.stop()
            engine.close()


class TestHealthLifecycle:
    def test_draining_phase_refuses_work_and_fails_healthchecks(self):
        """Once the phase leaves ``running``, /healthz answers 503
        (load balancers pull the instance) and new queries shed with
        an explicit ``draining`` reason instead of a dead socket."""
        engine, points = build_engine(n=200, dim=3, seed=38)
        normals, offsets = integer_queries(points, m=1, seed=39)
        handle = serve_in_thread(engine, ServiceConfig(batch_window_s=0.0))
        try:
            service = handle.service
            service._phase = "draining"
            try:
                status, _, health = http_json(
                    handle.host, handle.port, "GET", "/healthz"
                )
                assert status == 503
                assert health["status"] == "draining"
                status, headers, payload = http_json(
                    handle.host, handle.port, "POST", "/query",
                    _query_body(normals, offsets, 0),
                )
                assert status == 503
                assert payload["reason"] == "draining"
                assert "Retry-After" in headers
            finally:
                service._phase = "running"
            # Back to running: the same request answers normally.
            status, _, _ = http_json(
                handle.host, handle.port, "POST", "/query",
                _query_body(normals, offsets, 0),
            )
            assert status == 200
        finally:
            handle.stop()
            engine.close()

    def test_deep_backlog_reports_browned_out(self):
        engine, points = build_engine(n=200, dim=3, seed=40)
        handle = serve_in_thread(
            engine,
            ServiceConfig(
                batch_window_s=0.0, queue_depth=10, brownout_fraction=0.5
            ),
        )
        try:
            batcher = handle.service._batcher
            batcher._outstanding += 7
            try:
                health = http_json(
                    handle.host, handle.port, "GET", "/healthz"
                )[2]
                assert health["status"] == "browned_out"
            finally:
                batcher._outstanding -= 7
        finally:
            handle.stop()
            engine.close()

    def test_stop_transitions_through_draining_to_stopped(self):
        engine, _points = build_engine(n=200, dim=3, seed=41)
        handle = serve_in_thread(engine, ServiceConfig(batch_window_s=0.0))
        try:
            assert handle.service.stats()["phase"] == "running"
        finally:
            handle.stop()
            engine.close()
        assert handle.service.stats()["phase"] == "stopped"
