"""Serving configuration: tenant specs, env resolution, validation."""

from __future__ import annotations

import json

import pytest

from repro.serve import ServiceConfig, TenantSpec, load_tenants


class TestTenantSpec:
    def test_defaults_are_unlimited_interactive(self):
        spec = TenantSpec("a")
        assert spec.rate == 0.0
        assert spec.priority == 0

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            TenantSpec("")

    def test_rate_limited_needs_burst(self):
        with pytest.raises(ValueError, match="burst"):
            TenantSpec("a", rate=10.0, burst=0.5)

    def test_negative_priority_rejected(self):
        with pytest.raises(ValueError, match="priority"):
            TenantSpec("a", priority=-1)


class TestLoadTenants:
    def _write(self, tmp_path, payload):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_round_trip(self, tmp_path):
        path = self._write(tmp_path, {"tenants": [
            {"name": "a", "rate": 10, "burst": 5, "priority": 1},
            {"name": "b"},
        ]})
        tenants = load_tenants(path)
        assert tenants["a"].rate == 10.0
        assert tenants["a"].priority == 1
        assert tenants["b"].rate == 0.0

    def test_missing_tenants_list(self, tmp_path):
        path = self._write(tmp_path, {"quota": []})
        with pytest.raises(ValueError, match="'tenants' list"):
            load_tenants(path)

    def test_entry_without_name(self, tmp_path):
        path = self._write(tmp_path, {"tenants": [{"rate": 1}]})
        with pytest.raises(ValueError, match="tenants\\[0\\]"):
            load_tenants(path)

    def test_duplicate_tenant(self, tmp_path):
        path = self._write(
            tmp_path, {"tenants": [{"name": "a"}, {"name": "a"}]}
        )
        with pytest.raises(ValueError, match="duplicate"):
            load_tenants(path)


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            ServiceConfig(batch_window_s=-1.0)
        with pytest.raises(ValueError, match="batch max"):
            ServiceConfig(batch_max=0)
        with pytest.raises(ValueError, match="queue depth"):
            ServiceConfig(queue_depth=0)
        with pytest.raises(ValueError, match="brownout"):
            ServiceConfig(brownout_fraction=0.0)
        with pytest.raises(ValueError, match="brownout"):
            ServiceConfig(brownout_fraction=1.5)

    def test_from_env_defaults(self, monkeypatch):
        for name in (
            "REPRO_SERVE_BATCH_WINDOW_MS", "REPRO_SERVE_BATCH_MAX",
            "REPRO_SERVE_QUEUE_DEPTH", "REPRO_SERVE_BROWNOUT",
            "REPRO_SERVE_TENANTS",
        ):
            monkeypatch.delenv(name, raising=False)
        config = ServiceConfig.from_env()
        assert config.batch_window_s == pytest.approx(0.002)
        assert config.batch_max == 64
        assert config.queue_depth == 256
        assert config.brownout_fraction == pytest.approx(0.8)
        assert config.tenants == {}

    def test_from_env_overrides(self, monkeypatch, tmp_path):
        tenants = tmp_path / "tenants.json"
        tenants.write_text(
            json.dumps({"tenants": [{"name": "a", "priority": 1}]}),
            encoding="utf-8",
        )
        monkeypatch.setenv("REPRO_SERVE_BATCH_WINDOW_MS", "10")
        monkeypatch.setenv("REPRO_SERVE_BATCH_MAX", "8")
        monkeypatch.setenv("REPRO_SERVE_QUEUE_DEPTH", "32")
        monkeypatch.setenv("REPRO_SERVE_BROWNOUT", "0.5")
        monkeypatch.setenv("REPRO_SERVE_TENANTS", str(tenants))
        config = ServiceConfig.from_env()
        assert config.batch_window_s == pytest.approx(0.010)
        assert config.batch_max == 8
        assert config.queue_depth == 32
        assert config.brownout_fraction == pytest.approx(0.5)
        assert set(config.tenants) == {"a"}

    def test_from_env_junk_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_BATCH_WINDOW_MS", "banana")
        monkeypatch.setenv("REPRO_SERVE_BATCH_MAX", "-3")
        monkeypatch.setenv("REPRO_SERVE_QUEUE_DEPTH", "2.5")
        monkeypatch.setenv("REPRO_SERVE_BROWNOUT", "99")
        monkeypatch.delenv("REPRO_SERVE_TENANTS", raising=False)
        config = ServiceConfig.from_env()
        assert config.batch_window_s == pytest.approx(0.002)  # junk -> default
        assert config.batch_max == 1          # clamped up
        assert config.queue_depth == 256      # junk -> default
        assert config.brownout_fraction == 1.0  # clamped down

    def test_window_zero_means_passthrough(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_BATCH_WINDOW_MS", "0")
        assert ServiceConfig.from_env().batch_window_s == 0.0


class TestResolveTenant:
    def test_no_file_everyone_interactive_unlimited(self):
        config = ServiceConfig()
        spec = config.resolve_tenant("anyone")
        assert spec.rate == 0.0
        assert spec.priority == 0

    def test_with_file_unlisted_are_best_effort(self):
        config = ServiceConfig(tenants={"vip": TenantSpec("vip")})
        assert config.resolve_tenant("vip").priority == 0
        stranger = config.resolve_tenant("stranger")
        assert stranger.rate == 0.0
        assert stranger.priority == 1

    def test_configured_spec_returned_verbatim(self):
        vip = TenantSpec("vip", rate=5.0, burst=2.0, priority=0)
        config = ServiceConfig(tenants={"vip": vip})
        assert config.resolve_tenant("vip") is vip
