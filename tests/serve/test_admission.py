"""Admission control: token buckets, shedding order, brownout priorities.

All tests drive the controller with an injectable fake clock, so quota
refill is deterministic — no sleeps, no wall-clock flakiness.
"""

from __future__ import annotations

import pytest

from repro.serve import AdmissionController, ServiceConfig, TenantSpec, TokenBucket


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_unlimited_when_rate_nonpositive(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=FakeClock())
        assert all(bucket.try_acquire() for _ in range(1000))
        assert bucket.retry_after() == 0.0

    def test_burst_then_exhaustion(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refill_is_continuous(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2/s x 0.5s = exactly one token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_retry_after_names_the_next_token(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.25)
        clock.advance(0.25)
        assert bucket.retry_after() == 0.0

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(60.0)  # a long idle period must not bank tokens
        assert [bucket.try_acquire() for _ in range(3)] == [True, True, False]


def make_controller(clock=None, **config_kwargs):
    config = ServiceConfig(**config_kwargs)
    return AdmissionController(config, clock=clock or FakeClock())


class TestAdmissionOrder:
    def test_admits_by_default(self):
        decision = make_controller().admit("anyone", queue_depth=0)
        assert decision.admitted
        assert decision.reason == ""

    def test_quota_shed_carries_retry_after(self):
        clock = FakeClock()
        controller = make_controller(
            clock=clock,
            tenants={"slow": TenantSpec("slow", rate=1.0, burst=1.0)},
        )
        assert controller.admit("slow", queue_depth=0).admitted
        decision = controller.admit("slow", queue_depth=0)
        assert not decision.admitted
        assert decision.reason == "quota"
        # Jitter stretches the bucket's 1.0s estimate by up to 50%, but
        # never undercuts it (a client retrying early would shed again).
        assert 1.0 <= decision.retry_after_s <= 1.5

    def test_quota_checked_before_queue(self):
        """A greedy tenant burns its own bucket even when the queue is
        also full — the shed reason names the tenant's problem."""
        clock = FakeClock()
        controller = make_controller(
            clock=clock,
            queue_depth=4,
            tenants={"slow": TenantSpec("slow", rate=1.0, burst=1.0)},
        )
        assert controller.admit("slow", queue_depth=0).admitted
        decision = controller.admit("slow", queue_depth=10)
        assert decision.reason == "quota"

    def test_queue_full_sheds_everyone(self):
        controller = make_controller(queue_depth=8)
        decision = controller.admit("anyone", queue_depth=8)
        assert not decision.admitted
        assert decision.reason == "queue_full"
        assert decision.retry_after_s > 0

    def test_brownout_sheds_only_best_effort(self):
        controller = make_controller(
            queue_depth=10,
            brownout_fraction=0.5,
            tenants={
                "vip": TenantSpec("vip", priority=0),
                "batch": TenantSpec("batch", priority=1),
            },
        )
        assert controller.brownout_depth == 5
        # In the brownout band: best-effort sheds, interactive sails.
        assert controller.admit("vip", queue_depth=7).admitted
        decision = controller.admit("batch", queue_depth=7)
        assert not decision.admitted
        assert decision.reason == "brownout"
        # Below the band both are admitted.
        assert controller.admit("batch", queue_depth=4).admitted

    def test_brownout_depth_is_at_least_one(self):
        controller = make_controller(queue_depth=2, brownout_fraction=0.01)
        assert controller.brownout_depth == 1


class TestStarvationBound:
    """A greedy best-effort neighbor cannot starve an interactive tenant."""

    def test_interactive_survives_greedy_best_effort_flood(self):
        controller = make_controller(
            queue_depth=10,
            brownout_fraction=0.6,
            tenants={
                "vip": TenantSpec("vip", priority=0),
                "greedy": TenantSpec("greedy", priority=1),
            },
        )
        # The greedy tenant floods: it fills the queue to the brownout
        # threshold, after which *it* sheds while vip keeps landing —
        # all the way until the queue is genuinely full.
        depth = 0
        greedy_admitted = 0
        while controller.admit("greedy", queue_depth=depth).admitted:
            greedy_admitted += 1
            depth += 1
        assert greedy_admitted == controller.brownout_depth  # capped at 6
        for _ in range(depth, 10):
            assert controller.admit("vip", queue_depth=depth).admitted
            depth += 1
        # Only a full queue stops interactive traffic.
        assert controller.admit("vip", queue_depth=10).reason == "queue_full"

    def test_unlisted_tenants_are_best_effort_when_file_present(self):
        controller = make_controller(
            queue_depth=10,
            brownout_fraction=0.5,
            tenants={"vip": TenantSpec("vip", priority=0)},
        )
        assert controller.admit("stranger", queue_depth=7).reason == "brownout"
        assert controller.admit("vip", queue_depth=7).admitted
