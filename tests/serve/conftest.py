"""Shared fixtures for the serving-layer tests.

Datasets are integer-valued (the repo's bit-identity idiom: every scalar
product is exact in float64, so "identical" includes boundary membership
and tie-breaks), engines are small, and the HTTP helpers speak plain
``http.client`` so the tests exercise the real socket path.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection

import numpy as np
import pytest

from repro import QueryModel, ShardedFunctionIndex
from repro.reliability import faults as _flt


def integer_dataset(n=400, dim=4, seed=0):
    """Integer-valued points + a query model (exact scalar products)."""
    rng = np.random.default_rng(seed)
    points = rng.integers(1, 30, size=(n, dim)).astype(np.float64)
    model = QueryModel.uniform(dim=dim, low=1.0, high=5.0, rq=4)
    return points, model


def integer_queries(points, m=6, seed=1, scale=0.4):
    """Integer-valued normals with offsets rounded to whole numbers."""
    rng = np.random.default_rng(seed)
    normals = rng.integers(1, 6, size=(m, points.shape[1])).astype(np.float64)
    column_max = points.max(axis=0)
    offsets = np.asarray(
        [float(np.round(scale * normal @ column_max)) for normal in normals]
    )
    return normals, offsets


def build_engine(n=400, dim=4, seed=0, n_shards=2, **kwargs):
    """A small sharded engine over an integer dataset."""
    points, model = integer_dataset(n=n, dim=dim, seed=seed)
    engine = ShardedFunctionIndex(
        points, model, n_indices=6, rng=seed, n_shards=n_shards, **kwargs
    )
    return engine, points


def http_json(host, port, method, path, body=None):
    """One request on a fresh connection: (status, headers, decoded body)."""
    conn = HTTPConnection(host, port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(
            method, path, body=payload,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        raw = response.read()
        try:
            decoded = json.loads(raw)
        except ValueError:
            decoded = raw.decode("utf-8", "replace")
        return response.status, dict(response.getheaders()), decoded
    finally:
        conn.close()


@pytest.fixture
def pristine_faults():
    """Disarm any ambient fault plan (the chaos CI lane arms
    ``REPRO_FAULTS`` process-wide), restoring it afterwards — for tests
    whose clean queries must actually be clean."""
    previous_plan = _flt.active_plan()
    previously_armed = _flt.is_armed()
    _flt.disarm()
    yield
    if previously_armed and previous_plan is not None:
        _flt.arm(previous_plan)
    else:
        _flt.disarm()
