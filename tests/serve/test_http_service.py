"""Endpoint contract of the HTTP query service.

Each class boots a real service (daemon-thread event loop, ephemeral
port) over a small integer-valued engine and speaks actual HTTP to it,
so status codes, JSON shapes, keep-alive, shedding, and degraded-answer
passthrough are all verified on the wire.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection

import numpy as np
import pytest

from repro.reliability import faults as _flt
from repro.serve import ServiceConfig, TenantSpec, serve_in_thread

from .conftest import build_engine, http_json, integer_queries


@pytest.fixture(scope="module")
def served():
    """One engine + service shared by the read-mostly endpoint tests."""
    engine, points = build_engine(n=400, dim=4, seed=0)
    normals, offsets = integer_queries(points, m=8, seed=1)
    config = ServiceConfig(batch_window_s=0.002, batch_max=16, queue_depth=64)
    handle = serve_in_thread(engine, config)
    yield engine, handle, normals, offsets
    handle.stop()
    engine.close()


def _query_body(normals, offsets, i, **extra):
    body = {"normal": normals[i].tolist(), "offset": float(offsets[i])}
    body.update(extra)
    return body


class TestQueryEndpoints:
    def test_query_matches_direct_call(self, served):
        engine, handle, normals, offsets = served
        for op in ("<=", "<", ">=", ">"):
            status, _, body = http_json(
                handle.host, handle.port, "POST", "/query",
                _query_body(normals, offsets, 0, op=op),
            )
            assert status == 200
            direct = engine.query(normals[0], float(offsets[0]), op)
            assert body["ids"] == direct.ids.tolist()
            assert body["count"] == int(direct.ids.size)
            assert body["used_fallback"] == bool(direct.used_fallback)

    def test_topk_matches_direct_call(self, served):
        engine, handle, normals, offsets = served
        status, _, body = http_json(
            handle.host, handle.port, "POST", "/topk",
            _query_body(normals, offsets, 1, k=7),
        )
        assert status == 200
        direct = engine.topk(normals[1], float(offsets[1]), k=7)
        assert body["ids"] == direct.ids.tolist()
        assert body["distances"] == direct.distances.tolist()
        assert body["n_checked"] == int(direct.n_checked)

    def test_keep_alive_serves_multiple_requests(self, served):
        engine, handle, normals, offsets = served
        conn = HTTPConnection(handle.host, handle.port, timeout=30)
        try:
            for i in range(3):
                conn.request(
                    "POST", "/query",
                    body=json.dumps(_query_body(normals, offsets, i)),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                payload = json.loads(response.read())
                assert response.status == 200
                direct = engine.query(normals[i], float(offsets[i]))
                assert payload["ids"] == direct.ids.tolist()
        finally:
            conn.close()


class TestValidation:
    @pytest.mark.parametrize(
        "body,needle",
        [
            ({"offset": 1.0}, "'normal'"),
            ({"normal": [], "offset": 1.0}, "'normal'"),
            ({"normal": ["x", "y"], "offset": 1.0}, "not numeric"),
            ({"normal": [1.0, 2.0], "offset": 1.0}, "dimension"),
            ({"normal": [1.0, 1.0, 1.0, 1.0]}, "'offset'"),
            (
                {"normal": [1.0, 1.0, 1.0, 1.0], "offset": 1.0, "op": "=="},
                "'op'",
            ),
            (
                {"normal": [1.0, 1.0, 1.0, 1.0], "offset": 1.0, "tenant": ""},
                "'tenant'",
            ),
        ],
    )
    def test_bad_query_bodies_answer_400(self, served, body, needle):
        _, handle, _, _ = served
        status, _, payload = http_json(
            handle.host, handle.port, "POST", "/query", body
        )
        assert status == 400
        assert needle in payload["detail"]

    @pytest.mark.parametrize("bad_k", [None, 0, -1, 2.5, True, "3"])
    def test_topk_requires_positive_integer_k(self, served, bad_k):
        _, handle, normals, offsets = served
        body = _query_body(normals, offsets, 0)
        if bad_k is not None:
            body["k"] = bad_k
        status, _, payload = http_json(
            handle.host, handle.port, "POST", "/topk", body
        )
        assert status == 400
        assert "'k'" in payload["detail"]

    def test_malformed_json_answers_400(self, served):
        _, handle, _, _ = served
        conn = HTTPConnection(handle.host, handle.port, timeout=30)
        try:
            conn.request(
                "POST", "/query", body="{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            response.read()
        finally:
            conn.close()

    def test_unknown_path_404_wrong_method_405(self, served):
        _, handle, _, _ = served
        status, _, _ = http_json(handle.host, handle.port, "GET", "/nope")
        assert status == 404
        status, _, _ = http_json(handle.host, handle.port, "GET", "/query")
        assert status == 405
        status, _, _ = http_json(handle.host, handle.port, "POST", "/healthz")
        assert status == 405


class TestReadEndpoints:
    def test_healthz_reports_engine_shape(self, served):
        engine, handle, _, _ = served
        status, _, body = http_json(handle.host, handle.port, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "healthy"
        assert body["phase"] == "running"
        assert body["points"] == len(engine)
        assert body["shards"] == engine.n_shards
        assert body["backend"] == engine.backend
        assert body["breakers"]["open"] == 0

    def test_metrics_exposes_serve_families(self, served):
        _, handle, normals, offsets = served
        http_json(
            handle.host, handle.port, "POST", "/query",
            _query_body(normals, offsets, 0),
        )
        status, headers, text = http_json(
            handle.host, handle.port, "GET", "/metrics"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_serve_requests_total" in text
        assert "repro_serve_batch_size" in text

    def test_slo_returns_objectives(self, served):
        _, handle, _, _ = served
        status, _, body = http_json(handle.host, handle.port, "GET", "/slo")
        assert status == 200
        assert isinstance(body["objectives"], list)

    def test_stats_counts_requests(self, served):
        _, handle, normals, offsets = served
        before = http_json(handle.host, handle.port, "GET", "/stats")[2]
        http_json(
            handle.host, handle.port, "POST", "/query",
            _query_body(normals, offsets, 0),
        )
        after = http_json(handle.host, handle.port, "GET", "/stats")[2]
        assert after["requests"] > before["requests"]
        assert set(after["shed"]) == {
            "quota", "queue_full", "brownout", "breaker", "draining", "fault",
        }
        assert "mean_batch" in after["batching"]


class TestShedding:
    def test_quota_shed_answers_429_with_retry_after(self):
        engine, points = build_engine(n=200, dim=3, seed=4)
        normals, offsets = integer_queries(points, m=2, seed=5)
        config = ServiceConfig(
            batch_window_s=0.0,
            tenants={"slow": TenantSpec("slow", rate=0.001, burst=1.0)},
        )
        handle = serve_in_thread(engine, config)
        try:
            body = _query_body(normals, offsets, 0, tenant="slow")
            first = http_json(handle.host, handle.port, "POST", "/query", body)
            assert first[0] == 200
            status, headers, payload = http_json(
                handle.host, handle.port, "POST", "/query", body
            )
            assert status == 429
            assert payload["error"] == "shed"
            assert payload["reason"] == "quota"
            assert payload["retry_after_s"] > 0
            assert int(headers["Retry-After"]) >= 1
            stats = http_json(handle.host, handle.port, "GET", "/stats")[2]
            assert stats["shed"]["quota"] == 1
        finally:
            handle.stop()
            engine.close()

    def test_brownout_sheds_best_effort_not_interactive(self):
        engine, points = build_engine(n=200, dim=3, seed=6)
        normals, offsets = integer_queries(points, m=2, seed=7)
        config = ServiceConfig(
            batch_window_s=0.0,
            queue_depth=10,
            brownout_fraction=0.5,
            tenants={
                "vip": TenantSpec("vip", priority=0),
                "batch": TenantSpec("batch", priority=1),
            },
        )
        handle = serve_in_thread(engine, config)
        try:
            # Simulate a deep backlog: the admission check reads the
            # batcher's live outstanding counter.
            batcher = handle.service._batcher
            batcher._outstanding += 7
            try:
                status, _, payload = http_json(
                    handle.host, handle.port, "POST", "/query",
                    _query_body(normals, offsets, 0, tenant="batch"),
                )
                assert status == 429
                assert payload["reason"] == "brownout"
                status, _, payload = http_json(
                    handle.host, handle.port, "POST", "/query",
                    _query_body(normals, offsets, 0, tenant="vip"),
                )
                assert status == 200
            finally:
                batcher._outstanding -= 7
        finally:
            handle.stop()
            engine.close()

    def test_queue_full_sheds_everyone(self):
        engine, points = build_engine(n=200, dim=3, seed=8)
        normals, offsets = integer_queries(points, m=1, seed=9)
        config = ServiceConfig(batch_window_s=0.0, queue_depth=4)
        handle = serve_in_thread(engine, config)
        try:
            batcher = handle.service._batcher
            batcher._outstanding += 4
            try:
                status, _, payload = http_json(
                    handle.host, handle.port, "POST", "/query",
                    _query_body(normals, offsets, 0),
                )
                assert status == 429
                assert payload["reason"] == "queue_full"
            finally:
                batcher._outstanding -= 4
        finally:
            handle.stop()
            engine.close()


class TestDegradedPassthrough:
    def test_degraded_info_passes_through_verbatim(self, pristine_faults):
        """An unrecoverable shard under the ``degrade`` policy yields the
        same partial ids AND the exact ``DegradedInfo`` dict a direct
        library call reports — completeness is never rounded up."""
        engine, points = build_engine(
            n=300, dim=3, seed=10, failure_policy="degrade"
        )
        normals, offsets = integer_queries(points, m=1, seed=11)
        config = ServiceConfig(batch_window_s=0.0)
        handle = serve_in_thread(engine, config)
        spec = "shard.query:error:shard=1;shard.scan:error:shard=1"
        try:
            with _flt.injected(spec):
                status, _, body = http_json(
                    handle.host, handle.port, "POST", "/query",
                    _query_body(normals, offsets, 0),
                )
                # The service dispatches through query_batch, so the
                # direct reference must too (the degraded cause string
                # names the call kind).
                direct = engine.query_batch(normals[:1], offsets[:1])[0]
            assert status == 200
            assert direct.degraded is not None
            assert not direct.degraded.is_complete
            assert body["degraded"] == direct.degraded.to_dict()
            assert body["ids"] == direct.ids.tolist()
        finally:
            handle.stop()
            engine.close()
