"""docs/operations.md flag table ≡ the ``repro.env`` registry.

The operator runbook promises that its flag table is complete and
verbatim.  This test parses the markdown table and checks it cell by
cell against ``repro.env.ENV_VARS``: same variable set, same rendered
default, same help text.  Adding a flag to the code without documenting
it (or documenting one that does not exist) fails here.
"""

from __future__ import annotations

import os
import re

from repro.env import ENV_VARS, var_names

_DOC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    "docs", "operations.md",
)

_ROW = re.compile(r"^\|\s*`(?P<name>REPRO_[A-Z0-9_]+)`\s*\|"
                  r"\s*(?P<default>.+?)\s*\|\s*(?P<help>.+?)\s*\|$")


def _parse_flag_table():
    """(name -> (default cell, help cell)) from the runbook's flag table."""
    with open(_DOC, encoding="utf-8") as fh:
        text = fh.read()
    section = text.split("## The flag table", 1)[1].split("\n## ", 1)[0]
    rows = {}
    for line in section.splitlines():
        match = _ROW.match(line.strip())
        if match:
            rows[match.group("name")] = (
                match.group("default"), match.group("help")
            )
    return rows


def test_flag_table_matches_registry_exactly():
    rows = _parse_flag_table()
    documented = set(rows)
    registered = set(var_names())
    assert documented == registered, (
        f"missing from docs/operations.md: {sorted(registered - documented)}; "
        f"documented but not registered: {sorted(documented - registered)}"
    )
    for var in ENV_VARS:
        default_cell, help_cell = rows[var.name]
        expected_default = f"`{var.default}`" if var.default else "(empty)"
        assert default_cell == expected_default, (
            f"{var.name}: default cell {default_cell!r} != {expected_default!r}"
        )
        assert help_cell == var.help, (
            f"{var.name}: help text drifted from the registry:\n"
            f"  docs: {help_cell!r}\n  code: {var.help!r}"
        )


def test_flag_table_has_no_duplicate_rows():
    with open(_DOC, encoding="utf-8") as fh:
        section = fh.read().split("## The flag table", 1)[1].split("\n## ", 1)[0]
    names = [
        m.group("name")
        for line in section.splitlines()
        if (m := _ROW.match(line.strip()))
    ]
    assert len(names) == len(set(names))
