"""Tests for the query-adaptive octant index (future-work extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.extensions import AdaptiveOctantIndex


@pytest.fixture
def data(rng):
    return rng.normal(0.0, 5.0, size=(1000, 3))


@pytest.fixture
def adaptive(data):
    return AdaptiveOctantIndex(data, rng=0)


def oracle(rows: np.ndarray, normal: np.ndarray, offset: float, op: str) -> np.ndarray:
    values = rows @ normal
    mask = {
        "<=": values <= offset,
        "<": values < offset,
        ">=": values >= offset,
        ">": values > offset,
    }[op]
    return np.nonzero(mask)[0].astype(np.int64)


class TestValidation:
    def test_bad_budget(self, data):
        with pytest.raises(ValueError):
            AdaptiveOctantIndex(data, max_indices_per_octant=0)

    def test_bad_spread(self, data):
        with pytest.raises(ValueError):
            AdaptiveOctantIndex(data, domain_spread=1.0)

    def test_dim_mismatch(self, adaptive):
        with pytest.raises(DimensionMismatchError):
            adaptive.query(np.array([1.0, 1.0]), 0.0)


class TestExactness:
    @pytest.mark.parametrize("op", ["<=", "<", ">=", ">"])
    def test_random_sign_patterns(self, data, adaptive, rng, op):
        for _ in range(10):
            normal = rng.normal(0.0, 1.0, 3)
            offset = float(rng.uniform(-10, 10))
            ids = adaptive.query(normal, offset, op).ids
            assert np.array_equal(ids, oracle(data, normal, offset, op))

    def test_topk_matches_scan(self, data, adaptive, rng):
        normal = rng.normal(0.0, 1.0, 3)
        result = adaptive.topk(normal, 2.0, 15)
        values = data @ normal
        satisfied = np.abs(values[values <= 2.0] - 2.0)
        expected = np.sort(satisfied)[:15] / np.linalg.norm(normal)
        assert np.allclose(result.distances, expected)

    def test_zero_component_normal(self, data, adaptive):
        normal = np.array([1.0, 0.0, -1.0])
        ids = adaptive.query(normal, 1.0).ids
        assert np.array_equal(ids, oracle(data, normal, 1.0, "<="))


class TestAdaptation:
    def test_octants_materialize_lazily(self, data):
        adaptive = AdaptiveOctantIndex(data, rng=0)
        assert adaptive.n_octants == 0
        adaptive.query(np.array([1.0, 1.0, 1.0]), 0.0)
        assert adaptive.n_octants == 1
        adaptive.query(np.array([-1.0, 1.0, 1.0]), 0.0)
        assert adaptive.n_octants == 2
        adaptive.query(np.array([2.0, 2.0, 2.0]), 0.0)  # same octant as first
        assert adaptive.n_octants == 2

    def test_query_normals_folded_into_index_set(self, data):
        adaptive = AdaptiveOctantIndex(data, max_indices_per_octant=3, rng=0)
        normal_a = np.array([1.0, 1.0, 1.0])
        adaptive.query(normal_a, 0.0)
        assert adaptive.n_indices(normal_a) == 1
        adaptive.query(np.array([1.0, 2.0, 3.0]), 0.0)
        assert adaptive.n_indices(normal_a) == 2
        adaptive.query(np.array([3.0, 2.0, 1.0]), 0.0)
        adaptive.query(np.array([4.0, 4.0, 1.0]), 0.0)  # budget reached
        assert adaptive.n_indices(normal_a) == 3

    def test_repeated_query_prunes_everything(self, data):
        adaptive = AdaptiveOctantIndex(data, rng=0)
        normal = np.array([1.5, 2.5, 0.5])
        adaptive.query(normal, 4.0)
        answer = adaptive.query(normal, 4.0)
        assert answer.stats is not None
        assert answer.stats.ii_size <= 1  # parallel index exists now


class TestDynamics:
    def test_insert_update_delete_consistent(self, data, rng):
        adaptive = AdaptiveOctantIndex(data, rng=0)
        normal = rng.normal(0.0, 1.0, 3)
        adaptive.query(normal, 0.0)  # materialize one octant

        new_ids = adaptive.insert_points(rng.normal(0, 5, (50, 3)))
        assert np.array_equal(new_ids, np.arange(1000, 1050))
        adaptive.delete_points(np.arange(100, dtype=np.int64))
        adaptive.update_points(np.array([200, 201]), rng.normal(0, 5, (2, 3)))
        assert len(adaptive) == 950

        rows = adaptive._rows
        live = [i for i in range(rows.shape[0]) if i not in adaptive._dead]
        values = rows[live] @ normal
        expected = np.asarray(live, dtype=np.int64)[values <= 1.0]
        assert np.array_equal(adaptive.query(normal, 1.0).ids, expected)

    def test_delete_dead_id_raises(self, adaptive):
        adaptive.delete_points(np.array([5]))
        with pytest.raises(KeyError):
            adaptive.delete_points(np.array([5]))

    def test_out_of_range_id_raises(self, adaptive):
        with pytest.raises(KeyError):
            adaptive.update_points(np.array([99999]), np.zeros((1, 3)))
