"""Tests for PCA and the exact PCA-filtered index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.extensions import PCA, PCAFilterIndex


@pytest.fixture
def low_rank_data(rng):
    """8-D data that is almost 2-D (small residuals)."""
    latent = rng.normal(0.0, 1.0, size=(2000, 2))
    loadings = rng.normal(0.0, 1.0, size=(2, 8))
    return latent @ loadings + 0.05 * rng.normal(0.0, 1.0, size=(2000, 8))


class TestPCA:
    def test_validation(self):
        with pytest.raises(ValueError):
            PCA(0)
        with pytest.raises(DimensionMismatchError):
            PCA(5).fit(np.ones((10, 3)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PCA(2).transform(np.ones((1, 3)))

    def test_variance_ordering(self, low_rank_data):
        pca = PCA(4).fit(low_rank_data)
        assert np.all(np.diff(pca.explained_variance_) <= 1e-9)

    def test_low_rank_data_reconstructs_well(self, low_rank_data):
        pca = PCA(2).fit(low_rank_data)
        residuals = pca.residual_norms(low_rank_data)
        assert residuals.max() < 1.0
        assert residuals.mean() < 0.3

    def test_transform_shape(self, low_rank_data):
        pca = PCA(3).fit(low_rank_data)
        assert pca.transform(low_rank_data).shape == (2000, 3)
        assert pca.inverse_transform(pca.transform(low_rank_data)).shape == (2000, 8)

    def test_components_orthonormal(self, low_rank_data):
        pca = PCA(3).fit(low_rank_data)
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(3), atol=1e-9)

    def test_full_rank_reconstruction_exact(self, rng):
        data = rng.normal(size=(100, 4))
        pca = PCA(4).fit(data)
        recon = pca.inverse_transform(pca.transform(data))
        assert np.allclose(recon, data, atol=1e-9)


class TestPCAFilterIndex:
    @pytest.fixture
    def index(self, low_rank_data):
        return PCAFilterIndex(low_rank_data, n_components=2, rng=0)

    @pytest.mark.parametrize("op", ["<=", "<", ">=", ">"])
    def test_exactness(self, low_rank_data, index, rng, op):
        for _ in range(8):
            normal = rng.normal(0.0, 1.0, 8)
            offset = float(rng.uniform(-5, 5))
            answer = index.query(normal, offset, op)
            values = low_rank_data @ normal
            mask = {
                "<=": values <= offset,
                "<": values < offset,
                ">=": values >= offset,
                ">": values > offset,
            }[op]
            assert np.array_equal(answer.ids, np.nonzero(mask)[0])

    def test_prunes_most_points(self, index, rng):
        """The point of the extension: full-D verification only in the band."""
        normal = rng.normal(0.0, 1.0, 8)
        answer = index.query(normal, 1.0)
        assert answer.pruned_fraction > 0.5

    def test_residual_bound_positive(self, index):
        assert 0.0 < index.residual_bound < 1.0

    def test_dim_checked(self, index):
        with pytest.raises(DimensionMismatchError):
            index.query(np.ones(3), 0.0)

    def test_len(self, index):
        assert len(index) == 2000
