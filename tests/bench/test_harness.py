"""Tests for the benchmark harness utilities."""

from __future__ import annotations

import pytest

from repro.bench import Timer, format_table, print_table, time_call


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            total = sum(range(10_000))
        assert total > 0
        assert timer.seconds >= 0.0
        assert timer.millis == pytest.approx(timer.seconds * 1000.0)


class TestTimeCall:
    def test_returns_best(self):
        calls = []
        value = time_call(lambda: calls.append(1), repeat=4)
        assert len(calls) == 4
        assert value >= 0.0

    def test_repeat_validation(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeat=0)


class TestFormatTable:
    def test_alignment_and_headers(self):
        rows = [
            {"name": "a", "value": 1.2345, "count": 10},
            {"name": "longer", "value": 1234.5, "count": 2},
        ]
        text = format_table("demo", rows)
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        text = format_table("t", [{"v": 0.00012}, {"v": 12.3}, {"v": 4567.0}])
        assert "0.0001" in text
        assert "12.30" in text
        assert "4567" in text

    def test_empty(self):
        assert "(no rows)" in format_table("t", [])

    def test_print_table_smoke(self, capsys):
        print_table("t", [{"a": 1}])
        captured = capsys.readouterr()
        assert "== t ==" in captured.out
