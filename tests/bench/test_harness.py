"""Tests for the benchmark harness utilities."""

from __future__ import annotations

import pytest

from repro.bench import Timer, TimingResult, format_table, print_table, time_call


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            total = sum(range(10_000))
        assert total > 0
        assert timer.seconds >= 0.0
        assert timer.millis == pytest.approx(timer.seconds * 1000.0)


class TestTimeCall:
    def test_returns_distribution(self):
        calls = []
        result = time_call(lambda: calls.append(1), repeat=4)
        assert len(calls) == 4
        assert isinstance(result, TimingResult)
        assert result.repeat == 4
        assert 0.0 <= result.min <= result.median <= result.max
        assert float(result) == result.min

    def test_to_dict(self):
        result = time_call(lambda: None, repeat=3)
        payload = result.to_dict()
        assert set(payload) == {"min", "median", "max", "repeat"}
        assert payload["repeat"] == 3.0

    def test_repeat_validation(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeat=0)

    def test_empty_times_rejected(self):
        with pytest.raises(ValueError):
            TimingResult(())

    def test_routes_into_bench_histogram(self):
        from repro.obs import metrics as obs_metrics
        from repro.obs import runtime as obs_runtime

        registry = obs_metrics.registry()
        was_enabled = obs_runtime.ENABLED
        before = registry.n_samples()
        obs_runtime.enable()
        try:
            time_call(lambda: None, repeat=2, name="harness-test")
        finally:
            if not was_enabled:
                obs_runtime.disable()
        histogram = obs_metrics.bench_seconds()
        assert histogram.count(bench="harness-test") >= 2
        assert registry.n_samples() >= before + 2


class TestFormatTable:
    def test_alignment_and_headers(self):
        rows = [
            {"name": "a", "value": 1.2345, "count": 10},
            {"name": "longer", "value": 1234.5, "count": 2},
        ]
        text = format_table("demo", rows)
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        text = format_table("t", [{"v": 0.00012}, {"v": 12.3}, {"v": 4567.0}])
        assert "0.0001" in text
        assert "12.30" in text
        assert "4567" in text

    def test_empty(self):
        assert "(no rows)" in format_table("t", [])

    def test_print_table_smoke(self, capsys):
        print_table("t", [{"a": 1}])
        captured = capsys.readouterr()
        assert "== t ==" in captured.out
