"""Smoke tests for the experiment runners (tiny sizes — shape only)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    run_consumption_experiment,
    run_index_cost_experiment,
    run_memory_experiment,
    run_moving_experiment,
    run_query_experiment,
    run_scalability_experiment,
    run_selectivity_experiment,
    run_topk_experiment,
    run_update_experiment,
)
from repro.datasets import load


@pytest.fixture(scope="module")
def points():
    return load("indp", 3000, 4, rng=0).points


class TestQueryExperiment:
    def test_fields(self, points):
        cell = run_query_experiment(points, rq=2, n_indices=10, n_queries=4, rng=0)
        assert set(cell) == {
            "planar_ms",
            "baseline_ms",
            "speedup",
            "pruning_pct",
            "n_indices",
        }
        assert 0.0 <= cell["pruning_pct"] <= 100.0
        assert cell["planar_ms"] > 0 and cell["baseline_ms"] > 0


class TestConsumptionExperiment:
    def test_rows(self):
        rows = run_consumption_experiment(5000, [5, 20], n_queries=4, rng=0)
        assert [r["n_indices"] for r in rows] == [5, 20]
        assert all(r["build_s"] > 0 for r in rows)


class TestSelectivityExperiment:
    def test_monotone_selectivity(self, points):
        rows = run_selectivity_experiment(
            points, (0.1, 0.5, 1.0), n_indices=10, n_queries=4, rng=0
        )
        sel = [r["selectivity_pct"] for r in rows]
        assert sel[0] <= sel[1] <= sel[2]


class TestScalability:
    def test_sizes(self):
        rows = run_scalability_experiment(
            "indp", (1000, 3000), n_indices=5, n_queries=3, rng=0
        )
        assert [r["n_points"] for r in rows] == [1000, 3000]


class TestIndexCosts:
    def test_build_rows(self):
        rows = run_index_cost_experiment((2, 4), (1, 5), n_points=2000, rng=0)
        assert len(rows) == 4

    def test_memory_rows(self):
        rows = run_memory_experiment((2, 4), (1, 5), n_points=2000, rng=0)
        assert all(r["memory_mb"] > 0 for r in rows)
        by_dim2 = [r["memory_mb"] for r in rows if r["dim"] == 2]
        assert by_dim2[1] > by_dim2[0]

    def test_update_rows(self):
        rows = run_update_experiment(2000, 4, (0.05, 0.2), n_indices=3, rng=0)
        assert all(r["per_index_ms"] >= 0 for r in rows)


class TestMovingExperiment:
    @pytest.mark.parametrize("scenario", ["linear", "circular", "accelerating"])
    def test_scenarios(self, scenario):
        rows = run_moving_experiment(scenario, 40, (10.0, 12.0), rng=0)
        assert len(rows) == 2
        for row in rows:
            assert row["planar_ms"] > 0 and row["baseline_ms"] > 0
        if scenario == "linear":
            assert "mbr_ms" in rows[0]
        else:
            assert "mbr_ms" not in rows[0]

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            run_moving_experiment("teleporting", 10, (10.0,))


class TestTopKExperiment:
    def test_rows(self, points):
        rows = run_topk_experiment(points, (5, 50), n_indices=10, n_queries=4, rng=0)
        assert [r["k"] for r in rows] == [5, 50]
        assert all(0.0 <= r["checked_pct"] <= 100.0 for r in rows)
