"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_choices(self):
        args = build_parser().parse_args(["demo", "quickstart", "--n", "123"])
        assert args.name == "quickstart" and args.n == 123

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        assert "Planar index" in capsys.readouterr().out

    def test_demo_quickstart(self, capsys):
        assert main(["demo", "quickstart", "--n", "2000"]) == 0
        out = capsys.readouterr().out
        assert "indexed 2,000 points" in out
        assert "pruned" in out

    def test_demo_consumption(self, capsys):
        assert main(["demo", "consumption", "--n", "3000"]) == 0
        assert "power factor" in capsys.readouterr().out

    def test_demo_learning(self, capsys):
        assert main(["demo", "learning", "--n", "1500"]) == 0
        assert "accuracy" in capsys.readouterr().out

    def test_bench_query(self, capsys):
        assert main(["bench", "query", "--n", "3000", "--indices", "10"]) == 0
        assert "pruning_pct" in capsys.readouterr().out

    def test_bench_topk(self, capsys):
        assert main(["bench", "topk", "--n", "3000", "--indices", "10"]) == 0
        assert "checked_pct" in capsys.readouterr().out

    def test_datasets_synthetic(self, capsys):
        assert main(["datasets", "corr", "--n", "500", "--dim", "3"]) == 0
        assert "corr" in capsys.readouterr().out

    def test_datasets_csv_export(self, tmp_path, capsys):
        target = tmp_path / "out.csv"
        assert main(["datasets", "indp", "--n", "50", "--csv", str(target)]) == 0
        assert target.exists()
        header = target.read_text().splitlines()[0]
        assert header.startswith("attr_0")

    def test_demo_quickstart_explain(self, capsys):
        assert main(["demo", "quickstart", "--n", "2000", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN" in out
        assert "candidates:" in out
        assert "pruning:" in out


class TestObsCommand:
    def test_dump_empty(self, tmp_path, capsys):
        state = tmp_path / "state.json"
        assert main(["obs", "dump", "--state", str(state)]) == 0
        # a pristine process may or may not have samples depending on the
        # armed CI mode; the command must succeed either way
        assert capsys.readouterr().out

    def test_export_prometheus_demo(self, tmp_path, capsys):
        state = tmp_path / "state.json"
        assert main(
            ["obs", "export", "--format", "prometheus", "--demo", "--state", str(state)]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in out
        assert "# TYPE repro_query_latency_seconds histogram" in out
        assert "repro_query_latency_seconds_bucket" in out
        assert 'le="+Inf"' in out
        assert 'repro_interval_points_total{interval="si"' in out

    def test_export_json_demo(self, tmp_path, capsys):
        import json

        state = tmp_path / "state.json"
        assert main(
            ["obs", "export", "--format", "json", "--demo", "--state", str(state)]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {entry["name"] for entry in payload["metrics"]}
        assert "repro_queries_total" in names

    def test_reset_clears_state_file(self, tmp_path, capsys):
        state = tmp_path / "state.json"
        state.write_text('{"metrics": []}')
        assert main(["obs", "reset", "--state", str(state)]) == 0
        assert not state.exists()
        assert "cleared" in capsys.readouterr().out

    def test_state_accumulates_across_cli_runs(self, tmp_path, monkeypatch, capsys):
        """Armed CLI invocations merge metrics into the state file."""
        import json

        state = tmp_path / "state.json"
        monkeypatch.setenv("REPRO_OBS_STATE", str(state))
        from repro.obs import runtime as obs_runtime
        from repro.obs import trace as obs_trace

        was_enabled = obs_runtime.ENABLED
        obs_runtime.enable()
        # Pin full sampling: the sampled chaos lane runs this suite with
        # REPRO_OBS_SAMPLE below 1, which would mute the per-query
        # counters this test asserts on.
        rate = obs_trace.set_sample_rate(1.0)
        try:
            assert main(["demo", "quickstart", "--n", "2000"]) == 0
        finally:
            obs_trace.set_sample_rate(rate)
            if not was_enabled:
                obs_runtime.disable()
        capsys.readouterr()
        assert state.exists()
        payload = json.loads(state.read_text())
        names = {entry["name"] for entry in payload["metrics"]}
        assert "repro_queries_total" in names


class TestTelemetryCommands:
    """ISSUE 7 surfaces: obs tail / obs trace, slo check, top."""

    def _emit_records(self, path):
        from repro.obs import events as obs_events

        previous = obs_events.configure(str(path))
        try:
            for index in range(3):
                obs_events.emit(
                    {
                        "ts": 1000.0 + index,
                        "trace_id": f"{index + 1:016x}",
                        "op": "inequality",
                        "latency_ms": 2.0,
                        "sampled": True,
                        "slow": False,
                        "shards": 4,
                        "retries": 0,
                        "n_queries": 1,
                        "degraded": None,
                    }
                )
        finally:
            obs_events.configure(previous)

    def test_obs_tail_renders_records(self, tmp_path, capsys):
        log = tmp_path / "queries.jsonl"
        self._emit_records(log)
        assert main(["obs", "tail", "--log", str(log), "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "0000000000000002" in out and "0000000000000003" in out
        assert "0000000000000001" not in out

    def test_obs_tail_json(self, tmp_path, capsys):
        import json

        log = tmp_path / "queries.jsonl"
        self._emit_records(log)
        assert main(["obs", "tail", "--log", str(log), "--json", "-n", "1"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["op"] == "inequality" and record["shards"] == 4

    def test_obs_tail_without_log_fails(self, capsys):
        from repro.obs import events as obs_events

        previous = obs_events.configure(None)
        try:
            assert main(["obs", "tail"]) == 1
        finally:
            obs_events.configure(previous)
        assert "no query log configured" in capsys.readouterr().out

    def test_obs_trace_from_ring_buffer(self, capsys):
        from repro.obs import clear_traces
        from repro.obs import runtime as obs_runtime
        from repro.obs import trace as obs_trace

        was_enabled = obs_runtime.ENABLED
        obs_runtime.enable()
        rate = obs_trace.set_sample_rate(1.0)
        try:
            ctx = obs_trace.begin("inequality")
            obs_trace.finish(ctx, stats={"n_verified": 9})
            assert main(["obs", "trace", ctx.trace_id[:8]]) == 0
        finally:
            obs_trace.set_sample_rate(rate)
            clear_traces()
            if not was_enabled:
                obs_runtime.disable()
        out = capsys.readouterr().out
        assert "query.inequality" in out
        assert ctx.trace_id in out

    def test_obs_trace_falls_back_to_query_log(self, tmp_path, capsys):
        log = tmp_path / "queries.jsonl"
        self._emit_records(log)
        assert main(["obs", "trace", "0000000000000002", "--log", str(log)]) == 0
        assert "0000000000000002" in capsys.readouterr().out

    def test_obs_trace_no_match(self, tmp_path, capsys):
        log = tmp_path / "queries.jsonl"
        self._emit_records(log)
        assert main(["obs", "trace", "feedface", "--log", str(log)]) == 1
        assert "no trace matching" in capsys.readouterr().out

    def test_obs_trace_requires_target(self, capsys):
        assert main(["obs", "trace"]) == 2
        assert "usage" in capsys.readouterr().out

    def test_slo_check_ok(self, tmp_path, capsys):
        import json

        spec = tmp_path / "slo.json"
        spec.write_text(
            json.dumps(
                {
                    "objectives": [
                        {
                            "name": "lenient",
                            "type": "latency",
                            "quantile": 0.99,
                            "threshold_ms": 1e9,
                        }
                    ]
                }
            )
        )
        state = tmp_path / "state.json"
        assert (
            main(
                ["slo", "check", "--objectives", str(spec), "--state", str(state)]
            )
            == 0
        )
        assert "lenient" in capsys.readouterr().out

    def test_slo_check_violation_exits_one(self, tmp_path, capsys):
        import json

        from repro.obs.metrics import COMPLETENESS_BUCKETS, MetricsRegistry

        reg = MetricsRegistry()
        hist = reg.histogram(
            "repro_answer_completeness",
            "fixture",
            ("kind",),
            COMPLETENESS_BUCKETS,
        )
        for _ in range(10):
            hist.observe(0.5, kind="cli-slo-kind")
        state = tmp_path / "state.json"
        state.write_text(json.dumps(reg.snapshot()))
        spec = tmp_path / "slo.json"
        spec.write_text(
            json.dumps(
                {
                    "objectives": [
                        {
                            "name": "completeness",
                            "type": "completeness",
                            "kind": "cli-slo-kind",
                            "floor": 0.999,
                        }
                    ]
                }
            )
        )
        assert (
            main(
                ["slo", "check", "--objectives", str(spec), "--state", str(state)]
            )
            == 1
        )
        assert "VIOLATED" in capsys.readouterr().out

    def test_slo_check_bad_spec_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        assert main(["slo", "check", "--objectives", str(bad)]) == 2
        assert "bad SLO spec" in capsys.readouterr().out

    def test_top_once_renders_frame(self, tmp_path, capsys):
        state = tmp_path / "state.json"
        assert main(["top", "--once", "--state", str(state)]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "objective" in out  # the embedded SLO table
