"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_choices(self):
        args = build_parser().parse_args(["demo", "quickstart", "--n", "123"])
        assert args.name == "quickstart" and args.n == 123

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        assert "Planar index" in capsys.readouterr().out

    def test_demo_quickstart(self, capsys):
        assert main(["demo", "quickstart", "--n", "2000"]) == 0
        out = capsys.readouterr().out
        assert "indexed 2,000 points" in out
        assert "pruned" in out

    def test_demo_consumption(self, capsys):
        assert main(["demo", "consumption", "--n", "3000"]) == 0
        assert "power factor" in capsys.readouterr().out

    def test_demo_learning(self, capsys):
        assert main(["demo", "learning", "--n", "1500"]) == 0
        assert "accuracy" in capsys.readouterr().out

    def test_bench_query(self, capsys):
        assert main(["bench", "query", "--n", "3000", "--indices", "10"]) == 0
        assert "pruning_pct" in capsys.readouterr().out

    def test_bench_topk(self, capsys):
        assert main(["bench", "topk", "--n", "3000", "--indices", "10"]) == 0
        assert "checked_pct" in capsys.readouterr().out

    def test_datasets_synthetic(self, capsys):
        assert main(["datasets", "corr", "--n", "500", "--dim", "3"]) == 0
        assert "corr" in capsys.readouterr().out

    def test_datasets_csv_export(self, tmp_path, capsys):
        target = tmp_path / "out.csv"
        assert main(["datasets", "indp", "--n", "50", "--csv", str(target)]) == 0
        assert target.exists()
        header = target.read_text().splitlines()[0]
        assert header.startswith("attr_0")

    def test_demo_quickstart_explain(self, capsys):
        assert main(["demo", "quickstart", "--n", "2000", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN" in out
        assert "candidates:" in out
        assert "pruning:" in out


class TestObsCommand:
    def test_dump_empty(self, tmp_path, capsys):
        state = tmp_path / "state.json"
        assert main(["obs", "dump", "--state", str(state)]) == 0
        # a pristine process may or may not have samples depending on the
        # armed CI mode; the command must succeed either way
        assert capsys.readouterr().out

    def test_export_prometheus_demo(self, tmp_path, capsys):
        state = tmp_path / "state.json"
        assert main(
            ["obs", "export", "--format", "prometheus", "--demo", "--state", str(state)]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in out
        assert "# TYPE repro_query_latency_seconds histogram" in out
        assert "repro_query_latency_seconds_bucket" in out
        assert 'le="+Inf"' in out
        assert 'repro_interval_points_total{interval="si"' in out

    def test_export_json_demo(self, tmp_path, capsys):
        import json

        state = tmp_path / "state.json"
        assert main(
            ["obs", "export", "--format", "json", "--demo", "--state", str(state)]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {entry["name"] for entry in payload["metrics"]}
        assert "repro_queries_total" in names

    def test_reset_clears_state_file(self, tmp_path, capsys):
        state = tmp_path / "state.json"
        state.write_text('{"metrics": []}')
        assert main(["obs", "reset", "--state", str(state)]) == 0
        assert not state.exists()
        assert "cleared" in capsys.readouterr().out

    def test_state_accumulates_across_cli_runs(self, tmp_path, monkeypatch, capsys):
        """Armed CLI invocations merge metrics into the state file."""
        import json

        state = tmp_path / "state.json"
        monkeypatch.setenv("REPRO_OBS_STATE", str(state))
        from repro.obs import runtime as obs_runtime

        was_enabled = obs_runtime.ENABLED
        obs_runtime.enable()
        try:
            assert main(["demo", "quickstart", "--n", "2000"]) == 0
        finally:
            if not was_enabled:
                obs_runtime.disable()
        capsys.readouterr()
        assert state.exists()
        payload = json.loads(state.read_text())
        names = {entry["name"] for entry in payload["metrics"]}
        assert "repro_queries_total" in names
