"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_choices(self):
        args = build_parser().parse_args(["demo", "quickstart", "--n", "123"])
        assert args.name == "quickstart" and args.n == 123

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        assert "Planar index" in capsys.readouterr().out

    def test_demo_quickstart(self, capsys):
        assert main(["demo", "quickstart", "--n", "2000"]) == 0
        out = capsys.readouterr().out
        assert "indexed 2,000 points" in out
        assert "pruned" in out

    def test_demo_consumption(self, capsys):
        assert main(["demo", "consumption", "--n", "3000"]) == 0
        assert "power factor" in capsys.readouterr().out

    def test_demo_learning(self, capsys):
        assert main(["demo", "learning", "--n", "1500"]) == 0
        assert "accuracy" in capsys.readouterr().out

    def test_bench_query(self, capsys):
        assert main(["bench", "query", "--n", "3000", "--indices", "10"]) == 0
        assert "pruning_pct" in capsys.readouterr().out

    def test_bench_topk(self, capsys):
        assert main(["bench", "topk", "--n", "3000", "--indices", "10"]) == 0
        assert "checked_pct" in capsys.readouterr().out

    def test_datasets_synthetic(self, capsys):
        assert main(["datasets", "corr", "--n", "500", "--dim", "3"]) == 0
        assert "corr" in capsys.readouterr().out

    def test_datasets_csv_export(self, tmp_path, capsys):
        target = tmp_path / "out.csv"
        assert main(["datasets", "indp", "--n", "50", "--csv", str(target)]) == 0
        assert target.exists()
        header = target.read_text().splitlines()[0]
        assert header.startswith("attr_0")
