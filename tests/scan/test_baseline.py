"""Tests for the sequential-scan baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ScalarProductQuery, SequentialScan
from repro.exceptions import DimensionMismatchError, InvalidQueryError


@pytest.fixture
def scan(rng):
    return SequentialScan(rng.uniform(1, 100, size=(500, 3)))


class TestInequality:
    def test_simple_query(self):
        scan = SequentialScan(np.array([[1.0], [2.0], [3.0]]))
        ids = scan.query(ScalarProductQuery(np.array([1.0]), 2.0))
        assert np.array_equal(ids, [0, 1])

    def test_all_ops(self):
        scan = SequentialScan(np.array([[1.0], [2.0], [3.0]]))
        normal = np.array([1.0])
        assert np.array_equal(scan.query(ScalarProductQuery(normal, 2.0, "<")), [0])
        assert np.array_equal(scan.query(ScalarProductQuery(normal, 2.0, ">=")), [1, 2])
        assert np.array_equal(scan.query(ScalarProductQuery(normal, 2.0, ">")), [2])

    def test_custom_ids(self):
        scan = SequentialScan(np.array([[1.0], [5.0]]), ids=np.array([42, 7]))
        assert np.array_equal(scan.query(ScalarProductQuery(np.array([1.0]), 2.0)), [42])

    def test_id_length_checked(self):
        with pytest.raises(DimensionMismatchError):
            SequentialScan(np.ones((3, 2)), ids=np.array([1]))

    def test_query_dim_checked(self, scan):
        with pytest.raises(InvalidQueryError):
            scan.query(ScalarProductQuery(np.array([1.0]), 2.0))


class TestTopK:
    def test_topk_ordering(self):
        scan = SequentialScan(np.array([[1.0], [2.0], [3.0], [4.0]]))
        result = scan.topk(ScalarProductQuery(np.array([1.0]), 3.5), 2)
        assert np.array_equal(result.ids, [2, 1])
        assert np.allclose(result.distances, [0.5, 1.5])
        assert result.n_checked == 4

    def test_topk_fewer_than_k(self):
        scan = SequentialScan(np.array([[1.0], [10.0]]))
        result = scan.topk(ScalarProductQuery(np.array([1.0]), 2.0), 5)
        assert len(result) == 1

    def test_topk_tie_break_by_id(self):
        scan = SequentialScan(np.array([[2.0], [2.0], [2.0]]))
        result = scan.topk(ScalarProductQuery(np.array([1.0]), 3.0), 2)
        assert np.array_equal(result.ids, [0, 1])

    def test_invalid_k(self, scan):
        with pytest.raises(InvalidQueryError):
            scan.topk(ScalarProductQuery(np.ones(3), 10.0), -1)

    def test_empty_result(self, scan):
        result = scan.topk(ScalarProductQuery(np.ones(3), -1e9), 3)
        assert len(result) == 0
