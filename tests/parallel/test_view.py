"""Unit tests for the shard feature-store view."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FeatureStore
from repro.parallel import FeatureStoreView, assign_shards


@pytest.fixture
def base() -> FeatureStore:
    rng = np.random.default_rng(7)
    return FeatureStore(rng.uniform(1.0, 10.0, size=(40, 3)))


class TestRestriction:
    def test_live_ids_are_owned_subset(self, base):
        view = FeatureStoreView(base, 1, 4, "round_robin")
        ids = view.live_ids()
        assert np.array_equal(ids, np.arange(1, 40, 4))
        assert len(view) == ids.size
        assert view.dim == base.dim

    def test_views_partition_the_store(self, base):
        parts = [
            FeatureStoreView(base, shard, 3, "hash").live_ids() for shard in range(3)
        ]
        merged = np.sort(np.concatenate(parts))
        assert np.array_equal(merged, base.live_ids())

    def test_get_all_matches_base_rows(self, base):
        view = FeatureStoreView(base, 0, 2, "round_robin")
        ids, rows = view.get_all()
        assert np.array_equal(rows, base.get(ids))

    def test_scan_values_restricted_and_exact(self, base):
        view = FeatureStoreView(base, 2, 4, "round_robin")
        normal = np.asarray([1.0, 2.0, 3.0])
        ids, values = view.scan_values(normal)
        assert np.array_equal(ids, view.live_ids())
        assert np.allclose(values, base.get(ids) @ normal)

    def test_take_rows_delegates_globally(self, base):
        view = FeatureStoreView(base, 0, 4, "round_robin")
        ids = np.asarray([0, 4, 8], dtype=np.int64)
        assert np.array_equal(view.take_rows(ids), base.get(ids))

    def test_is_live_requires_ownership(self, base):
        view = FeatureStoreView(base, 0, 4, "round_robin")
        assert view.is_live(4)
        assert not view.is_live(5)  # live in base, owned by shard 1

    def test_rejects_out_of_range_shard(self, base):
        with pytest.raises(ValueError):
            FeatureStoreView(base, 4, 4, "round_robin")


class TestCacheInvalidation:
    def test_append_refreshes_membership(self, base):
        view = FeatureStoreView(base, 0, 4, "round_robin")
        before = view.live_ids()
        new_ids = base.append(np.ones((8, 3)))
        after = view.live_ids()
        expected_new = new_ids[assign_shards(new_ids, 4, "round_robin") == 0]
        assert after.size == before.size + expected_new.size
        assert np.array_equal(after, np.sort(np.concatenate([before, expected_new])))

    def test_delete_refreshes_membership(self, base):
        view = FeatureStoreView(base, 0, 4, "round_robin")
        assert 4 in view.live_ids()
        base.delete(np.asarray([4], dtype=np.int64))
        assert 4 not in view.live_ids()
        assert not view.is_live(4)

    def test_update_refreshes_scan_values(self, base):
        view = FeatureStoreView(base, 0, 2, "round_robin")
        normal = np.asarray([1.0, 1.0, 1.0])
        view.scan_values(normal)  # warm the row cache
        base.update(np.asarray([0], dtype=np.int64), np.asarray([[5.0, 5.0, 5.0]]))
        ids, values = view.scan_values(normal)
        assert values[ids == 0][0] == pytest.approx(15.0)

    def test_memory_bytes_reflects_caches(self, base):
        view = FeatureStoreView(base, 0, 2, "round_robin")
        assert view.memory_bytes() == 0
        view.get_all()
        assert view.memory_bytes() > 0

    def test_live_ids_survive_churn(self, base):
        """View churn mirror of the store's ids==positions pin: after
        interleaved base deletes and appends, each view's live ids are
        exactly the owned, live subset, and scans stay exact."""
        rng = np.random.default_rng(3)
        views = [FeatureStoreView(base, shard, 3, "round_robin") for shard in range(3)]
        for _ in range(10):
            live = base.live_ids()
            victims = rng.choice(live, size=2, replace=False)
            base.delete(np.sort(victims).astype(np.int64))
            base.append(rng.uniform(1.0, 10.0, size=(3, 3)))
            merged = np.sort(np.concatenate([view.live_ids() for view in views]))
            assert np.array_equal(merged, base.live_ids())
            normal = np.asarray([1.0, 2.0, 3.0])
            for view in views:
                ids, values = view.scan_values(normal)
                assert np.array_equal(ids, view.live_ids())
                assert np.allclose(values, base.get(ids) @ normal)
                ids_many, values_many = view.scan_values_many(
                    np.vstack([normal, normal[::-1]])
                )
                assert np.array_equal(ids_many, ids)
                assert np.allclose(values_many[:, 0], values)
