"""Property tests: sharded and monolithic execution are interchangeable.

Hypothesis drives dataset size, dimensionality, shard count, policy, and
query geometry; every example asserts *bit-identical* ids and distances
between :class:`~repro.parallel.engine.ShardedFunctionIndex` and
:class:`~repro.core.function_index.FunctionIndex` for inequality, range,
and top-k queries.  Integer-valued float64 inputs make every scalar
product exact, so "identical" really means identical — including
tie-breaks by id.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FunctionIndex, QueryModel, ShardedFunctionIndex


@st.composite
def sharded_cases(draw):
    dim = draw(st.integers(min_value=2, max_value=4))
    n = draw(st.integers(min_value=1, max_value=150))
    n_shards = draw(st.integers(min_value=1, max_value=6))
    policy = draw(st.sampled_from(["round_robin", "hash"]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n_indices = draw(st.integers(min_value=1, max_value=4))
    offset_scale = draw(st.floats(min_value=0.0, max_value=1.5))
    k = draw(st.integers(min_value=1, max_value=12))
    return dim, n, n_shards, policy, seed, n_indices, offset_scale, k


def _build(case):
    dim, n, n_shards, policy, seed, n_indices, offset_scale, k = case
    rng = np.random.default_rng(seed)
    # Integer-valued points and query parameters: scalar products are
    # exact in float64, ties happen often, and both paths must break them
    # the same way.
    points = rng.integers(1, 30, size=(n, dim)).astype(np.float64)
    model = QueryModel.uniform(dim=dim, low=1.0, high=5.0, rq=4)
    mono = FunctionIndex(points, model, n_indices=n_indices, rng=seed)
    sharded = ShardedFunctionIndex(
        points,
        model,
        n_indices=n_indices,
        rng=seed,
        n_shards=n_shards,
        policy=policy,
    )
    normal = np.asarray(rng.integers(1, 6, size=dim), dtype=np.float64)
    offset = float(np.round(offset_scale * normal @ points.max(axis=0)))
    return mono, sharded, normal, offset, k


class TestShardedEqualsMonolithic:
    @settings(max_examples=60, deadline=None)
    @given(case=sharded_cases())
    def test_inequality_bit_identical(self, case):
        mono, sharded, normal, offset, _ = _build(case)
        with sharded:
            expected = mono.query(normal, offset)
            got = sharded.query(normal, offset)
            assert np.array_equal(expected.ids, got.ids)

    @settings(max_examples=40, deadline=None)
    @given(case=sharded_cases())
    def test_range_bit_identical(self, case):
        mono, sharded, normal, offset, _ = _build(case)
        low = np.floor(0.5 * offset)
        with sharded:
            expected = mono.query_range(normal, low, offset)
            got = sharded.query_range(normal, low, offset)
            assert np.array_equal(expected.ids, got.ids)

    @settings(max_examples=60, deadline=None)
    @given(case=sharded_cases())
    def test_topk_bit_identical(self, case):
        mono, sharded, normal, offset, k = _build(case)
        with sharded:
            expected = mono.topk(normal, offset, k)
            got = sharded.topk(normal, offset, k)
            assert np.array_equal(expected.ids, got.ids)
            # Exact integer arithmetic: distances must match to the bit.
            assert np.array_equal(expected.distances, got.distances)
