"""Process-shard backend: bit-identity, reliability semantics, lifecycle.

The backend changes *scheduling only* — every test here pins that claim:
answers (ids, distances, stats) must be bit-identical to the thread
backend and the monolithic facade, fault/deadline/degrade handling must
carry over unchanged, and stitched traces must survive the pickle
round-trip from forked workers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FunctionIndex, QueryModel, ShardedFunctionIndex
from repro.exceptions import ShardFailureError
from repro.parallel.process import fork_available
from repro.reliability import faults as _flt

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process backend requires the fork start method"
)


def _dataset(n=600, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    # Integer-valued points keep scalar products exact in float64, so
    # "identical" includes boundary membership and tie-breaks.
    points = rng.integers(1, 30, size=(n, dim)).astype(np.float64)
    model = QueryModel.uniform(dim=dim, low=1.0, high=5.0, rq=4)
    return points, model


def _queries(points, m=6, seed=1, scale=0.4):
    rng = np.random.default_rng(seed)
    normals = rng.integers(1, 6, size=(m, points.shape[1])).astype(np.float64)
    column_max = points.max(axis=0)
    offsets = np.asarray(
        [float(np.round(scale * normal @ column_max)) for normal in normals]
    )
    return normals, offsets


@pytest.fixture
def pristine_faults():
    """Disarm any ambient plan (the chaos CI lane arms ``REPRO_FAULTS``
    process-wide), restoring it afterwards — for tests whose *clean*
    queries must actually be clean."""
    previous_plan = _flt.active_plan()
    previously_armed = _flt.is_armed()
    _flt.disarm()
    yield
    if previously_armed and previous_plan is not None:
        _flt.arm(previous_plan)
    else:
        _flt.disarm()


@pytest.fixture
def engines(n_shards):
    points, model = _dataset()
    thread = ShardedFunctionIndex(
        points, model, n_indices=4, rng=7, n_shards=n_shards, backend="thread"
    )
    process = ShardedFunctionIndex(
        points, model, n_indices=4, rng=7, n_shards=n_shards, backend="process"
    )
    yield points, thread, process
    thread.close()
    process.close()


class TestBitIdentity:
    def test_inequality_matches_thread_backend(self, engines):
        points, thread, process = engines
        normals, offsets = _queries(points)
        for normal, offset in zip(normals, offsets):
            a = thread.query(normal, offset)
            b = process.query(normal, offset)
            assert np.array_equal(a.ids, b.ids)
            assert a.stats == b.stats

    def test_batch_matches_thread_backend(self, engines):
        points, thread, process = engines
        normals, offsets = _queries(points)
        for a, b in zip(
            thread.query_batch(normals, offsets), process.query_batch(normals, offsets)
        ):
            assert np.array_equal(a.ids, b.ids)
            assert a.stats == b.stats

    def test_range_matches_thread_backend(self, engines):
        points, thread, process = engines
        normals, offsets = _queries(points)
        for normal, offset in zip(normals, offsets):
            a = thread.query_range(normal, offset * 0.5, offset)
            b = process.query_range(normal, offset * 0.5, offset)
            assert np.array_equal(a.ids, b.ids)

    def test_topk_matches_thread_backend(self, engines):
        points, thread, process = engines
        normals, offsets = _queries(points)
        for normal, offset in zip(normals, offsets):
            a = thread.topk(normal, offset, 12)
            b = process.topk(normal, offset, 12)
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.distances, b.distances)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        m=st.integers(min_value=1, max_value=6),
        scale=st.floats(min_value=0.0, max_value=1.2),
    )
    def test_batched_answers_property(self, seed, m, scale):
        """Hypothesis: monolithic, thread-sharded, and process-sharded
        batch answers agree bit for bit over random workloads."""
        points, model = _dataset(n=250, seed=seed)
        normals, offsets = _queries(points, m=m, seed=seed + 1, scale=scale)
        mono = FunctionIndex(points, model, n_indices=3, rng=seed)
        with ShardedFunctionIndex(
            points, model, n_indices=3, rng=seed, n_shards=3, backend="process"
        ) as process:
            batch = process.query_batch(normals, offsets)
            mono_batch = mono.query_batch(normals, offsets)
        for a, b in zip(mono_batch, batch):
            assert np.array_equal(a.ids, b.ids)


class TestBackendSelection:
    def test_env_default(self, monkeypatch):
        points, model = _dataset(n=60)
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "process")
        with ShardedFunctionIndex(points, model, n_indices=2, rng=0) as engine:
            assert engine.backend == "process"
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "")
        with ShardedFunctionIndex(points, model, n_indices=2, rng=0) as engine:
            assert engine.backend == "thread"

    def test_explicit_beats_env(self, monkeypatch):
        points, model = _dataset(n=60)
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "process")
        with ShardedFunctionIndex(
            points, model, n_indices=2, rng=0, backend="thread"
        ) as engine:
            assert engine.backend == "thread"

    def test_unknown_backend_rejected(self):
        points, model = _dataset(n=60)
        with pytest.raises(ValueError, match="unknown shard backend"):
            ShardedFunctionIndex(points, model, n_indices=2, rng=0, backend="gpu")

    def test_single_shard_runs_inline(self):
        """n_shards=1 keeps the monolithic inline path — no pool forks."""
        points, model = _dataset(n=120)
        normals, offsets = _queries(points, m=2)
        with ShardedFunctionIndex(
            points, model, n_indices=2, rng=0, n_shards=1, backend="process"
        ) as engine:
            engine.query(normals[0], offsets[0])
            assert engine._process_pool is None


class TestReliability:
    def test_injected_fault_degrades(self, n_shards):
        points, model = _dataset()
        normals, offsets = _queries(points, m=1)
        with _flt.injected("shard.query:error:every=2"):
            with ShardedFunctionIndex(
                points,
                model,
                n_indices=3,
                rng=7,
                n_shards=n_shards,
                backend="process",
                failure_policy="retry_then_degrade",
                retry_backoff_s=0.0,
            ) as engine:
                clean = FunctionIndex(points, model, n_indices=3, rng=7)
                answer = engine.query(normals[0], offsets[0])
                # Retries / recovery scans keep the answer exact.
                assert np.array_equal(
                    answer.ids, clean.query(normals[0], offsets[0]).ids
                )

    def test_raise_policy_carries_shard_identity(self, n_shards):
        points, model = _dataset()
        normals, offsets = _queries(points, m=1)
        with _flt.injected("shard.query:error"):
            with ShardedFunctionIndex(
                points,
                model,
                n_indices=3,
                rng=7,
                n_shards=n_shards,
                backend="process",
                failure_policy="raise",
            ) as engine:
                with pytest.raises(ShardFailureError) as excinfo:
                    engine.query(normals[0], offsets[0])
                assert excinfo.value.shard is not None
                assert excinfo.value.kind == "inequality"

    def test_stalled_worker_misses_deadline(self, n_shards):
        points, model = _dataset()
        normals, offsets = _queries(points, m=1)
        with _flt.injected("shard.query:stall:ms=400"):
            with ShardedFunctionIndex(
                points,
                model,
                n_indices=3,
                rng=7,
                n_shards=n_shards,
                backend="process",
                failure_policy="degrade",
                query_timeout_s=0.1,
            ) as engine:
                clean = FunctionIndex(points, model, n_indices=3, rng=7)
                answer = engine.query(normals[0], offsets[0])
                # Every shard misses the deadline; the recovery scans
                # (parent-side, unstalled) keep the answer complete.
                assert answer.degraded is not None
                assert answer.degraded.completeness == 1.0
                assert np.array_equal(
                    answer.ids, clean.query(normals[0], offsets[0]).ids
                )


class TestReArmAfterFork:
    def test_faults_armed_after_fork_reach_workers(self, pristine_faults, n_shards):
        """Workers inherit the plan armed at fork time; arming *after* the
        pool forked must refork it (fault-plan generation check), so a
        mid-session ``injected()`` block behaves as with threads."""
        points, model = _dataset()
        normals, offsets = _queries(points, m=1)
        with ShardedFunctionIndex(
            points,
            model,
            n_indices=3,
            rng=7,
            n_shards=n_shards,
            backend="process",
            failure_policy="raise",
        ) as engine:
            engine.query(normals[0], offsets[0])  # forks a clean pool
            with _flt.injected("shard.query:error"):
                with pytest.raises(ShardFailureError):
                    engine.query(normals[0], offsets[0])
            # ...and disarming must refork again: queries are clean now.
            answer = engine.query(normals[0], offsets[0])
            assert answer.degraded is None


class TestMutationInvalidation:
    def test_all_mutations_refresh_worker_snapshots(self, n_shards):
        points, model = _dataset()
        normals, offsets = _queries(points, m=2)
        rng = np.random.default_rng(9)
        thread = ShardedFunctionIndex(
            points, model, n_indices=3, rng=7, n_shards=n_shards, backend="thread"
        )
        process = ShardedFunctionIndex(
            points, model, n_indices=3, rng=7, n_shards=n_shards, backend="process"
        )
        try:

            def check():
                for a, b in zip(
                    thread.query_batch(normals, offsets),
                    process.query_batch(normals, offsets),
                ):
                    assert np.array_equal(a.ids, b.ids)

            check()  # fork the pool so stale snapshots are possible
            fresh = rng.integers(1, 30, size=(40, points.shape[1])).astype(np.float64)
            ids_t = thread.insert_points(fresh)
            ids_p = process.insert_points(fresh)
            assert np.array_equal(ids_t, ids_p)
            check()
            moved = rng.integers(1, 30, size=(10, points.shape[1])).astype(np.float64)
            thread.update_points(ids_t[:10], moved)
            process.update_points(ids_p[:10], moved)
            check()
            thread.delete_points(ids_t[10:20])
            process.delete_points(ids_p[10:20])
            check()
            extra = rng.integers(1, 6, size=points.shape[1]).astype(np.float64)
            assert thread.add_index(extra) == process.add_index(extra)
            check()
            thread.drop_index(0)
            process.drop_index(0)
            check()
        finally:
            thread.close()
            process.close()


class TestTraceStitching:
    def test_worker_spans_graft_under_query_root(self, obs_enabled, n_shards):
        from repro.obs import spans as _osp

        points, model = _dataset()
        normals, offsets = _queries(points, m=3)
        with ShardedFunctionIndex(
            points, model, n_indices=3, rng=7, n_shards=n_shards, backend="process"
        ) as engine:
            engine.query_batch(normals, offsets)
        root = _osp.recent_traces()[-1]
        assert root.name == "query.batch"
        shard_spans = [c for c in root.children if c.name == "shard.batch"]
        assert len(shard_spans) == n_shards
        seen = set()
        for span in shard_spans:
            assert span.attrs["backend"] == "process"
            assert span.attrs["trace_id"] == root.attrs["trace_id"]
            # Per-shard cost counters annotated parent-side from results.
            assert "verified" in span.attrs and "results" in span.attrs
            # Worker-side collection spans survived the pickle round-trip.
            assert "collection.query_batch" in [c.name for c in span.children]
            seen.add(span.attrs["shard"])
        assert seen == set(range(n_shards))


class TestLifecycle:
    def test_close_is_idempotent(self, n_shards):
        points, model = _dataset(n=120)
        normals, offsets = _queries(points, m=1)
        engine = ShardedFunctionIndex(
            points, model, n_indices=2, rng=0, n_shards=n_shards, backend="process"
        )
        engine.query(normals[0], offsets[0])
        assert engine._process_pool is not None or n_shards == 1
        engine.close()
        assert engine._process_pool is None
        engine.close()  # no-op

    def test_context_manager_closes_pool(self, n_shards):
        points, model = _dataset(n=120)
        normals, offsets = _queries(points, m=1)
        with ShardedFunctionIndex(
            points, model, n_indices=2, rng=0, n_shards=n_shards, backend="process"
        ) as engine:
            engine.query(normals[0], offsets[0])
        assert engine._process_pool is None
