"""Unit tests for the shard-membership policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import SHARD_POLICIES, assign_shards, shard_ids


class TestAssignShards:
    def test_round_robin_is_modulo(self):
        ids = np.arange(100, dtype=np.int64)
        assert np.array_equal(assign_shards(ids, 4, "round_robin"), ids % 4)

    @pytest.mark.parametrize("policy", SHARD_POLICIES)
    def test_deterministic_and_in_range(self, policy):
        ids = np.arange(0, 10_000, 7, dtype=np.int64)
        first = assign_shards(ids, 5, policy)
        second = assign_shards(ids, 5, policy)
        assert np.array_equal(first, second)
        assert first.dtype == np.int64
        assert first.min() >= 0 and first.max() < 5

    def test_hash_is_reasonably_balanced(self):
        ids = np.arange(20_000, dtype=np.int64)
        counts = np.bincount(assign_shards(ids, 4, "hash"), minlength=4)
        # Every shard within 10% of the ideal quarter.
        assert counts.min() > 0.9 * ids.size / 4
        assert counts.max() < 1.1 * ids.size / 4

    def test_hash_ignores_id_structure(self):
        # Round-robin sends an arithmetic progression with stride == S to
        # one shard; the hash policy must still spread it.
        ids = np.arange(0, 40_000, 4, dtype=np.int64)
        assert np.unique(assign_shards(ids, 4, "round_robin")).size == 1
        assert np.unique(assign_shards(ids, 4, "hash")).size == 4

    def test_single_shard_owns_everything(self):
        ids = np.arange(50, dtype=np.int64)
        for policy in SHARD_POLICIES:
            assert np.array_equal(
                assign_shards(ids, 1, policy), np.zeros(50, dtype=np.int64)
            )

    def test_rejects_bad_inputs(self):
        ids = np.arange(10, dtype=np.int64)
        with pytest.raises(ValueError):
            assign_shards(ids, 0)
        with pytest.raises(ValueError):
            assign_shards(np.asarray([-1]), 2)
        with pytest.raises(ValueError):
            assign_shards(ids, 2, "unknown")


class TestShardIds:
    @pytest.mark.parametrize("policy", SHARD_POLICIES)
    def test_partition_is_disjoint_and_complete(self, policy):
        ids = np.arange(0, 999, 3, dtype=np.int64)
        parts = [shard_ids(ids, shard, 4, policy) for shard in range(4)]
        merged = np.sort(np.concatenate(parts))
        assert np.array_equal(merged, np.sort(ids))
        assert sum(part.size for part in parts) == ids.size

    def test_order_preserved(self):
        ids = np.asarray([8, 0, 4, 12, 2], dtype=np.int64)
        assert np.array_equal(
            shard_ids(ids, 0, 4, "round_robin"), np.asarray([8, 0, 4, 12])
        )
