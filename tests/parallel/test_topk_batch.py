"""Sharded ``topk_batch`` identity: batch ≡ loop ≡ monolithic ≡ process.

The serving layer leans on ``ShardedFunctionIndex.topk_batch`` for every
coalesced /topk window, so its bit-identity guarantees are pinned here
at the engine level: the sharded batch call must return exactly the ids,
distances, and tie-breaks of (a) a loop of sharded single ``topk`` calls,
(b) the monolithic ``FunctionIndex.topk_batch``, and (c) the same batch
on a process-backed engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FunctionIndex, QueryModel
from repro.exceptions import InvalidQueryError
from repro.parallel.engine import ShardedFunctionIndex
from repro.parallel.process import fork_available


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(42)
    points = rng.integers(1, 30, size=(600, 4)).astype(np.float64)
    model = QueryModel.uniform(dim=4, low=1.0, high=5.0, rq=4)
    normals = rng.integers(1, 6, size=(9, 4)).astype(np.float64)
    column_max = points.max(axis=0)
    offsets = np.asarray(
        [float(np.round(0.4 * normal @ column_max)) for normal in normals]
    )
    return points, model, normals, offsets


@pytest.fixture(scope="module")
def sharded(dataset, n_shards):
    points, model, _, _ = dataset
    engine = ShardedFunctionIndex(
        points, model, n_indices=8, rng=42, n_shards=n_shards
    )
    yield engine
    engine.close()


@pytest.mark.parametrize("op", ["<=", "<", ">=", ">"])
@pytest.mark.parametrize("k", [1, 5, 12])
def test_batch_equals_loop_of_singles(dataset, sharded, k, op):
    _, _, normals, offsets = dataset
    batch = sharded.topk_batch(normals, offsets, k, op)
    assert len(batch) == normals.shape[0]
    for row, answer in enumerate(batch):
        single = sharded.topk(normals[row], float(offsets[row]), k=k, op=op)
        assert np.array_equal(answer.ids, single.ids)
        assert np.array_equal(answer.distances, single.distances)


def test_batch_equals_monolithic(dataset, sharded):
    points, model, normals, offsets = dataset
    mono = FunctionIndex(points, model, n_indices=8, rng=42)
    sharded_batch = sharded.topk_batch(normals, offsets, 7)
    mono_batch = mono.topk_batch(normals, offsets, 7)
    for ours, theirs in zip(sharded_batch, mono_batch):
        assert np.array_equal(ours.ids, theirs.ids)
        assert np.array_equal(ours.distances, theirs.distances)


@pytest.mark.skipif(
    not fork_available(), reason="process backend requires the fork start method"
)
def test_batch_identical_across_backends(dataset, n_shards):
    points, model, normals, offsets = dataset
    thread_engine = ShardedFunctionIndex(
        points, model, n_indices=8, rng=42, n_shards=n_shards, backend="thread"
    )
    process_engine = ShardedFunctionIndex(
        points, model, n_indices=8, rng=42, n_shards=n_shards, backend="process"
    )
    try:
        threaded = thread_engine.topk_batch(normals, offsets, 5)
        processed = process_engine.topk_batch(normals, offsets, 5)
        for ours, theirs in zip(threaded, processed):
            assert np.array_equal(ours.ids, theirs.ids)
            assert np.array_equal(ours.distances, theirs.distances)
    finally:
        thread_engine.close()
        process_engine.close()


def test_validation_and_degenerate_batch(dataset, sharded):
    _, _, normals, offsets = dataset
    with pytest.raises(InvalidQueryError, match="k must be positive"):
        sharded.topk_batch(normals, offsets, 0)
    assert sharded.topk_batch(normals[:0], offsets[:0], 3) == []
