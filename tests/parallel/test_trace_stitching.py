"""Property tests: cross-thread trace stitching of the sharded engine.

ISSUE 7 acceptance: a sharded facade query must produce exactly ONE
stitched trace tree — shard spans emitted on executor threads adopt the
facade's root instead of becoming orphan per-thread roots — and the
tree must reconcile: every ``shard.*`` span carries the parent trace id,
and the per-shard cost counters annotated on the shard spans (including
``shard.recover`` scans) sum to the merged answer's stats.  The
reconciliation must hold under injected shard *error* faults too, where
retries and recovery scans contribute extra child spans.

Error faults only: stall/timeout faults abandon workers that still
finish and record their spans, so their counters legitimately
double-count against the merged answer.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QueryModel, ShardedFunctionIndex
from repro.obs import clear_traces, recent_traces
from repro.obs import runtime as obs_runtime
from repro.obs import trace as obs_trace
from repro.reliability import faults as _flt


@st.composite
def stitching_cases(draw):
    dim = draw(st.integers(min_value=2, max_value=4))
    n = draw(st.integers(min_value=8, max_value=120))
    n_shards = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    offset_scale = draw(st.floats(min_value=0.1, max_value=1.2))
    fault_shard = draw(st.integers(min_value=0, max_value=4))
    fault_times = draw(st.sampled_from([None, 1, 3]))
    return dim, n, n_shards, seed, offset_scale, fault_shard, fault_times


def _build(case):
    dim, n, n_shards, seed, offset_scale, fault_shard, fault_times = case
    rng = np.random.default_rng(seed)
    points = rng.integers(1, 30, size=(n, dim)).astype(np.float64)
    model = QueryModel.uniform(dim=dim, low=1.0, high=5.0, rq=4)
    engine = ShardedFunctionIndex(
        points,
        model,
        n_indices=2,
        rng=seed,
        n_shards=n_shards,
        failure_policy="retry_then_degrade",
    )
    normal = np.asarray(rng.integers(1, 6, size=dim), dtype=np.float64)
    offset = float(np.round(offset_scale * normal @ points.max(axis=0)))
    spec = None
    if fault_times is not None:
        spec = f"shard.query:error:shard={fault_shard % n_shards}"
        if fault_times:
            spec += f":times={fault_times}"
    return engine, normal, offset, spec


def _shard_spans(root, kind):
    """All costed / errored shard-level spans of a stitched tree."""
    names = {f"shard.{kind}", "shard.recover"}
    return [span for span in root.walk() if span.name in names]


def _assert_stitched(root, kind, stats, n_results):
    """One tree, ids propagated, counters reconciled against ``stats``."""
    trace_id = root.attrs["trace_id"]
    spans = _shard_spans(root, kind)
    assert spans, "stitched tree has no shard spans"
    costed = [span for span in spans if "verified" in span.attrs]
    for span in spans:
        if span.name != "shard.recover":
            assert span.attrs["trace_id"] == trace_id
        # Errored attempts carry the failure kind instead of counters.
        assert "verified" in span.attrs or "error" in span.attrs
    assert sum(span.attrs["verified"] for span in costed) == stats.n_verified
    assert sum(span.attrs["ii"] for span in costed) == stats.ii_size
    assert sum(span.attrs["results"] for span in costed) == n_results


class TestStitchedTraces:
    """Each facade kind yields one reconciled tree per query."""

    def setup_method(self):
        self._was_enabled = obs_runtime.ENABLED
        obs_runtime.enable()
        self._rate = obs_trace.set_sample_rate(1.0)

    def teardown_method(self):
        obs_trace.set_sample_rate(self._rate)
        clear_traces()
        if not self._was_enabled:
            obs_runtime.disable()

    @settings(max_examples=40, deadline=None)
    @given(case=stitching_cases())
    def test_query_single_root_and_cost_reconciliation(self, case):
        engine, normal, offset, spec = _build(case)
        with engine:
            clear_traces()
            if spec is None:
                answer = engine.query(normal, offset)
            else:
                with _flt.injected(spec):
                    answer = engine.query(normal, offset)
            roots = recent_traces()
            assert len(roots) == 1, "shard spans must stitch, not orphan"
            root = roots[0]
            assert root.name == "query.inequality"
            if answer.degraded is not None and answer.degraded.failed_shards:
                # Unrecovered shards are absent from both the merged stats
                # and the costed spans — reconciliation still holds below.
                assert answer.degraded.completeness < 1.0
            _assert_stitched(root, "inequality", answer.stats, len(answer))

    @settings(max_examples=25, deadline=None)
    @given(case=stitching_cases())
    def test_batch_is_one_trace(self, case):
        engine, normal, offset, spec = _build(case)
        rng = np.random.default_rng(7)
        normals = np.stack([normal, np.asarray(rng.integers(1, 6, size=normal.size), dtype=np.float64)])
        offsets = np.array([offset, offset])
        with engine:
            clear_traces()
            if spec is None:
                answers = engine.query_batch(normals, offsets)
            else:
                with _flt.injected(spec):
                    answers = engine.query_batch(normals, offsets)
            roots = recent_traces()
            assert len(roots) == 1, "a batch is one trace, not one per query"
            root = roots[0]
            assert root.name == "query.batch"
            trace_id = root.attrs["trace_id"]
            spans = _shard_spans(root, "batch")
            assert spans
            for span in spans:
                if span.name != "shard.recover":
                    assert span.attrs["trace_id"] == trace_id
            costed = [span for span in spans if "verified" in span.attrs]
            parts = [answer.stats for answer in answers if answer.stats is not None]
            assert sum(span.attrs["verified"] for span in costed) == sum(
                part.n_verified for part in parts
            )
            assert sum(span.attrs["results"] for span in costed) == sum(
                len(answer) for answer in answers
            )

    @settings(max_examples=25, deadline=None)
    @given(case=stitching_cases())
    def test_topk_reconciles_lbs_counters(self, case):
        engine, normal, offset, spec = _build(case)
        with engine:
            clear_traces()
            if spec is None:
                result = engine.topk(normal, offset, k=5)
            else:
                with _flt.injected(spec):
                    result = engine.topk(normal, offset, k=5)
            roots = recent_traces()
            assert len(roots) == 1
            root = roots[0]
            assert root.name == "query.topk"
            spans = _shard_spans(root, "topk")
            costed = [span for span in spans if "lbs_checked" in span.attrs]
            assert costed
            for span in spans:
                if span.name != "shard.recover":
                    assert span.attrs["trace_id"] == root.attrs["trace_id"]
            assert sum(span.attrs["lbs_checked"] for span in costed) == result.n_checked
