"""Shared fixtures for the sharded-engine tests.

The shard count honours ``REPRO_SHARDS`` so the CI matrix can re-run the
whole suite at a different fan-out (e.g. ``REPRO_SHARDS=4``) without a
separate parametrization.
"""

from __future__ import annotations

import os

import pytest


def _env_shards(default: int = 3) -> int:
    try:
        return max(1, int(os.environ.get("REPRO_SHARDS", str(default))))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def n_shards() -> int:
    """Shard count under test (``REPRO_SHARDS`` env override, default 3)."""
    return _env_shards()


@pytest.fixture
def obs_enabled():
    """Arm observability (full sampling) for one test, restoring after."""
    from repro.obs import clear_traces
    from repro.obs import runtime as obs_runtime
    from repro.obs import trace as obs_trace

    was_enabled = obs_runtime.ENABLED
    obs_runtime.enable()
    rate = obs_trace.set_sample_rate(1.0)
    clear_traces()
    yield
    clear_traces()
    obs_trace.set_sample_rate(rate)
    if not was_enabled:
        obs_runtime.disable()
