"""Integration tests: the sharded engine against the monolithic facade.

The acceptance bar is *bit-identical* results: same ids, same distances,
same tie-breaks as :class:`repro.core.function_index.FunctionIndex` for
inequality, range, and top-k queries, through maintenance and index
lifecycle mutations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FunctionIndex,
    InvalidQueryError,
    QueryModel,
    ShardedFunctionIndex,
)
from repro.obs import metrics as obs_metrics
from repro.parallel import SHARD_POLICIES


def _pair(points, model, n_shards, policy="round_robin", **kwargs):
    mono = FunctionIndex(points, model, n_indices=6, rng=0, **kwargs)
    sharded = ShardedFunctionIndex(
        points, model, n_indices=6, rng=0, n_shards=n_shards, policy=policy, **kwargs
    )
    return mono, sharded


def _sample_queries(model, count, seed=42):
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(count):
        normal = model.sample_normal(rng)
        offset = float(rng.uniform(50.0, 900.0))
        queries.append((normal, offset))
    return queries


@pytest.mark.parametrize("policy", SHARD_POLICIES)
class TestBitIdenticalResults:
    def test_inequality(self, uniform_points, uniform_model, n_shards, policy):
        mono, sharded = _pair(uniform_points, uniform_model, n_shards, policy)
        with sharded:
            for normal, offset in _sample_queries(uniform_model, 10):
                expected = mono.query(normal, offset)
                got = sharded.query(normal, offset)
                assert np.array_equal(expected.ids, got.ids)
                assert not got.used_fallback

    def test_range(self, uniform_points, uniform_model, n_shards, policy):
        mono, sharded = _pair(uniform_points, uniform_model, n_shards, policy)
        with sharded:
            for normal, offset in _sample_queries(uniform_model, 10):
                expected = mono.query_range(normal, 0.4 * offset, offset)
                got = sharded.query_range(normal, 0.4 * offset, offset)
                assert np.array_equal(expected.ids, got.ids)

    @pytest.mark.parametrize("k", [1, 7, 50])
    def test_topk(self, uniform_points, uniform_model, n_shards, policy, k):
        mono, sharded = _pair(uniform_points, uniform_model, n_shards, policy)
        with sharded:
            for normal, offset in _sample_queries(uniform_model, 8):
                expected = mono.topk(normal, offset, k)
                got = sharded.topk(normal, offset, k)
                assert np.array_equal(expected.ids, got.ids)
                assert np.array_equal(expected.distances, got.distances)
                assert got.n_total == len(sharded)

    def test_batch(self, uniform_points, uniform_model, n_shards, policy):
        mono, sharded = _pair(uniform_points, uniform_model, n_shards, policy)
        queries = _sample_queries(uniform_model, 12)
        normals = np.vstack([normal for normal, _ in queries])
        offsets = np.asarray([offset for _, offset in queries])
        with sharded:
            expected = mono.query_batch(normals, offsets)
            got = sharded.query_batch(normals, offsets)
            assert len(expected) == len(got)
            for one, other in zip(expected, got):
                assert np.array_equal(one.ids, other.ids)


class TestMergedStats:
    def test_stats_partition_the_data(self, uniform_points, uniform_model, n_shards):
        _, sharded = _pair(uniform_points, uniform_model, n_shards)
        with sharded:
            normal, offset = _sample_queries(uniform_model, 1)[0]
            answer = sharded.query(normal, offset)
            stats = answer.stats
            assert stats.n_total == len(sharded)
            assert stats.si_size + stats.ii_size + stats.li_size == stats.n_total
            assert stats.n_results == len(answer)


class TestOctantFallback:
    def test_fallback_matches_monolithic(
        self, mixed_sign_points, mixed_sign_model, n_shards
    ):
        mono, sharded = _pair(mixed_sign_points, mixed_sign_model, n_shards)
        # Signs incompatible with the (+, -, +) octant in either form.
        bad_normal = np.asarray([1.0, 1.0, 1.0])
        with sharded:
            expected = mono.query(bad_normal, 5.0)
            got = sharded.query(bad_normal, 5.0)
            assert expected.used_fallback and got.used_fallback
            assert np.array_equal(expected.ids, got.ids)
            expected_k = mono.topk(bad_normal, 5.0, 5)
            got_k = sharded.topk(bad_normal, 5.0, 5)
            assert np.array_equal(expected_k.ids, got_k.ids)
            expected_r = mono.query_range(bad_normal, -5.0, 5.0)
            got_r = sharded.query_range(bad_normal, -5.0, 5.0)
            assert np.array_equal(expected_r.ids, got_r.ids)

    def test_fallback_disabled_raises(
        self, mixed_sign_points, mixed_sign_model, n_shards
    ):
        _, sharded = _pair(
            mixed_sign_points, mixed_sign_model, n_shards, scan_fallback=False
        )
        with sharded, pytest.raises(InvalidQueryError):
            sharded.query(np.asarray([1.0, 1.0, 1.0]), 5.0)


class TestMaintenance:
    def test_equality_through_mutations(self, uniform_points, uniform_model, n_shards):
        mono, sharded = _pair(uniform_points, uniform_model, n_shards)
        rng = np.random.default_rng(9)
        with sharded:
            new_points = rng.uniform(1.0, 100.0, size=(64, 4))
            mono_ids = mono.insert_points(new_points)
            shard_ids_ = sharded.insert_points(new_points)
            assert np.array_equal(mono_ids, shard_ids_)

            doomed = np.concatenate([mono_ids[::5], np.asarray([3, 17], dtype=np.int64)])
            mono.delete_points(doomed)
            sharded.delete_points(doomed)

            changed = mono_ids[1::5]
            new_values = rng.uniform(1.0, 100.0, size=(changed.size, 4))
            mono.update_points(changed, new_values)
            sharded.update_points(changed, new_values)

            assert len(mono) == len(sharded)
            assert sum(sharded.shard_sizes()) == len(sharded)
            for normal, offset in _sample_queries(uniform_model, 8):
                assert np.array_equal(
                    mono.query(normal, offset).ids, sharded.query(normal, offset).ids
                )
                expected_k = mono.topk(normal, offset, 9)
                got_k = sharded.topk(normal, offset, 9)
                assert np.array_equal(expected_k.ids, got_k.ids)
                assert np.array_equal(expected_k.distances, got_k.distances)

    def test_index_lifecycle_fans_out(self, uniform_points, uniform_model, n_shards):
        mono, sharded = _pair(uniform_points, uniform_model, n_shards)
        with sharded:
            fresh = np.asarray([3.0, 1.0, 4.0, 1.0])
            assert mono.add_index(fresh) == sharded.add_index(fresh) is True
            # Re-adding the same normal is redundant everywhere.
            assert sharded.add_index(fresh) is False
            assert all(
                len(collection) == sharded.n_indices
                for collection in sharded.collections
            )
            before = sharded.n_indices
            sharded.drop_index(0)
            mono.collection.drop_index(0)
            assert sharded.n_indices == before - 1
            for normal, offset in _sample_queries(uniform_model, 5):
                assert np.array_equal(
                    mono.query(normal, offset).ids, sharded.query(normal, offset).ids
                )


class TestShardLayout:
    def test_more_shards_than_points(self, uniform_model):
        rng = np.random.default_rng(0)
        points = rng.uniform(1.0, 100.0, size=(3, 4))
        mono = FunctionIndex(points, uniform_model, n_indices=3, rng=0)
        with ShardedFunctionIndex(
            points, uniform_model, n_indices=3, rng=0, n_shards=5
        ) as sharded:
            sizes = sharded.shard_sizes()
            assert sum(sizes) == 3 and len(sizes) == 5 and 0 in sizes
            normal = uniform_model.sample_normal(rng)
            assert np.array_equal(
                mono.query(normal, 200.0).ids, sharded.query(normal, 200.0).ids
            )
            expected_k = mono.topk(normal, 200.0, 2)
            got_k = sharded.topk(normal, 200.0, 2)
            assert np.array_equal(expected_k.ids, got_k.ids)

    def test_single_shard_is_monolithic_layout(self, uniform_points, uniform_model):
        with ShardedFunctionIndex(
            uniform_points, uniform_model, n_indices=4, rng=0, n_shards=1
        ) as sharded:
            assert sharded.shard_sizes() == [len(uniform_points)]
            # One shard means no view indirection and no thread pool.
            assert sharded._stores[0] is sharded._features
            assert sharded._executor is None
            normal = uniform_model.sample_normal(0)
            sharded.query(normal, 300.0)
            assert sharded._executor is None

    def test_rejects_bad_configuration(self, uniform_points, uniform_model):
        with pytest.raises(ValueError):
            ShardedFunctionIndex(uniform_points, uniform_model, n_shards=0)
        with pytest.raises(ValueError):
            ShardedFunctionIndex(uniform_points, uniform_model, policy="nope")

    def test_close_is_idempotent(self, uniform_points, uniform_model, n_shards):
        sharded = ShardedFunctionIndex(
            uniform_points, uniform_model, n_indices=4, rng=0, n_shards=n_shards
        )
        normal = uniform_model.sample_normal(0)
        sharded.query(normal, 300.0)
        sharded.close()
        sharded.close()


class TestBatchShortCircuits:
    """Regression: degenerate batches must not open traces or fan out."""

    def test_empty_batch_emits_no_trace_or_metrics(
        self, uniform_points, uniform_model, n_shards, obs_enabled
    ):
        from repro.obs import spans as obs_spans

        with ShardedFunctionIndex(
            uniform_points, uniform_model, n_indices=4, rng=0, n_shards=n_shards
        ) as sharded:
            dim = uniform_points.shape[1]
            before_traces = len(obs_spans.recent_traces())
            before_total = obs_metrics.traces_total().value(kind="batch", sampled="1")
            before_shards = {
                shard: obs_metrics.shard_queries_total().value(
                    kind="batch", shard=str(shard)
                )
                for shard in range(n_shards)
            }
            assert sharded.query_batch(np.empty((0, dim)), np.empty(0)) == []
            assert len(obs_spans.recent_traces()) == before_traces
            assert (
                obs_metrics.traces_total().value(kind="batch", sampled="1")
                == before_total
            )
            for shard in range(n_shards):
                assert (
                    obs_metrics.shard_queries_total().value(
                        kind="batch", shard=str(shard)
                    )
                    == before_shards[shard]
                )

    def test_mismatched_batch_raises_before_trace(
        self, uniform_points, uniform_model, n_shards, obs_enabled
    ):
        from repro.obs import spans as obs_spans

        with ShardedFunctionIndex(
            uniform_points, uniform_model, n_indices=4, rng=0, n_shards=n_shards
        ) as sharded:
            dim = uniform_points.shape[1]
            before_traces = len(obs_spans.recent_traces())
            with pytest.raises(ValueError):
                sharded.query_batch(np.ones((2, dim)), np.ones(3))
            # Validation failed before the trace opened: no aborted trace.
            assert len(obs_spans.recent_traces()) == before_traces

    def test_all_fallback_batch_skips_shard_fanout(
        self, mixed_sign_points, mixed_sign_model, n_shards, obs_enabled
    ):
        """A batch where every query needs the octant fallback answers by
        whole-store scans — no per-shard fan-out, no shard spans."""
        from repro.obs import spans as obs_spans

        with ShardedFunctionIndex(
            mixed_sign_points, mixed_sign_model, n_indices=4, rng=0, n_shards=n_shards
        ) as sharded:
            # Signs incompatible with the model octant in either form.
            normals = np.ones((3, mixed_sign_points.shape[1]))
            offsets = np.array([5.0, 10.0, 15.0])
            before = {
                shard: obs_metrics.shard_queries_total().value(
                    kind="batch", shard=str(shard)
                )
                for shard in range(n_shards)
            }
            answers = sharded.query_batch(normals, offsets)
            assert all(answer.used_fallback for answer in answers)
            for shard in range(n_shards):
                assert (
                    obs_metrics.shard_queries_total().value(
                        kind="batch", shard=str(shard)
                    )
                    == before[shard]
                )
            root = obs_spans.recent_traces()[-1]
            assert root.name == "query.batch"
            assert not [c for c in root.children if c.name.startswith("shard.")]


class TestShardObservability:
    def test_per_shard_series(
        self, uniform_points, uniform_model, n_shards, obs_enabled
    ):
        with ShardedFunctionIndex(
            uniform_points, uniform_model, n_indices=4, rng=0, n_shards=n_shards
        ) as sharded:
            normal = uniform_model.sample_normal(0)
            sharded.query(normal, 300.0)
            sharded.topk(normal, 300.0, 3)
            counter = obs_metrics.shard_queries_total()
            gauge = obs_metrics.shard_points()
            for shard in range(n_shards):
                assert counter.value(kind="inequality", shard=str(shard)) >= 1
                assert counter.value(kind="topk", shard=str(shard)) >= 1
            total = sum(
                gauge.value(shard=str(shard)) for shard in range(n_shards)
            )
            assert total == len(sharded)
