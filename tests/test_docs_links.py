"""Documentation link checker: no dangling relative links or anchors.

Every Markdown document the README's documentation index reaches is
scanned for inline links.  Relative links must point at files that exist
in the repository; fragment links (``doc.md#section`` / ``#section``)
must match a heading anchor generated the way GitHub generates them
(lowercase, punctuation stripped, spaces to hyphens).  External links
(http/https/mailto) are out of scope — checking them would make the
suite network-dependent.

This is the tier-1 gate behind the documentation satellite: a renamed
heading or moved file fails the build instead of silently rotting the
docs.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The documents under the link contract (the README documentation index
#: plus everything it links to, directly or transitively).
DOCUMENTS = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "DESIGN.md", REPO_ROOT / "EXPERIMENTS.md"]
    + list((REPO_ROOT / "docs").glob("*.md"))
)

_LINK = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$")
_EXTERNAL = ("http://", "https://", "mailto:")


def _strip_code_blocks(text: str) -> str:
    """Drop fenced code blocks — links inside them are examples, not refs."""
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            out.append(line)
    return "\n".join(out)


def _github_anchor(heading: str) -> str:
    """GitHub's anchor algorithm: strip markup, lowercase, hyphenate."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    """All heading anchors of a Markdown file (with GitHub dedup suffixes)."""
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    for line in _strip_code_blocks(path.read_text()).splitlines():
        match = _HEADING.match(line)
        if not match:
            continue
        anchor = _github_anchor(match.group(2))
        count = seen.get(anchor, 0)
        seen[anchor] = count + 1
        anchors.add(anchor if count == 0 else f"{anchor}-{count}")
    return anchors


def _links(path: Path) -> list[str]:
    return _LINK.findall(_strip_code_blocks(path.read_text()))


def _check(document: Path) -> list[str]:
    problems = []
    for target in _links(document):
        if target.startswith(_EXTERNAL):
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = (document.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(f"{document.name}: dangling link -> {target}")
                continue
        else:
            resolved = document
        if fragment:
            if resolved.suffix != ".md":
                continue
            if fragment.lower() not in _anchors(resolved):
                problems.append(
                    f"{document.name}: dangling anchor -> {target} "
                    f"(no heading generates #{fragment})"
                )
    return problems


def test_documents_exist():
    """The contract covers the README and every docs/ page."""
    names = {path.name for path in DOCUMENTS}
    assert {"README.md", "DESIGN.md", "EXPERIMENTS.md"} <= names
    assert {
        "architecture.md",
        "algorithms.md",
        "analysis.md",
        "observability.md",
        "parallel.md",
        "persistence.md",
        "tuning.md",
    } <= names


@pytest.mark.parametrize("document", DOCUMENTS, ids=lambda p: p.name)
def test_no_dangling_links(document: Path):
    problems = _check(document)
    assert not problems, "\n".join(problems)


def test_every_subsystem_reachable_from_readme():
    """The README documentation index reaches every docs/ page."""
    readme_targets = {
        (REPO_ROOT / target.partition("#")[0]).resolve()
        for target in _links(REPO_ROOT / "README.md")
        if not target.startswith(_EXTERNAL) and target.partition("#")[0]
    }
    for page in (REPO_ROOT / "docs").glob("*.md"):
        assert page.resolve() in readme_targets, (
            f"docs/{page.name} is not linked from the README documentation index"
        )


def test_checker_catches_planted_rot(tmp_path):
    """Meta-test: the checker itself flags a dangling link and anchor."""
    good = tmp_path / "good.md"
    good.write_text("# Real Heading\n\nSee [self](#real-heading).\n")
    assert _check(good) == []
    bad = tmp_path / "bad.md"
    bad.write_text(
        "[gone](missing.md) and [ghost](good.md#no-such-heading)\n"
    )
    problems = _check(bad)
    assert len(problems) == 2
    assert "dangling link" in problems[0]
    assert "dangling anchor" in problems[1]
