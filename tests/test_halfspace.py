"""Tests for the half-space range searching convenience API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Hyperplane
from repro.halfspace import HalfspaceIndex


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(0).normal(0.0, 3.0, size=(2000, 3))


@pytest.fixture
def index(points):
    return HalfspaceIndex(points, rng=0)


class TestReporting:
    def test_below_above_partition(self, points, index):
        normal = np.array([1.0, -2.0, 0.5])
        below = index.below(normal, 0.3)
        above = index.above(normal, 0.3, strict=True)
        assert below.size + above.size == len(points)
        assert np.all(points[below] @ normal <= 0.3)
        assert np.all(points[above] @ normal > 0.3)

    def test_strict_below(self, points, index):
        normal = np.array([0.5, 0.5, 0.5])
        non_strict = index.below(normal, 1.0)
        strict = index.below(normal, 1.0, strict=True)
        assert strict.size <= non_strict.size

    def test_side_of_hyperplane(self, points, index):
        plane = Hyperplane(np.array([1.0, 1.0, 1.0]), 0.0)
        positive = index.side(plane, positive=True)
        negative = index.side(plane, positive=False)
        assert np.all(points[positive] @ plane.normal >= 0.0)
        assert np.all(points[negative] @ plane.normal <= 0.0)

    def test_random_orientations_exact(self, points, index):
        rng = np.random.default_rng(5)
        for _ in range(10):
            normal = rng.normal(size=3)
            offset = float(rng.uniform(-3, 3))
            ids = index.below(normal, offset)
            truth = np.nonzero(points @ normal <= offset)[0]
            assert np.array_equal(ids, truth)


class TestNearest:
    def test_below_side(self, points, index):
        normal = np.array([1.0, 0.0, 0.0])
        result = index.nearest(normal, 0.0, k=7, side="below")
        values = points @ normal
        sat = np.abs(values[values <= 0.0])
        assert np.allclose(result.distances, np.sort(sat)[:7])

    def test_both_sides_merged(self, points, index):
        normal = np.array([1.0, 1.0, 0.0])
        result = index.nearest(normal, 0.5, k=9, side="both")
        distances = np.abs(points @ normal - 0.5) / np.linalg.norm(normal)
        assert np.allclose(result.distances, np.sort(distances)[:9])

    def test_bad_side(self, index):
        with pytest.raises(ValueError):
            index.nearest(np.ones(3), 0.0, k=3, side="sideways")


class TestDynamics:
    def test_insert_and_delete(self, points):
        index = HalfspaceIndex(points, rng=0)
        normal = np.array([1.0, 1.0, 1.0])
        index.below(normal, 0.0)  # materialize an octant
        new_ids = index.insert(np.array([[100.0, 100.0, 100.0]]))
        assert len(index) == len(points) + 1
        above = index.above(normal, 250.0)
        assert new_ids[0] in set(above.tolist())
        index.delete(new_ids)
        assert len(index) == len(points)
        assert index.above(normal, 250.0).size == 0
