"""Crash-safe writer and checksum-manifest behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InjectedFaultError, PersistenceError
from repro.reliability import (
    array_checksum,
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
    checksum_manifest,
    faults as _flt,
    verify_checksums,
)


class TestChecksums:
    def test_checksum_covers_dtype_shape_and_bytes(self):
        base = np.arange(6, dtype=np.float64)
        assert array_checksum(base) == array_checksum(base.copy())
        assert array_checksum(base) != array_checksum(base.reshape(2, 3))
        assert array_checksum(base) != array_checksum(base.astype(np.float32))
        flipped = base.copy()
        flipped[3] += 1e-12
        assert array_checksum(base) != array_checksum(flipped)

    def test_verify_roundtrip(self):
        arrays = {"a": np.arange(4.0), "b": np.ones((2, 2), dtype=np.int64)}
        manifest = checksum_manifest(arrays)
        verify_checksums(arrays, manifest, artifact="test", path="mem")

    def test_verify_names_missing_array(self):
        arrays = {"a": np.arange(4.0)}
        manifest = checksum_manifest(arrays)
        manifest["ghost"] = manifest["a"]
        with pytest.raises(PersistenceError, match="ghost"):
            verify_checksums(arrays, manifest, artifact="test", path="mem")

    def test_verify_names_corrupted_array(self):
        arrays = {"a": np.arange(4.0)}
        manifest = checksum_manifest(arrays)
        arrays["a"][2] = -1.0
        with pytest.raises(PersistenceError, match="'a'"):
            verify_checksums(arrays, manifest, artifact="test", path="mem")


class TestAtomicWriter:
    def test_replaces_atomically_and_leaves_no_temp(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new", artifact="test")
        assert target.read_text() == "new"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_write_bytes(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"\x00\x01\x02", artifact="test")
        assert target.read_bytes() == b"\x00\x01\x02"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "file.txt"
        atomic_write_text(target, "x", artifact="test")
        assert target.read_text() == "x"

    def test_injected_error_preserves_previous_contents(self, tmp_path):
        target = tmp_path / "state.json"
        target.write_text("intact")
        with _flt.injected("persistence.write:error"):
            with pytest.raises(InjectedFaultError):
                atomic_write_text(target, "never lands", artifact="test")
        assert target.read_text() == "intact"
        assert [p.name for p in tmp_path.iterdir()] == ["state.json"]

    def test_error_filter_by_artifact(self, tmp_path):
        with _flt.injected("persistence.write:error:artifact=index"):
            atomic_write_text(tmp_path / "plan.json", "ok", artifact="plan")
            with pytest.raises(InjectedFaultError):
                atomic_write_text(tmp_path / "idx.npz", "boom", artifact="index")

    def test_torn_write_truncates_committed_file(self, tmp_path):
        target = tmp_path / "torn.bin"
        payload = bytes(range(200))
        with _flt.injected("persistence.write:torn:frac=0.25"):
            atomic_write_bytes(target, payload, artifact="test")
        data = target.read_bytes()
        assert 0 < len(data) < len(payload)
        assert data == payload[: len(data)]

    def test_writer_cleans_up_on_caller_exception(self, tmp_path):
        target = tmp_path / "x.txt"
        with pytest.raises(RuntimeError):
            with atomic_writer(target, artifact="test") as tmp:
                tmp.write_text("partial")
                raise RuntimeError("caller blew up")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []
