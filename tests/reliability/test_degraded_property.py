"""Property test: degraded answers are exact over the surviving shards.

Hypothesis kills an arbitrary non-empty strict subset of shards (primary
fan-out *and* recovery scan, so the shards are genuinely unrecoverable)
under ``policy=degrade`` and asserts the paper-level contract from
``docs/reliability.md``:

* every returned id is a true answer (no false positives, ever);
* the answer is exactly the ground truth restricted to the points owned
  by surviving shards (no false negatives among survivors);
* ``DegradedInfo.completeness`` equals the exact live-point fraction of
  the surviving shards;
* ``failed_shards`` names exactly the killed shards.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QueryModel, ScalarProductQuery, ShardedFunctionIndex
from repro.reliability import faults as _flt


@st.composite
def degraded_cases(draw):
    dim = draw(st.integers(min_value=2, max_value=4))
    n = draw(st.integers(min_value=1, max_value=120))
    n_shards = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n_killed = draw(st.integers(min_value=1, max_value=n_shards - 1))
    killed = tuple(
        sorted(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=n_shards - 1),
                    min_size=n_killed,
                    max_size=n_killed,
                )
            )
        )
    )
    offset_scale = draw(st.floats(min_value=0.0, max_value=1.2))
    return dim, n, n_shards, seed, killed, offset_scale


def _kill_spec(killed: tuple[int, ...]) -> str:
    rules = []
    for shard in killed:
        rules.append(f"shard.query:error:shard={shard}")
        rules.append(f"shard.scan:error:shard={shard}")
    return ";".join(rules)


class TestDegradedExactness:
    @settings(max_examples=40, deadline=None)
    @given(case=degraded_cases())
    def test_completeness_and_ids_are_exact(self, case):
        dim, n, n_shards, seed, killed, offset_scale = case
        rng = np.random.default_rng(seed)
        points = rng.integers(1, 30, size=(n, dim)).astype(np.float64)
        model = QueryModel.uniform(dim=dim, low=1.0, high=5.0, rq=4)
        normal = np.asarray(rng.integers(1, 6, size=dim), dtype=np.float64)
        offset = float(np.round(offset_scale * normal @ points.max(axis=0)))
        spq = ScalarProductQuery(normal, offset)
        truth = np.nonzero(spq.evaluate(points))[0].astype(np.int64)

        with ShardedFunctionIndex(
            points,
            model,
            n_indices=2,
            rng=seed,
            n_shards=n_shards,
            failure_policy="degrade",
        ) as engine:
            surviving_ids = [
                engine._stores[s].live_ids()
                for s in range(n_shards)
                if s not in killed
            ]
            sizes = engine.shard_sizes()
            with _flt.injected(_kill_spec(killed)):
                answer = engine.query(normal, offset)

        info = answer.degraded
        assert info is not None
        assert info.failed_shards == killed
        assert info.recovered_shards == ()

        total = sum(sizes)
        covered = sum(size for s, size in enumerate(sizes) if s not in killed)
        assert info.completeness == covered / total
        assert not info.is_complete

        survivors = (
            np.sort(np.concatenate(surviving_ids))
            if surviving_ids
            else np.empty(0, dtype=np.int64)
        )
        expected = np.sort(truth[np.isin(truth, survivors)])
        assert np.array_equal(answer.ids, expected)
        # No false positives: every returned id satisfies the inequality.
        assert np.isin(answer.ids, truth).all()
