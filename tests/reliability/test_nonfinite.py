"""Non-finite inputs are rejected eagerly, naming the offending positions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FunctionIndex, QueryModel, ScalarProductQuery
from repro.core.feature_store import FeatureStore
from repro.exceptions import DimensionMismatchError, InvalidQueryError

BAD_VALUES = (float("nan"), float("inf"), float("-inf"))


@st.composite
def poisoned_matrix(draw):
    rows = draw(st.integers(min_value=1, max_value=12))
    cols = draw(st.integers(min_value=1, max_value=5))
    row = draw(st.integers(min_value=0, max_value=rows - 1))
    col = draw(st.integers(min_value=0, max_value=cols - 1))
    bad = draw(st.sampled_from(BAD_VALUES))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    points = np.random.default_rng(seed).uniform(1.0, 9.0, size=(rows, cols))
    points[row, col] = bad
    return points, (row, col), bad


class TestQueryValidation:
    @settings(max_examples=30, deadline=None)
    @given(
        position=st.integers(min_value=0, max_value=3),
        bad=st.sampled_from(BAD_VALUES),
    )
    def test_nonfinite_normal_names_position(self, position, bad):
        normal = np.ones(4)
        normal[position] = bad
        with pytest.raises(InvalidQueryError, match=rf"\[{position}\]") as excinfo:
            ScalarProductQuery(normal, 1.0)
        assert "finite" in str(excinfo.value)

    @pytest.mark.parametrize("bad", BAD_VALUES)
    def test_nonfinite_offset_rejected(self, bad):
        with pytest.raises(InvalidQueryError, match="offset must be finite"):
            ScalarProductQuery(np.ones(3), bad)

    def test_many_bad_entries_are_truncated_not_dumped(self):
        normal = np.full(1000, np.nan)
        with pytest.raises(InvalidQueryError) as excinfo:
            ScalarProductQuery(normal, 1.0)
        message = str(excinfo.value)
        assert "more" in message
        assert len(message) < 500


class TestStoreValidation:
    @settings(max_examples=30, deadline=None)
    @given(case=poisoned_matrix())
    def test_construction_rejects_and_names_position(self, case):
        points, (row, col), _ = case
        with pytest.raises(
            DimensionMismatchError, match=rf"\[{row}, {col}\]"
        ):
            FeatureStore(points)

    @settings(max_examples=20, deadline=None)
    @given(case=poisoned_matrix())
    def test_append_rejects_without_mutating(self, case):
        rows, _, _ = case
        store = FeatureStore(np.ones((3, rows.shape[1])))
        before = len(store)
        with pytest.raises(DimensionMismatchError, match="finite"):
            store.append(rows)
        assert len(store) == before

    def test_update_rejects_and_names_position(self):
        store = FeatureStore(np.ones((4, 2)))
        bad = np.array([[1.0, np.inf]])
        with pytest.raises(DimensionMismatchError, match=r"\[0, 1\].*inf"):
            store.update(np.array([2]), bad)
        assert np.array_equal(store.get(np.array([2])), [[1.0, 1.0]])


class TestFacadeValidation:
    def _index(self):
        rng = np.random.default_rng(11)
        points = rng.uniform(1.0, 20.0, size=(50, 3))
        model = QueryModel.uniform(dim=3, low=1.0, high=5.0, rq=4)
        return FunctionIndex(points, model, n_indices=2, rng=11), points

    def test_insert_rejects_before_translator_poisoning(self):
        index, _ = self._index()
        delta_before = index.translator.delta.copy()
        bad = np.array([[1.0, np.nan, 2.0]])
        with pytest.raises(DimensionMismatchError, match="finite"):
            index.insert_points(bad)
        # Eager rejection happened before the translator observed the row:
        # the octant translation state is untouched and queries still work.
        assert np.array_equal(index.translator.delta, delta_before)
        answer = index.query(np.array([1.0, 2.0, 1.0]), 30.0)
        assert answer.ids.size >= 0  # no exception: machinery intact

    def test_update_rejects_before_translator_poisoning(self):
        index, points = self._index()
        delta_before = index.translator.delta.copy()
        with pytest.raises(DimensionMismatchError, match="finite"):
            index.update_points(np.array([0]), np.array([[np.inf, 1.0, 1.0]]))
        assert np.array_equal(index.translator.delta, delta_before)
        assert np.array_equal(index.get_points(np.array([0])), points[[0]])

    def test_sharded_insert_rejects_eagerly(self):
        from .conftest import build_engine

        engine, _, _ = build_engine(n_shards=2)
        with engine:
            delta_before = engine.translator.delta.copy()
            n_before = len(engine)
            with pytest.raises(DimensionMismatchError, match="finite"):
                engine.insert_points(np.array([[np.nan, 1.0, 1.0, 1.0]]))
            assert len(engine) == n_before
            assert np.array_equal(engine.translator.delta, delta_before)
