"""The ``repro chaos`` command: survival reports and verification."""

from __future__ import annotations

import io

import pytest

from repro.cli import main as repro_main
from repro.reliability.cli import main as chaos_main

FAST = ["--n", "400", "--queries", "6", "--indices", "2", "--shards", "3"]


class TestChaosCli:
    def test_clean_run_without_faults(self, monkeypatch):
        from repro.reliability import faults as _flt

        # A chaos CI lane arms REPRO_FAULTS for the whole process; this
        # test is about the *clean* path, so neutralize both the env var
        # (read by the CLI) and the module arming it caused at import.
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        _flt.disarm()
        stream = io.StringIO()
        code = chaos_main([*FAST, "--verify"], stream=stream)
        out = stream.getvalue()
        assert code == 0
        assert "complete=6" in out
        assert "no fault plan armed" in out
        assert "all sound" in out

    def test_faulted_run_reports_firings_and_verifies(self):
        stream = io.StringIO()
        code = chaos_main(
            [*FAST, "--verify", "--faults", "shard.query:error:p=0.5"],
            stream=stream,
        )
        out = stream.getvalue()
        assert code == 0
        assert "faults fired:" in out
        assert "shard.query:error" in out
        assert "all sound" in out

    def test_degrade_policy_reports_completeness(self):
        stream = io.StringIO()
        code = chaos_main(
            [
                *FAST,
                "--verify",
                "--policy",
                "degrade",
                "--faults",
                "shard.query:error:shard=1;shard.scan:error:shard=1",
            ],
            stream=stream,
        )
        out = stream.getvalue()
        assert code == 0
        assert "degraded=6" in out
        assert "degraded completeness" in out

    def test_deterministic_given_same_seeds(self):
        args = [*FAST, "--faults", "shard.query:error:p=0.4", "--faults-seed", "3"]
        first, second = io.StringIO(), io.StringIO()
        assert chaos_main(args, stream=first) == 0
        assert chaos_main(args, stream=second) == 0
        assert first.getvalue() == second.getvalue()

    def test_bad_fault_spec_is_a_usage_error(self, capsys):
        code = chaos_main([*FAST, "--faults", "nonsense"])
        assert code == 2
        assert "bad fault spec" in capsys.readouterr().err

    def test_registered_under_main_cli(self, capsys):
        code = repro_main(["chaos", *FAST])
        assert code == 0
        assert "chaos:" in capsys.readouterr().out

    def test_raise_policy_counts_raised_queries(self):
        stream = io.StringIO()
        code = chaos_main(
            [*FAST, "--policy", "raise", "--faults", "shard.query:error"],
            stream=stream,
        )
        assert code == 0
        assert "raised=6" in stream.getvalue()

    @pytest.mark.parametrize("flag", ["--policy", "--faults", "--serve"])
    def test_help_mentions_flags(self, capsys, flag):
        with pytest.raises(SystemExit):
            from repro.reliability.cli import build_parser

            build_parser().parse_args(["--help"])
        assert flag in capsys.readouterr().out


class TestChaosServe:
    """``repro chaos --serve``: the drill through a live HTTP service."""

    def test_serve_mode_verifies_degraded_and_shed_responses(self):
        stream = io.StringIO()
        code = chaos_main(
            [
                *FAST,
                "--queries", "12",
                "--serve",
                "--policy", "degrade",
                "--faults",
                "serve.accept:error:every=5;"
                "shard.query:error:shard=1;shard.scan:error:shard=1",
            ],
            stream=stream,
        )
        out = stream.getvalue()
        assert code == 0
        assert "chaos --serve: 12 HTTP requests" in out
        assert "degraded=" in out
        assert "shed_503=" in out
        assert "all sound" in out

    def test_serve_mode_deadline_expiries_are_explicit_504s(self):
        stream = io.StringIO()
        code = chaos_main(
            [
                *FAST,
                "--serve",
                "--deadline-ms", "80",
                "--faults", "serve.dispatch:stall:ms=250:every=3",
            ],
            stream=stream,
        )
        out = stream.getvalue()
        assert code == 0
        assert "deadline_504=" in out
        assert "all sound" in out

    def test_serve_mode_clean_run_is_all_exact(self, monkeypatch):
        from repro.reliability import faults as _flt

        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        _flt.disarm()
        stream = io.StringIO()
        code = chaos_main([*FAST, "--serve"], stream=stream)
        out = stream.getvalue()
        assert code == 0
        assert "exact=6" in out
        assert "all sound" in out

    def test_serve_mode_registered_under_main_cli(self, capsys):
        code = repro_main(["chaos", *FAST, "--serve"])
        assert code == 0
        assert "chaos --serve:" in capsys.readouterr().out
