"""Failure policies of the sharded engine under injected shard faults."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ScalarProductQuery
from repro.exceptions import (
    DegradedAnswerError,
    QueryTimeoutError,
    ShardFailureError,
)
from repro.reliability import faults as _flt

from ..conftest import brute_force_ids, brute_force_topk
from .conftest import build_engine


def _query_args(points):
    normal = np.array([2.0, 1.0, 3.0, 1.0])
    offset = float(np.round(0.35 * normal @ points.max(axis=0)))
    return normal, offset


class TestRaisePolicy:
    def test_shard_failure_carries_identity(self):
        engine, points, _ = build_engine(failure_policy="raise")
        normal, offset = _query_args(points)
        with engine, _flt.injected("shard.query:error:shard=1"):
            with pytest.raises(ShardFailureError) as excinfo:
                engine.query(normal, offset)
        assert excinfo.value.shard == 1
        assert excinfo.value.kind == "inequality"

    def test_timeout_is_a_shard_failure(self):
        engine, points, _ = build_engine(
            failure_policy="raise", query_timeout_s=0.05
        )
        normal, offset = _query_args(points)
        with engine, _flt.injected("shard.query:stall:ms=400:shard=0:times=1"):
            with pytest.raises(QueryTimeoutError) as excinfo:
                engine.query(normal, offset)
        assert excinfo.value.shard == 0
        assert isinstance(excinfo.value, TimeoutError)


class TestDegradePolicy:
    def test_recovery_scan_restores_the_complete_answer(self):
        _flt.disarm()  # pristine baseline even under an ambient REPRO_FAULTS
        engine, points, _ = build_engine(failure_policy="degrade")
        normal, offset = _query_args(points)
        with engine:
            baseline = engine.query(normal, offset)
            assert baseline.degraded is None
            with _flt.injected("shard.query:error:shard=1"):
                answer = engine.query(normal, offset)
        assert np.array_equal(answer.ids, baseline.ids)
        info = answer.degraded
        assert info is not None
        assert info.recovered_shards == (1,)
        assert info.failed_shards == ()
        assert info.completeness == 1.0
        assert info.is_complete

    def test_unrecoverable_shard_yields_partial_answer(self):
        engine, points, _ = build_engine(failure_policy="degrade")
        normal, offset = _query_args(points)
        spec = "shard.query:error:shard=1;shard.scan:error:shard=1"
        with engine:
            truth = brute_force_ids(points, ScalarProductQuery(normal, offset))
            with _flt.injected(spec):
                answer = engine.query(normal, offset)
            info = answer.degraded
            assert info is not None
            assert info.failed_shards == (1,)
            surviving = np.concatenate(
                [
                    engine._stores[s].live_ids()
                    for s in range(engine.n_shards)
                    if s != 1
                ]
            )
            sizes = engine.shard_sizes()
            expected_completeness = (sum(sizes) - sizes[1]) / sum(sizes)
        assert info.completeness == pytest.approx(expected_completeness, abs=0)
        assert not info.is_complete
        with pytest.raises(DegradedAnswerError):
            info.require_complete()
        expected_ids = np.sort(truth[np.isin(truth, surviving)])
        assert np.array_equal(answer.ids, expected_ids)

    def test_timeout_recovers_via_scan(self):
        engine, points, _ = build_engine(
            failure_policy="degrade", query_timeout_s=0.05
        )
        normal, offset = _query_args(points)
        with engine:
            baseline = engine.query(normal, offset)
            with _flt.injected("shard.query:stall:ms=400:shard=2:times=1"):
                answer = engine.query(normal, offset)
        assert np.array_equal(answer.ids, baseline.ids)
        assert answer.degraded is not None
        assert answer.degraded.recovered_shards == (2,)

    def test_all_shards_failed_raises_degraded_answer_error(self):
        engine, points, _ = build_engine(failure_policy="degrade")
        normal, offset = _query_args(points)
        with engine, _flt.injected("shard.*:error"):
            with pytest.raises(DegradedAnswerError):
                engine.query(normal, offset)


class TestRetryThenDegrade:
    def test_transient_fault_retried_to_full_answer(self):
        engine, points, _ = build_engine(failure_policy="retry_then_degrade")
        normal, offset = _query_args(points)
        with engine:
            baseline = engine.query(normal, offset)
            with _flt.injected("shard.query:error:shard=0:times=1"):
                answer = engine.query(normal, offset)
        assert np.array_equal(answer.ids, baseline.ids)
        info = answer.degraded
        assert info is not None and info.is_complete
        assert info.retries >= 1

    def test_persistent_fault_falls_back_to_recovery(self):
        engine, points, _ = build_engine(
            failure_policy="retry_then_degrade", max_retries=1
        )
        normal, offset = _query_args(points)
        with engine:
            baseline = engine.query(normal, offset)
            with _flt.injected("shard.query:error:shard=0"):
                answer = engine.query(normal, offset)
        assert np.array_equal(answer.ids, baseline.ids)
        assert answer.degraded is not None
        assert answer.degraded.recovered_shards == (0,)


class TestOtherFanOuts:
    def test_batch_degrades_uniformly(self):
        engine, points, _ = build_engine(failure_policy="degrade")
        normals = np.array(
            [[2.0, 1.0, 3.0, 1.0], [1.0, 1.0, 1.0, 1.0], [3.0, 2.0, 1.0, 2.0]]
        )
        offsets = np.round(0.4 * normals @ points.max(axis=0))
        with engine:
            baseline = engine.query_batch(normals, offsets)
            with _flt.injected("shard.query:error:shard=1:kind=batch"):
                answers = engine.query_batch(normals, offsets)
        for got, expected in zip(answers, baseline):
            assert np.array_equal(got.ids, expected.ids)
            assert got.degraded is not None
            assert got.degraded.recovered_shards == (1,)

    def test_range_recovers(self):
        engine, points, _ = build_engine(failure_policy="degrade")
        normal = np.array([2.0, 1.0, 3.0, 1.0])
        maxima = float(normal @ points.max(axis=0))
        low, high = np.round(0.2 * maxima), np.round(0.6 * maxima)
        with engine:
            baseline = engine.query_range(normal, low, high)
            with _flt.injected("shard.query:error:shard=2:kind=range"):
                answer = engine.query_range(normal, low, high)
        assert np.array_equal(answer.ids, baseline.ids)
        assert answer.degraded is not None and answer.degraded.is_complete

    def test_topk_recovers_bit_identical(self):
        engine, points, _ = build_engine(failure_policy="degrade")
        normal, offset = _query_args(points)
        with engine:
            with _flt.injected("shard.query:error:shard=1:kind=topk"):
                result = engine.topk(normal, offset, k=10)
        spq = ScalarProductQuery(normal, offset)
        expected_ids, expected_distances = brute_force_topk(points, spq, 10)
        assert np.array_equal(result.ids, expected_ids)
        assert np.allclose(result.distances, expected_distances)
        assert result.degraded is not None
        assert result.degraded.recovered_shards == (1,)

    def test_topk_partial_when_unrecoverable(self):
        engine, points, _ = build_engine(failure_policy="degrade")
        normal, offset = _query_args(points)
        spec = "shard.query:error:shard=0:kind=topk;shard.scan:error:shard=0"
        with engine:
            with _flt.injected(spec):
                result = engine.topk(normal, offset, k=10)
            surviving = np.concatenate(
                [engine._stores[s].live_ids() for s in (1, 2)]
            )
        spq = ScalarProductQuery(normal, offset)
        expected_ids, _ = brute_force_topk(
            points[surviving], spq, 10, ids=surviving
        )
        assert np.array_equal(result.ids, expected_ids)
        assert result.degraded is not None
        assert result.degraded.failed_shards == (0,)


class TestMaintenance:
    def test_injected_maintenance_fault_raises_not_degrades(self):
        engine, points, _ = build_engine(failure_policy="degrade")
        rng = np.random.default_rng(0)
        rows = rng.integers(1, 40, size=(9, 4)).astype(np.float64)
        with engine, _flt.injected("shard.maintenance:error:action=insert"):
            with pytest.raises(ShardFailureError):
                engine.insert_points(rows)

    def test_maintenance_retries_under_retry_policy(self):
        engine, points, _ = build_engine(failure_policy="retry_then_degrade")
        rng = np.random.default_rng(0)
        rows = rng.integers(1, 40, size=(9, 4)).astype(np.float64)
        with engine:
            before = len(engine)
            with _flt.injected("shard.maintenance:error:action=insert:times=1"):
                ids = engine.insert_points(rows)
            assert len(engine) == before + 9
            normal, offset = _query_args(points)
            answer = engine.query(normal, offset)
            all_points = np.vstack([points, rows])
            truth = brute_force_ids(all_points, ScalarProductQuery(normal, offset))
            assert np.array_equal(answer.ids, truth)
            assert ids.size == 9

    def test_caller_errors_pass_through_unwrapped(self):
        engine, _, _ = build_engine(failure_policy="degrade")
        with engine:
            with pytest.raises(KeyError):
                engine.delete_points(np.array([10**6]))


class TestDisarmedParity:
    def test_disarmed_answers_are_bit_identical_and_undegraded(self):
        from repro import FunctionIndex

        _flt.disarm()  # the point of this test is the disarmed path
        engine, points, model = build_engine()
        mono = FunctionIndex(points, model, n_indices=3, rng=7)
        normal, offset = _query_args(points)
        with engine:
            answer = engine.query(normal, offset)
            mono_answer = mono.query(normal, offset)
            assert answer.degraded is None
            assert np.array_equal(answer.ids, mono_answer.ids)
            result = engine.topk(normal, offset, k=7)
            mono_result = mono.topk(normal, offset, k=7)
            assert result.degraded is None
            assert np.array_equal(result.ids, mono_result.ids)
            assert np.array_equal(result.distances, mono_result.distances)
