"""Persistence failure modes: every corruption is a precise PersistenceError."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import FunctionIndex, QueryModel
from repro.core.persistence import load_index, save_index
from repro.exceptions import PersistenceError
from repro.reliability import faults as _flt
from repro.tuning import load_workload
from repro.tuning.recorder import WorkloadRecorder


@pytest.fixture
def saved_index(tmp_path):
    rng = np.random.default_rng(3)
    points = rng.uniform(1.0, 50.0, size=(300, 3))
    model = QueryModel.uniform(dim=3, low=1.0, high=5.0, rq=4)
    index = FunctionIndex(points, model, n_indices=3, rng=3)
    # These tests corrupt the legacy single-archive format specifically;
    # v3 directory corruption is covered in tests/core/test_persistence.py.
    path = save_index(index, tmp_path / "index.npz", version=2)
    return index, path


class TestIndexArchiveFaults:
    def test_roundtrip_is_exact(self, saved_index):
        index, path = saved_index
        loaded = load_index(path)
        assert len(loaded) == len(index)
        normal = np.array([2.0, 1.0, 3.0])
        offset = 0.3 * float(normal @ index.get_points(index.live_ids()).max(axis=0))
        assert np.array_equal(
            loaded.query(normal, offset).ids, index.query(normal, offset).ids
        )

    def test_truncated_archive(self, saved_index):
        _, path = saved_index
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 3])
        with pytest.raises(PersistenceError, match="cannot read index archive"):
            load_index(path)

    def test_bit_flipped_array(self, saved_index):
        _, path = saved_index
        blob = bytearray(path.read_bytes())
        # Flip one byte in the middle of the compressed payload.  Depending
        # on where it lands this either breaks the zlib stream (read error)
        # or decompresses to different bytes (checksum mismatch) — both
        # must surface as PersistenceError, never as a silent wrong index.
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(PersistenceError):
            load_index(path)

    def test_missing_manifest_key_in_v2(self, saved_index, tmp_path):
        _, path = saved_index
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files if name != "metadata"}
            metadata = json.loads(bytes(archive["metadata"].tobytes()).decode("utf-8"))
        del metadata["checksums"]["points"]
        mutated = tmp_path / "missing-key.npz"
        with open(mutated, "wb") as handle:
            np.savez(
                handle,
                metadata=np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8),
                **arrays,
            )
        with pytest.raises(PersistenceError, match="points"):
            load_index(mutated)

    def test_v1_archive_without_manifest_still_loads(self, saved_index, tmp_path):
        index, path = saved_index
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files if name != "metadata"}
            metadata = json.loads(bytes(archive["metadata"].tobytes()).decode("utf-8"))
        metadata["format_version"] = 1
        del metadata["checksums"]
        legacy = tmp_path / "v1.npz"
        with open(legacy, "wb") as handle:
            np.savez(
                handle,
                metadata=np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8),
                **arrays,
            )
        loaded = load_index(legacy)
        assert len(loaded) == len(index)

    def test_unsupported_version_rejected(self, saved_index, tmp_path):
        _, path = saved_index
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files if name != "metadata"}
            metadata = json.loads(bytes(archive["metadata"].tobytes()).decode("utf-8"))
        metadata["format_version"] = 99
        future = tmp_path / "v99.npz"
        with open(future, "wb") as handle:
            np.savez(
                handle,
                metadata=np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8),
                **arrays,
            )
        with pytest.raises(PersistenceError, match="unsupported archive version 99"):
            load_index(future)

    def test_torn_write_is_detected_on_load(self, tmp_path):
        rng = np.random.default_rng(4)
        points = rng.uniform(1.0, 50.0, size=(200, 3))
        model = QueryModel.uniform(dim=3, low=1.0, high=5.0, rq=4)
        index = FunctionIndex(points, model, n_indices=2, rng=4)
        target = tmp_path / "torn.npz"
        with _flt.injected("persistence.write:torn:frac=0.5:artifact=index"):
            save_index(index, target)
        with pytest.raises(PersistenceError):
            load_index(target)

    def test_injected_write_error_leaves_previous_archive(self, saved_index):
        index, path = saved_index
        with _flt.injected("persistence.write:error:artifact=index"):
            with pytest.raises(Exception):
                save_index(index, path)
        # The earlier archive survives intact.
        assert len(load_index(path)) == len(index)


class TestWorkloadArchiveFaults:
    def _recorded(self, tmp_path):
        recorder = WorkloadRecorder(capacity=8)
        rng = np.random.default_rng(5)
        for _ in range(6):
            recorder.record_query(rng.uniform(1, 5, size=3), 10.0, "<=", "inequality")
        return recorder.save(tmp_path / "w.npz")

    def test_bit_flip_detected(self, tmp_path):
        path = self._recorded(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(Exception) as excinfo:
            load_workload(path)
        # Either the zip layer (TuningError) or the checksum layer
        # (PersistenceError) catches it — silence is the only failure.
        from repro.exceptions import TuningError

        assert isinstance(excinfo.value, (TuningError, PersistenceError))

    def test_torn_workload_write_detected(self, tmp_path):
        recorder = WorkloadRecorder(capacity=4)
        recorder.record_query(np.array([1.0, 2.0, 3.0]), 5.0, "<=", "inequality")
        target = tmp_path / "torn-w.npz"
        with _flt.injected("persistence.write:torn:frac=0.4:artifact=workload"):
            recorder.save(target)
        from repro.exceptions import TuningError

        with pytest.raises((TuningError, PersistenceError)):
            load_workload(target)
