"""Fault-plan grammar, firing schedules, determinism, and arming."""

from __future__ import annotations

import time

import pytest

from repro.exceptions import FaultSpecError, InjectedFaultError
from repro.reliability import FaultPlan, FaultRule
from repro.reliability import faults as _flt


class TestRuleParsing:
    def test_minimal_rule(self):
        rule = FaultRule.parse("shard.query:error")
        assert rule.site == "shard.query"
        assert rule.kind == "error"
        assert rule.p == 1.0 and rule.every == 0 and rule.filters == {}

    def test_float_and_int_options(self):
        rule = FaultRule.parse("shard.query:stall:p=0.25:ms=3.5:every=2:after=1")
        assert rule.p == 0.25
        assert rule.ms == 3.5
        assert rule.every == 2 and rule.after == 1

    def test_unknown_options_become_attribute_filters(self):
        rule = FaultRule.parse("shard.query:error:shard=2:kind=topk")
        assert rule.filters == {"shard": "2", "kind": "topk"}
        assert rule.matches("shard.query", {"shard": 2, "kind": "topk"})
        assert not rule.matches("shard.query", {"shard": 1, "kind": "topk"})
        assert not rule.matches("shard.query", {"kind": "topk"})  # missing attr

    def test_prefix_glob_site(self):
        rule = FaultRule.parse("shard.*:error")
        assert rule.matches("shard.query", {})
        assert rule.matches("shard.scan", {})
        assert not rule.matches("persistence.write", {})

    @pytest.mark.parametrize(
        "spec",
        [
            "bogus",  # no kind
            "shard.query:explode",  # unknown kind
            ":error",  # empty site
            "shard.query:error:p=high",  # bad float
            "shard.query:error:every=2.5",  # bad int
            "shard.query:error:p=1.5",  # p outside [0, 1]
            "shard.query:torn:frac=1.0",  # frac must be < 1
            "shard.query:error:orphan",  # option without '='
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_empty_spec_raises(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("  ;  ")

    def test_multi_rule_spec(self):
        plan = FaultPlan.parse("a.b:error ; c.d:stall:ms=1")
        assert [rule.site for rule in plan.rules] == ["a.b", "c.d"]


class TestFiringSchedules:
    def _fires(self, plan: FaultPlan, site: str, n: int) -> list[int]:
        hits = []
        for i in range(n):
            try:
                plan.check(site, {})
            except InjectedFaultError:
                hits.append(i)
        return hits

    def test_every_and_after(self):
        plan = FaultPlan.parse("s:error:every=3:after=2")
        # effective check counter starts after the first 2 checks
        assert self._fires(plan, "s", 12) == [4, 7, 10]

    def test_times_caps_firings(self):
        plan = FaultPlan.parse("s:error:times=2")
        assert self._fires(plan, "s", 6) == [0, 1]

    def test_probabilistic_rule_is_seed_deterministic(self):
        first = self._fires(FaultPlan.parse("s:error:p=0.4", seed=9), "s", 50)
        second = self._fires(FaultPlan.parse("s:error:p=0.4", seed=9), "s", 50)
        other = self._fires(FaultPlan.parse("s:error:p=0.4", seed=10), "s", 50)
        assert first == second
        assert 0 < len(first) < 50
        assert first != other

    def test_reset_rewinds_counters_and_rng(self):
        plan = FaultPlan.parse("s:error:p=0.4:times=3")
        first = self._fires(plan, "s", 30)
        plan.reset()
        assert self._fires(plan, "s", 30) == first
        assert plan.fired_total() == len(first)

    def test_stats_report_checks_and_fires(self):
        plan = FaultPlan.parse("s:error:every=2")
        self._fires(plan, "s", 10)
        (row,) = plan.stats()
        assert row == {"site": "s", "kind": "error", "checks": 10, "fires": 5}

    def test_stall_sleeps_then_continues(self):
        plan = FaultPlan.parse("s:stall:ms=30:times=1")
        start = time.perf_counter()
        plan.check("s", {})
        elapsed = time.perf_counter() - start
        assert elapsed >= 0.02
        plan.check("s", {})  # times=1: second check is instant and silent

    def test_error_carries_site_and_attrs(self):
        plan = FaultPlan.parse("shard.query:error")
        with pytest.raises(InjectedFaultError) as excinfo:
            plan.check("shard.query", {"shard": 1, "kind": "inequality"})
        assert excinfo.value.site == "shard.query"
        assert "shard=1" in str(excinfo.value)

    def test_torn_rules_only_affect_torn_fraction(self):
        plan = FaultPlan.parse("persistence.write:torn:frac=0.25")
        plan.check("persistence.write", {})  # torn rules never raise
        assert plan.torn_fraction("persistence.write", {}) == 0.25
        assert plan.torn_fraction("other.site", {}) is None


class TestModuleArming:
    def test_disarmed_check_is_noop(self):
        _flt.disarm()
        assert not _flt.is_armed()
        _flt.check("anything", shard=0)  # must not raise

    def test_arm_and_disarm(self):
        plan = _flt.arm("s:error")
        assert _flt.is_armed()
        assert _flt.active_plan() is plan
        with pytest.raises(InjectedFaultError):
            _flt.check("s")
        _flt.disarm()
        assert _flt.active_plan() is None

    def test_injected_restores_previous_plan(self):
        outer = _flt.arm("outer.site:error")
        with _flt.injected("inner.site:error") as inner:
            assert _flt.active_plan() is inner
            with pytest.raises(InjectedFaultError):
                _flt.check("inner.site")
            _flt.check("outer.site")  # outer plan not active inside
        assert _flt.active_plan() is outer
        with pytest.raises(InjectedFaultError):
            _flt.check("outer.site")

    def test_injected_restores_disarmed_state(self):
        _flt.disarm()
        with _flt.injected("s:error"):
            assert _flt.is_armed()
        assert not _flt.is_armed()

    def test_arm_seed_requires_spec_string(self):
        plan = FaultPlan.parse("s:error")
        with pytest.raises(FaultSpecError):
            _flt.arm(plan, seed=3)
