"""Shared fixtures for the reliability suite.

Every test runs inside a fault-state sandbox: whatever plan (or disarmed
state) was active before the test — including a ``REPRO_FAULTS``
environment arming, which the chaos CI lane uses to run this very suite
under injection — is restored afterwards, so tests can arm scoped plans
freely without leaking into their neighbours.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import QueryModel, ShardedFunctionIndex
from repro.reliability import faults as _flt


@pytest.fixture(autouse=True)
def _fault_state_sandbox():
    """Save and restore the module-level fault arming around each test."""
    previous_plan = _flt.active_plan()
    previously_armed = _flt.is_armed()
    yield
    if previously_armed and previous_plan is not None:
        _flt.arm(previous_plan)
    else:
        _flt.disarm()


def build_engine(
    n: int = 600,
    dim: int = 4,
    n_shards: int = 3,
    seed: int = 7,
    **kwargs,
) -> tuple[ShardedFunctionIndex, np.ndarray, QueryModel]:
    """A small deterministic sharded engine plus its points and model."""
    rng = np.random.default_rng(seed)
    points = rng.integers(1, 40, size=(n, dim)).astype(np.float64)
    model = QueryModel.uniform(dim=dim, low=1.0, high=5.0, rq=4)
    engine = ShardedFunctionIndex(
        points, model, n_indices=3, rng=seed, n_shards=n_shards, **kwargs
    )
    return engine, points, model


@pytest.fixture
def engine_case():
    """Default three-shard engine; closed after the test."""
    engine, points, model = build_engine()
    yield engine, points, model
    engine.close()
