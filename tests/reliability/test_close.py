"""Engine shutdown: close() is idempotent and exception-safe."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShardFailureError
from repro.reliability import faults as _flt

from .conftest import build_engine


class TestClose:
    def test_double_close_is_a_noop(self):
        engine, _, _ = build_engine()
        engine.close()
        engine.close()  # second close must not raise

    def test_context_manager_closes_once(self):
        engine, points, _ = build_engine()
        with engine:
            normal = np.array([2.0, 1.0, 3.0, 1.0])
            offset = 0.4 * float(normal @ points.max(axis=0))
            engine.query(normal, offset)
        engine.close()  # after __exit__, still a no-op

    def test_close_after_query_error(self):
        """Closing after an in-flight failure must not mask or raise."""
        engine, points, _ = build_engine(failure_policy="raise")
        normal = np.array([2.0, 1.0, 3.0, 1.0])
        offset = 0.4 * float(normal @ points.max(axis=0))
        with _flt.injected("shard.query:error"):
            with pytest.raises(ShardFailureError):
                engine.query(normal, offset)
        engine.close()
        engine.close()

    def test_exit_propagates_body_exception_without_masking(self):
        engine, _, _ = build_engine()
        with pytest.raises(RuntimeError, match="body failure"):
            with engine:
                raise RuntimeError("body failure")
        engine.close()  # idempotent even after an exceptional exit

    def test_single_shard_engine_has_no_executor_but_closes_fine(self):
        # Disarm explicitly: the `degraded is None` assertion is about the
        # healthy single-shard path, and an ambient REPRO_FAULTS plan
        # (chaos CI lane) may or may not fire here depending on how many
        # checks earlier tests consumed.  The sandbox fixture restores.
        _flt.disarm()
        engine, points, _ = build_engine(n_shards=1)
        normal = np.array([2.0, 1.0, 3.0, 1.0])
        offset = 0.4 * float(normal @ points.max(axis=0))
        answer = engine.query(normal, offset)
        assert answer.degraded is None
        engine.close()
        engine.close()
