"""Shared fixtures and oracles for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ParameterDomain, QueryModel, ScalarProductQuery


@pytest.fixture(autouse=True)
def _obs_state_isolation(tmp_path, monkeypatch):
    """Keep obs state files out of the working tree during armed runs.

    With ``REPRO_OBS=1`` the CLI merges metric samples into a state file on
    exit; pointing it at a per-test temp path keeps test invocations from
    writing ``.repro-obs.json`` into the repository root.
    """
    monkeypatch.setenv("REPRO_OBS_STATE", str(tmp_path / "obs-state.json"))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests that need other seeds build their own."""
    return np.random.default_rng(12345)


@pytest.fixture
def uniform_points(rng: np.random.Generator) -> np.ndarray:
    """A small first-octant dataset matching the paper's synthetic ranges."""
    return rng.uniform(1.0, 100.0, size=(2000, 4))


@pytest.fixture
def uniform_model() -> QueryModel:
    """Positive discrete query model (RQ = 4) over four axes."""
    return QueryModel.uniform(dim=4, low=1.0, high=5.0, rq=4)


@pytest.fixture
def mixed_sign_points(rng: np.random.Generator) -> np.ndarray:
    """Data spanning all octants, for translation-path coverage."""
    return rng.normal(0.0, 10.0, size=(1500, 3))


@pytest.fixture
def mixed_sign_model() -> QueryModel:
    """Query model whose octant is (+, -, +)."""
    return QueryModel(
        [
            ParameterDomain(low=0.5, high=3.0),
            ParameterDomain(low=-2.0, high=-0.5),
            ParameterDomain(values=[1.0, 2.0, 4.0]),
        ]
    )


def brute_force_ids(
    features: np.ndarray, query: ScalarProductQuery, ids: np.ndarray | None = None
) -> np.ndarray:
    """Oracle: ids satisfying the query by direct evaluation, ascending."""
    if ids is None:
        ids = np.arange(features.shape[0], dtype=np.int64)
    mask = query.evaluate(features)
    return np.sort(ids[mask])


def brute_force_topk(
    features: np.ndarray,
    query: ScalarProductQuery,
    k: int,
    ids: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Oracle: (ids, distances) of the top-k satisfying points."""
    if ids is None:
        ids = np.arange(features.shape[0], dtype=np.int64)
    values = features @ query.normal
    mask = query.op.evaluate(values, query.offset)
    sat_ids = ids[mask]
    distances = np.abs(values[mask] - query.offset) / np.linalg.norm(query.normal)
    order = np.lexsort((sat_ids, distances))[:k]
    return sat_ids[order], distances[order]
