"""Regression tests for the REP013 resource-lifecycle fixes.

``repro lint --graph`` found four call sites that built a
``ShardedFunctionIndex`` (which owns a thread pool) and dropped it
without ``close()``: the CLI quickstart demo and three experiment
runners.  These tests pin the fixes by substituting a close-recording
subclass and asserting every constructed engine is closed — even when
the body raises.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
import repro.bench.experiments as experiments
from repro.cli import main
from repro.datasets import load
from repro.parallel import ShardedFunctionIndex


class ClosableSpy(ShardedFunctionIndex):
    """ShardedFunctionIndex that records lifecycle events."""

    created: list["ClosableSpy"] = []
    closed: list["ClosableSpy"] = []

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        type(self).created.append(self)

    def close(self) -> None:
        type(self).closed.append(self)
        super().close()


@pytest.fixture(autouse=True)
def _reset_spy():
    ClosableSpy.created = []
    ClosableSpy.closed = []
    yield
    ClosableSpy.created = []
    ClosableSpy.closed = []


@pytest.fixture
def points():
    return load("indp", 2000, 4, rng=0).points


class TestDemoClosesEngine:
    def test_quickstart_closes_sharded_index(self, monkeypatch, capsys):
        monkeypatch.setattr(repro, "ShardedFunctionIndex", ClosableSpy)
        assert main(["demo", "quickstart", "--n", "2000", "--shards", "2"]) == 0
        assert len(ClosableSpy.created) == 1
        assert ClosableSpy.closed == ClosableSpy.created

    def test_quickstart_closes_on_error(self, monkeypatch, capsys):
        monkeypatch.setattr(repro, "ShardedFunctionIndex", ClosableSpy)

        def boom(self, normal, offset):
            raise RuntimeError("query failed")

        monkeypatch.setattr(ClosableSpy, "query", boom)
        with pytest.raises(RuntimeError):
            main(["demo", "quickstart", "--n", "2000", "--shards", "2"])
        assert ClosableSpy.closed == ClosableSpy.created


class TestExperimentsCloseEngines:
    @pytest.fixture(autouse=True)
    def _patch(self, monkeypatch):
        monkeypatch.setattr(experiments, "ShardedFunctionIndex", ClosableSpy)

    def test_query_experiment(self, points):
        cell = experiments.run_query_experiment(
            points, rq=2, n_indices=5, n_queries=2, rng=0, n_shards=2
        )
        assert cell["planar_ms"] > 0
        assert len(ClosableSpy.created) == 1
        assert ClosableSpy.closed == ClosableSpy.created

    def test_scalability_experiment_closes_every_size(self):
        rows = experiments.run_scalability_experiment(
            "indp", (500, 1000), dim=4, n_indices=5, n_queries=2, rng=0,
            n_shards=2,
        )
        assert len(rows) == 2
        assert len(ClosableSpy.created) == 2  # one engine per size
        assert ClosableSpy.closed == ClosableSpy.created

    def test_topk_experiment(self, points):
        rows = experiments.run_topk_experiment(
            points, ks=(5,), rq=2, n_indices=5, n_queries=2, rng=0, n_shards=2
        )
        assert len(rows) == 1
        assert len(ClosableSpy.created) == 1
        assert ClosableSpy.closed == ClosableSpy.created

    def test_query_experiment_closes_on_error(self, points, monkeypatch):
        def boom(self, normal, offset):
            raise RuntimeError("query failed")

        monkeypatch.setattr(ClosableSpy, "query", boom)
        with pytest.raises(RuntimeError):
            experiments.run_query_experiment(
                points, rq=2, n_indices=5, n_queries=2, rng=0, n_shards=2
            )
        assert ClosableSpy.closed == ClosableSpy.created

    def test_monolithic_paths_untouched(self, points):
        cell = experiments.run_query_experiment(
            points, rq=2, n_indices=5, n_queries=2, rng=0, n_shards=1
        )
        assert cell["planar_ms"] > 0
        assert ClosableSpy.created == []
