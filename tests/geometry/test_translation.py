"""Tests for the Claim 1 translation machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import DimensionMismatchError, InvalidQueryError
from repro.geometry import Translator


class TestConstruction:
    def test_octant_validation(self):
        with pytest.raises(InvalidQueryError):
            Translator(np.array([1.0, 0.0]))

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            Translator(np.array([1.0, 1.0]), margin=-0.1)

    def test_initial_delta_zero(self):
        translator = Translator(np.array([1.0, -1.0]))
        assert np.array_equal(translator.delta, [0.0, 0.0])
        assert translator.dim == 2


class TestObserve:
    def test_first_octant_data_needs_no_shift(self):
        translator = Translator(np.array([1.0, 1.0]))
        assert translator.observe([[1.0, 2.0], [3.0, 4.0]]) is False
        assert np.array_equal(translator.delta, [0.0, 0.0])

    def test_eq10_delta_is_largest_wrong_sign_magnitude(self):
        """delta_i = max |phi_i(x)| over points whose sign disagrees (Eq. 10)."""
        translator = Translator(np.array([1.0, 1.0]))
        translator.observe([[-3.0, 5.0], [-7.0, -1.0], [2.0, 4.0]])
        assert np.array_equal(translator.delta, [7.0, 1.0])

    def test_delta_never_shrinks(self):
        translator = Translator(np.array([1.0]))
        translator.observe([[-10.0]])
        assert translator.observe([[-2.0]]) is False
        assert translator.delta[0] == 10.0

    def test_delta_grows_monotonically(self):
        translator = Translator(np.array([1.0]))
        translator.observe([[-5.0]])
        assert translator.observe([[-9.0]]) is True
        assert translator.delta[0] == 9.0

    def test_empty_batch_is_noop(self):
        translator = Translator(np.array([1.0, 1.0]))
        assert translator.observe(np.empty((0, 2))) is False

    def test_margin_applied_to_shifted_axes_only(self):
        translator = Translator(np.array([1.0, 1.0]), margin=0.5)
        translator.observe([[-2.0, 3.0]])
        assert np.array_equal(translator.delta, [2.5, 0.0])

    def test_dimension_mismatch(self):
        translator = Translator(np.array([1.0, 1.0]))
        with pytest.raises(DimensionMismatchError):
            translator.observe([[1.0, 2.0, 3.0]])


class TestCoordinateMaps:
    def test_to_working_lands_in_first_octant(self):
        translator = Translator(np.array([1.0, -1.0]))
        pts = np.array([[-4.0, 6.0], [3.0, -2.0]])
        translator.observe(pts)
        working = translator.to_working(pts)
        assert np.all(working >= 0.0)

    def test_reflect_normal(self):
        translator = Translator(np.array([1.0, -1.0]))
        assert np.array_equal(translator.reflect_normal([2.0, -3.0]), [2.0, 3.0])

    def test_transform_query_eq12(self):
        """b'' = b + sum sign(O,i) a_i delta_i (Eq. 12)."""
        translator = Translator(np.array([1.0, -1.0]))
        translator.observe([[-4.0, 6.0]])  # delta = (4, 6)
        normal_w, offset_w = translator.transform_query([2.0, -3.0], 10.0)
        assert np.array_equal(normal_w, [2.0, 3.0])
        assert offset_w == pytest.approx(10.0 + 2.0 * 4.0 + 3.0 * 6.0)

    def test_transform_query_sign_mismatch_raises(self):
        translator = Translator(np.array([1.0, 1.0]))
        with pytest.raises(InvalidQueryError, match="incompatible"):
            translator.transform_query([1.0, -1.0], 5.0)

    def test_key_offset(self):
        translator = Translator(np.array([1.0, 1.0]))
        translator.observe([[-2.0, -3.0]])
        assert translator.key_offset([5.0, 7.0]) == pytest.approx(10.0 + 21.0)


@given(
    pts=hnp.arrays(
        np.float64,
        (20, 3),
        elements=st.floats(-1e5, 1e5, allow_nan=False, allow_infinity=False),
    ),
    signs=hnp.arrays(np.int8, 3, elements=st.sampled_from([-1, 1])),
)
@settings(max_examples=60, deadline=None)
def test_translation_preserves_inequality(pts, signs):
    """<a'', y''> <= b'' iff <a, y> <= b for every observed point (Claim 1)."""
    translator = Translator(signs.astype(np.float64))
    translator.observe(pts)
    normal = signs.astype(np.float64) * np.array([1.5, 2.0, 0.5])
    offset = 12.0
    normal_w, offset_w = translator.transform_query(normal, offset)
    working = translator.to_working(pts)
    lhs_original = pts @ normal
    lhs_working = working @ normal_w
    # The two sides differ by exactly the constant offset shift.
    np.testing.assert_allclose(
        lhs_working - lhs_original,
        offset_w - offset,
        rtol=1e-9,
        atol=1e-6 * max(1.0, np.abs(pts).max()),
    )
    assert np.all(working >= -1e-9 * max(1.0, np.abs(pts).max()))
