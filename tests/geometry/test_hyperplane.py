"""Unit and property tests for repro.geometry.hyperplane."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import DimensionMismatchError, InvalidQueryError
from repro.geometry import Hyperplane, angle_between, cosine_similarity

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def nonzero_vectors(dim: int = 3):
    return hnp.arrays(np.float64, dim, elements=finite_floats).filter(
        lambda v: np.linalg.norm(v) > 1e-6
    )


class TestConstruction:
    def test_basic_properties(self):
        plane = Hyperplane([1.0, 2.0, 5.0], 10.0)
        assert plane.dim == 3
        assert plane.offset == 10.0
        assert np.array_equal(plane.normal, [1.0, 2.0, 5.0])

    def test_normal_is_read_only(self):
        plane = Hyperplane([1.0, 1.0], 1.0)
        with pytest.raises(ValueError):
            plane.normal[0] = 9.0

    def test_zero_normal_rejected(self):
        with pytest.raises(InvalidQueryError):
            Hyperplane([0.0, 0.0], 1.0)

    def test_empty_normal_rejected(self):
        with pytest.raises(InvalidQueryError):
            Hyperplane([], 1.0)


class TestIntercepts:
    def test_example4_intercepts(self):
        """The paper's Example 4: Y1 + 2 Y2 + 5 Y3 = 10."""
        plane = Hyperplane([1.0, 2.0, 5.0], 10.0)
        assert plane.intercept(0) == pytest.approx(10.0)
        assert plane.intercept(1) == pytest.approx(5.0)
        assert plane.intercept(2) == pytest.approx(2.0)
        assert np.allclose(plane.intercepts(), [10.0, 5.0, 2.0])

    def test_parallel_axis_gives_infinite_intercept(self):
        plane = Hyperplane([0.0, 1.0], 3.0)
        assert np.isinf(plane.intercept(0))
        assert plane.intercept(1) == pytest.approx(3.0)

    def test_negative_offset_intercept_signs(self):
        plane = Hyperplane([2.0, -4.0], -8.0)
        assert plane.intercept(0) == pytest.approx(-4.0)
        assert plane.intercept(1) == pytest.approx(2.0)


class TestEvaluationAndDistance:
    def test_evaluate_sign_convention(self):
        plane = Hyperplane([1.0, 1.0], 2.0)
        values = plane.evaluate([[0.0, 0.0], [1.0, 1.0], [3.0, 3.0]])
        assert values[0] < 0 and values[1] == 0 and values[2] > 0

    def test_distance_matches_formula(self):
        plane = Hyperplane([3.0, 4.0], 10.0)
        pts = np.array([[0.0, 0.0], [2.0, 1.0]])
        expected = np.abs(pts @ [3.0, 4.0] - 10.0) / 5.0
        assert np.allclose(plane.distance(pts), expected)

    def test_side_values(self):
        plane = Hyperplane([1.0, 0.0], 1.0)
        assert np.array_equal(
            plane.side([[0.0, 5.0], [1.0, 5.0], [2.0, 5.0]]), [-1, 0, 1]
        )

    def test_dimension_mismatch_raises(self):
        plane = Hyperplane([1.0, 1.0], 1.0)
        with pytest.raises(DimensionMismatchError):
            plane.evaluate([[1.0, 2.0, 3.0]])

    @given(normal=nonzero_vectors(), offset=finite_floats)
    @settings(max_examples=50, deadline=None)
    def test_points_on_plane_have_zero_distance(self, normal, offset):
        plane = Hyperplane(normal, offset)
        # Project the origin onto the plane: p = offset * n / |n|^2.
        foot = offset * normal / np.dot(normal, normal)
        dist = plane.distance(foot.reshape(1, -1))[0]
        scale = max(1.0, abs(offset))
        assert dist <= 1e-6 * scale


class TestAngles:
    def test_parallel_planes_zero_angle(self):
        assert angle_between([1.0, 2.0], [2.0, 4.0]) == pytest.approx(0.0, abs=1e-7)

    def test_antiparallel_also_zero(self):
        """Hyperplanes are unoriented: c and -c are parallel planes."""
        assert angle_between([1.0, 2.0], [-1.0, -2.0]) == pytest.approx(0.0, abs=1e-7)

    def test_orthogonal(self):
        assert angle_between([1.0, 0.0], [0.0, 1.0]) == pytest.approx(np.pi / 2)

    def test_cosine_similarity_zero_vector_raises(self):
        with pytest.raises(InvalidQueryError):
            cosine_similarity([0.0, 0.0], [1.0, 0.0])

    def test_is_parallel_to(self):
        plane = Hyperplane([1.0, 1.0], 5.0)
        assert plane.is_parallel_to(Hyperplane([3.0, 3.0], 1.0))
        assert not plane.is_parallel_to(Hyperplane([1.0, 2.0], 1.0))

    @given(normal=nonzero_vectors(), scale=st.floats(0.1, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_scaling_preserves_angle_zero(self, normal, scale):
        assert angle_between(normal, scale * normal) <= 1e-6


class TestTranslation:
    def test_translate_shifts_offset_by_dot(self):
        plane = Hyperplane([1.0, 2.0], 3.0)
        shifted = plane.translate([10.0, 20.0])
        assert shifted.offset == pytest.approx(3.0 + 10.0 + 40.0)
        assert np.array_equal(shifted.normal, plane.normal)

    def test_translate_dimension_check(self):
        with pytest.raises(DimensionMismatchError):
            Hyperplane([1.0, 2.0], 3.0).translate([1.0])

    @given(normal=nonzero_vectors(), offset=finite_floats, delta=nonzero_vectors())
    @settings(max_examples=50, deadline=None)
    def test_translation_preserves_membership(self, normal, offset, delta):
        """A point on the plane maps to a point on the translated plane."""
        plane = Hyperplane(normal, offset)
        foot = offset * normal / np.dot(normal, normal)
        shifted = plane.translate(delta)
        residual = shifted.evaluate((foot + delta).reshape(1, -1))[0]
        scale = max(1.0, abs(offset), float(np.abs(delta).max()))
        assert abs(residual) <= 1e-6 * scale * max(1.0, float(np.abs(normal).max()))
