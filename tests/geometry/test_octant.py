"""Tests for hyper-octant handling (Section 4.5 preliminaries)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidDomainError
from repro.geometry import (
    first_octant,
    octant_from_domains,
    octant_of_point,
    sign_vector,
)


class TestSignVector:
    def test_mixed_signs(self):
        assert np.array_equal(sign_vector([-2.0, 3.0, 0.0]), [-1, 1, 1])

    def test_zero_maps_to_plus(self):
        assert np.array_equal(sign_vector([0.0]), [1])


class TestFirstOctant:
    def test_all_positive(self):
        assert np.array_equal(first_octant(4), [1, 1, 1, 1])

    def test_rejects_nonpositive_dim(self):
        with pytest.raises(ValueError):
            first_octant(0)


class TestOctantOfPoint:
    def test_point_octant(self):
        assert np.array_equal(octant_of_point([-1.0, 2.0]), [-1, 1])


class TestOctantFromDomains:
    def test_positive_domains(self):
        octant = octant_from_domains([1.0, 0.5], [5.0, 2.0])
        assert np.array_equal(octant, [1, 1])

    def test_negative_domain_axis(self):
        octant = octant_from_domains([1.0, -5.0], [5.0, -1.0])
        assert np.array_equal(octant, [1, -1])

    def test_zero_touching_domains(self):
        """[0, h] is positive; [l, 0] is negative."""
        octant = octant_from_domains([0.0, -3.0], [2.0, 0.0])
        assert np.array_equal(octant, [1, -1])

    def test_straddling_domain_rejected(self):
        with pytest.raises(InvalidDomainError, match="straddles zero"):
            octant_from_domains([-1.0], [1.0])

    def test_empty_domain_rejected(self):
        with pytest.raises(InvalidDomainError, match="empty"):
            octant_from_domains([5.0], [1.0])

    def test_identically_zero_domain_rejected(self):
        with pytest.raises(InvalidDomainError, match="identically zero"):
            octant_from_domains([0.0], [0.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidDomainError):
            octant_from_domains([1.0, 2.0], [3.0])
