"""Legacy setup shim.

The environment has no network access and no `wheel` package, so the
PEP 517 editable path (which needs `bdist_wheel`) is unavailable; this shim
lets `pip install -e . --no-use-pep517 --no-build-isolation` work offline.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
