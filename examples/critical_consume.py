"""Example 1 from the paper: the Critical_Consume SQL function.

Loads (a simulation of) the household electric power consumption dataset,
declares the parameterised expression

    active_power - ? * voltage * current / 1000  <=  0

(i.e. "power factor below an unknown threshold"), compiles it into scalar
product form, indexes the functional parts with Planar indices, and sweeps
thresholds — comparing against a direct table scan.

Run:  python examples/critical_consume.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ParameterDomain
from repro.datasets import consumption
from repro.sqlfunc import Table


def main() -> None:
    dataset = consumption(300_000, rng=0)
    active, reactive, voltage, current = dataset.points.T
    table = Table(
        {
            "active_power": active,
            "reactive_power": reactive,
            "voltage": voltage,
            "current": current,
        }
    )
    print(f"Consumption table: {len(table):,} households, "
          f"columns {table.column_names}")

    # CREATE FUNCTION Critical_Consume(threshold) ...
    expression = "active_power - ? * voltage * current / 1000"
    handle = table.create_function_index(
        expression,
        param_domains=[ParameterDomain(low=0.100, high=1.000)],
        n_indices=100,
        rng=0,
    )
    print(f"indexed phi components: {handle.feature_names}")

    print(f"\n{'threshold':>9}  {'matches':>9}  {'selectivity':>11}  "
          f"{'planar ms':>9}  {'scan ms':>8}  {'pruned':>7}")
    def best_of_three(func):
        best, result = float("inf"), None
        for _ in range(3):
            start = time.perf_counter()
            result = func()
            best = min(best, (time.perf_counter() - start) * 1000)
        return result, best

    for threshold in (0.20, 0.40, 0.60, 0.80, 0.95):
        answer, planar_ms = best_of_three(lambda: handle.query([threshold]))
        expected, scan_ms = best_of_three(lambda: table.filter(expression, [threshold]))

        assert np.array_equal(answer.ids, expected)
        pruned = answer.stats.pruned_fraction if answer.stats else 0.0
        print(f"{threshold:9.2f}  {len(answer):9,}  "
              f"{len(answer) / len(table):10.2%}  {planar_ms:9.2f}  "
              f"{scan_ms:8.2f}  {pruned:6.1%}")

    # The top-k flavour: the 5 households closest to a pf of 0.5.
    top = handle.topk([0.50], k=5)
    print(f"\n5 households closest to power factor 0.50 (satisfying side): "
          f"rows {top.ids.tolist()}")

    # Streaming updates keep the function index consistent.
    table.append_rows(
        {
            "active_power": [0.2, 9.5],
            "reactive_power": [0.1, 0.4],
            "voltage": [230.0, 241.0],
            "current": [12.0, 41.0],
        }
    )
    answer = handle.query([0.5])
    assert np.array_equal(answer.ids, handle.scan([0.5]))
    print(f"\nafter appending 2 rows the index answers over {len(handle.index):,} "
          "rows and stays exact")


if __name__ == "__main__":
    main()
