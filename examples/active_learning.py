"""Section 7.5.2: pool-based active learning via top-k hyperplane queries.

Uncertainty sampling repeatedly asks "which unlabeled points lie closest to
the current decision hyperplane?" — exactly the paper's top-k nearest
neighbor query.  Both the Planar-index and the sequential-scan acquisition
label identical points (both are exact, unlike the approximate hashing of
Jain et al. / Liu et al.); the Planar backend simply evaluates far fewer
scalar products.

Run:  python examples/active_learning.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.learning import ActiveLearner, make_linear_classification


def run(backend: str, pool: np.ndarray, labels: np.ndarray) -> None:
    learner = ActiveLearner(
        pool, labels, seed_size=10, batch_size=10, backend=backend, rng=42
    )
    start = time.perf_counter()
    report = learner.run(15, labels)
    seconds = time.perf_counter() - start
    print(f"\nbackend = {backend}")
    print(f"  rounds          : {report.n_rounds}")
    print(f"  labels used     : {report.labeled_ids.size} of {pool.shape[0]:,}")
    print(f"  final accuracy  : {report.final_accuracy:.2%}")
    print(f"  scalar products : {report.n_checked_total:,} evaluated by acquisition")
    print(f"  wall clock      : {seconds:.2f} s")
    return report


def main() -> None:
    pool, labels, _, _ = make_linear_classification(30_000, 6, noise=0.03, rng=0)
    print(f"pool: {pool.shape[0]:,} points in {pool.shape[1]}-D, "
          f"{np.mean(labels == 1):.0%} positive")

    planar = run("planar", pool, labels)
    scan = run("scan", pool, labels)

    assert np.array_equal(np.sort(planar.labeled_ids), np.sort(scan.labeled_ids))
    saving = scan.n_checked_total / max(planar.n_checked_total, 1)
    print(f"\nboth backends labeled identical points (exactness), but the "
          f"Planar backend evaluated {saving:.1f}x fewer scalar products")


if __name__ == "__main__":
    main()
