"""Example 2 from the paper: intersection between moving objects.

Simulates the paper's three Section 7.5.1 workloads — straight-line
traffic, objects on concentric circles (where spatio-temporal trees do not
apply), and accelerating objects in 3-D — and answers "which pairs will be
within S miles of each other at future time t?" through Planar indexes,
the all-pairs baseline, and (for linear motion) a TPR/MBR-tree.

Run:  python examples/air_traffic.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.moving import (
    AcceleratingIntersectionIndex,
    CircularIntersectionIndex,
    LinearIntersectionIndex,
    PairScan,
    TPRTree,
    accelerating_workload,
    circular_workload,
    tpr_intersection_join,
    uniform_linear_workload,
)


def timed(func, *args):
    start = time.perf_counter()
    result = func(*args)
    return result, (time.perf_counter() - start) * 1000


def main() -> None:
    n = 500
    distance = 10.0
    times = (10.0, 11.5, 13.0, 15.0)

    # ---------------- linear motion (Fig 14a) ------------------------- #
    first, second = uniform_linear_workload(n, rng=1)
    index = LinearIntersectionIndex(first, second, t_range=(10, 15), n_time_slots=6, rng=0)
    scan = PairScan(first, second)
    trees = (TPRTree(first), TPRTree(second))
    print(f"linear motion: {n} x {n} objects = {index.n_pairs:,} pairs, "
          "6 time-slot indices (MOVIES-style)")
    print(f"{'t':>5}  {'pairs':>6}  {'planar ms':>9}  {'all-pairs ms':>12}  {'tpr ms':>7}")
    for t in times:
        planar, planar_ms = timed(index.query, t, distance)
        truth, scan_ms = timed(scan.query, t, distance)
        tree_pairs, tree_ms = timed(tpr_intersection_join, *trees, t, distance)
        assert np.array_equal(planar.pairs, truth.pairs)
        assert np.array_equal(tree_pairs, truth.pairs)
        print(f"{t:5.1f}  {len(truth):6}  {planar_ms:9.2f}  {scan_ms:12.2f}  {tree_ms:7.2f}")

    # ---------------- circular motion (Fig 14b) ----------------------- #
    circ, lin = circular_workload(n, rng=2)
    index = CircularIntersectionIndex(circ, lin, rng=0)
    scan = PairScan(circ, lin)
    print(f"\ncircular motion: {index.n_buckets} angular-velocity buckets, "
          f"{index.n_pairs:,} pairs (trees are inapplicable here)")
    print(f"{'t':>5}  {'pairs':>6}  {'planar ms':>9}  {'all-pairs ms':>12}")
    for t in times:
        planar, planar_ms = timed(index.query, t, distance)
        truth, scan_ms = timed(scan.query, t, distance)
        assert np.array_equal(planar.pairs, truth.pairs)
        print(f"{t:5.1f}  {len(truth):6}  {planar_ms:9.2f}  {scan_ms:12.2f}")

    # ---------------- accelerating motion, 3-D (Fig 14c) -------------- #
    acc, lin3 = accelerating_workload(n, rng=3)
    index = AcceleratingIntersectionIndex(acc, lin3, rng=0)
    scan = PairScan(acc, lin3)
    print("\naccelerating motion (3-D): quartic distance polynomial, "
          f"{index.n_pairs:,} pairs")
    print(f"{'t':>5}  {'pairs':>6}  {'planar ms':>9}  {'all-pairs ms':>12}")
    for t in times:
        planar, planar_ms = timed(index.query, t, distance)
        truth, scan_ms = timed(scan.query, t, distance)
        assert np.array_equal(planar.pairs, truth.pairs)
        print(f"{t:5.1f}  {len(truth):6}  {planar_ms:9.2f}  {scan_ms:12.2f}")

    # One object changes course: re-key only its pair rows.
    first2, second2 = uniform_linear_workload(200, rng=4)
    index = LinearIntersectionIndex(first2, second2, rng=0)
    start = time.perf_counter()
    index.update_first_object(0, np.array([500.0, 500.0]), np.array([0.5, -0.5]))
    update_ms = (time.perf_counter() - start) * 1000
    check = index.query(12.0, distance)
    truth = PairScan(first2, second2).query(12.0, distance)
    assert np.array_equal(check.pairs, truth.pairs)
    print(f"\nsingle-object course change re-keyed {second2.n} pair rows in "
          f"{update_ms:.2f} ms; queries stay exact")


if __name__ == "__main__":
    main()
