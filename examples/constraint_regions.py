"""Linear-constraint regions, ranges, EXPLAIN, and persistence.

Shows the features layered on top of the core Planar index:

* conjunctions (AND) and disjunctions (OR) of scalar product constraints
  — the "linear constraint queries" the paper's Related Work points at,
* BETWEEN ranges served by a single index pass,
* EXPLAIN-style plan introspection, and
* saving the index to disk and reloading it.

Run:  python examples/constraint_regions.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import FunctionIndex, QueryModel, load_index, save_index
from repro.datasets import independent


def main() -> None:
    points = independent(80_000, 4, rng=3).points
    model = QueryModel.uniform(dim=4, low=1.0, high=5.0, rq=4)
    index = FunctionIndex(points, model, n_indices=60, rng=0)
    rng = np.random.default_rng(1)

    # ---------------- conjunction: a polytope slice ------------------- #
    a1, a2 = model.sample_normal(rng), model.sample_normal(rng)
    constraints = [(a1, 700.0, "<="), (a2, 300.0, ">=")]
    answer = index.query_conjunction(constraints)
    truth = (points @ a1 <= 700.0) & (points @ a2 >= 300.0)
    assert np.array_equal(answer.ids, np.nonzero(truth)[0])
    print(f"conjunction (2 half-spaces): {len(answer):,} points, "
          f"{answer.pruned_fraction:.1%} decided by intervals alone")

    # ---------------- disjunction ------------------------------------- #
    answer = index.query_disjunction([(a1, 250.0, "<="), (a2, 900.0, ">=")])
    truth = (points @ a1 <= 250.0) | (points @ a2 >= 900.0)
    assert np.array_equal(answer.ids, np.nonzero(truth)[0])
    print(f"disjunction: {len(answer):,} points, "
          f"{answer.pruned_fraction:.1%} decided by intervals alone")

    # ---------------- BETWEEN range ----------------------------------- #
    ranged = index.query_range(a1, 400.0, 600.0)
    truth = (points @ a1 >= 400.0) & (points @ a1 <= 600.0)
    assert np.array_equal(ranged.ids, np.nonzero(truth)[0])
    print(f"range 400 <= <a, x> <= 600: {len(ranged):,} points "
          f"(verified only {ranged.stats.n_verified:,} of {len(points):,})")

    # ---------------- EXPLAIN ------------------------------------------ #
    plan = index.explain(a1, 500.0)
    print(f"\nEXPLAIN <a1, x> <= 500:")
    print(f"  route          : {plan['route']}")
    print(f"  selected index : #{plan['index_position']} "
          f"(strategy {plan['strategy']})")
    print(f"  intervals      : SI={plan['si_size']:,}  II={plan['ii_size']:,}  "
          f"LI={plan['li_size']:,}")
    matched = index.collection[0].normal
    plan = index.explain(matched, 500.0)
    print(f"EXPLAIN with an index-parallel normal: route={plan['route']}, "
          f"II={plan['ii_size']}")

    # ---------------- persistence -------------------------------------- #
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "household.npz"
        save_index(index, path)
        loaded = load_index(path)
        original = index.query(a1, 500.0)
        reloaded = loaded.query(a1, 500.0)
        assert np.array_equal(original.ids, reloaded.ids)
        size_mb = path.stat().st_size / 1e6
        print(f"\nsaved -> loaded round trip OK ({size_mb:.1f} MB archive, "
              f"{loaded.n_indices} indices rebuilt)")


if __name__ == "__main__":
    main()
