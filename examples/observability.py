"""Observability tour: metrics, tracing spans, and EXPLAIN reports.

Arms the ``repro.obs`` layer in-process (the CLI equivalent is
``REPRO_OBS=1``), runs a small query workload, then shows the three
signal families the layer collects:

1. an EXPLAIN report — which index the strategy chose and why, the
   SI/II/LI partition, and estimated vs. actual pruning,
2. the span tree of the last query — where its wall time went,
3. the metrics registry — counters and latency histograms, rendered as
   Prometheus exposition text ready for a scrape endpoint.

Run:  python examples/observability.py
"""

from __future__ import annotations

import numpy as np

from repro import FunctionIndex, QueryModel
from repro.obs import (
    clear_traces,
    disable,
    enable,
    enabled,
    metrics,
    recent_traces,
    to_prometheus,
)


def main() -> None:
    rng = np.random.default_rng(11)
    points = rng.uniform(1.0, 100.0, size=(50_000, 6))
    model = QueryModel.uniform(dim=6, low=1.0, high=5.0, rq=4)
    index = FunctionIndex(points, model, n_indices=20, rng=0)

    was_enabled = enabled()
    enable()  # same switch as REPRO_OBS=1
    clear_traces()

    # A small workload: inequality queries plus one top-k.
    for seed in range(8):
        normal = model.sample_normal(seed)
        offset = 0.25 * float(normal @ points.max(axis=0))
        index.query(normal, offset)
    normal = model.sample_normal(99)
    offset = 0.3 * float(normal @ points.max(axis=0))
    index.topk(normal, offset, k=10)

    # --- 1. EXPLAIN: why was this plan chosen, and was it any good? -- #
    report = index.explain_report(normal, offset)
    print(report.render())

    # --- 2. Spans: where did the last query spend its time? ---------- #
    print("\nlast trace:")
    print(recent_traces(limit=1)[0].render())

    # --- 3. Metrics: the workload in aggregate ----------------------- #
    queries = metrics.queries_total()
    total = sum(queries.series().values())
    latency = metrics.query_latency()
    n_latency = sum(series.count for series in latency.series().values())
    print(f"\nqueries recorded : {total:.0f}")
    print(f"latency samples  : {n_latency}")

    text = to_prometheus()
    print("\nprometheus exposition (first 12 lines):")
    print("\n".join(text.splitlines()[:12]))
    print("exposition complete:", len(text.splitlines()), "lines")

    if not was_enabled:
        disable()


if __name__ == "__main__":
    main()
