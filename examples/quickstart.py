"""Quickstart: index a function, answer scalar product queries exactly.

Builds a Planar index collection over synthetic data, answers inequality
and top-k queries, verifies them against a sequential scan, and shows the
dynamic-maintenance API.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import FunctionIndex, QueryModel, ScalarProductQuery, SequentialScan
from repro.datasets import independent


def main() -> None:
    rng = np.random.default_rng(7)

    # 100k points, 6 attributes in (1, 100) — the paper's Indp family.
    dataset = independent(100_000, 6, rng=rng)
    points = dataset.points

    # Query parameters a_i will come from a discrete domain with 4 values
    # per axis (the paper's RQ = 4 setting).  Domains are all the index
    # needs ahead of time: they fix the octant and guide normal sampling.
    model = QueryModel.uniform(dim=6, low=1.0, high=5.0, rq=4)
    index = FunctionIndex(points, model, n_indices=100, rng=0)
    print(f"built {index.n_indices} Planar indices over {len(index):,} points "
          f"({index.memory_bytes() / 1e6:.1f} MB)")

    # --- Problem 1: inequality query --------------------------------- #
    normal = model.sample_normal(rng)
    offset = 0.25 * float(normal @ points.max(axis=0))  # Eq. 18 offset
    answer = index.query(normal, offset)
    print(f"\ninequality query  <a, x> <= {offset:.1f}")
    print(f"  matches   : {len(answer):,}")
    print(f"  pruned    : {answer.stats.pruned_fraction:.1%} of points never "
          "had their scalar product computed")

    # Exactness check against the baseline.
    scan = SequentialScan(points)
    expected = scan.query(ScalarProductQuery(normal, offset))
    assert np.array_equal(answer.ids, expected)
    print("  exactness : identical to sequential scan")

    # --- Problem 2: top-k nearest neighbors to the hyperplane -------- #
    topk = index.topk(normal, offset, k=10)
    print(f"\ntop-10 satisfying points closest to the query hyperplane:")
    print(f"  distances : {np.round(topk.distances, 4)}")
    print(f"  checked   : {topk.checked_fraction:.1%} of the pool")

    # --- Dynamic maintenance (Section 4.4) --------------------------- #
    moved = rng.uniform(1.0, 100.0, size=(500, 6))
    index.update_points(np.arange(500), moved)
    fresh = index.insert_points(rng.uniform(1.0, 100.0, size=(250, 6)))
    index.delete_points(fresh[:100])
    print(f"\nafter update/insert/delete the index holds {len(index):,} points")
    answer = index.query(normal, offset)
    print(f"  queries remain exact: {len(answer):,} matches")


if __name__ == "__main__":
    main()
