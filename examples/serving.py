"""Serving tour: the HTTP query service end to end.

The library answers scalar-product queries in-process; ``repro.serve``
(see ``docs/serving.md``) puts them behind a network endpoint without
giving up the exactness story.  This walkthrough:

1. builds a sharded engine over integer-valued points (so every scalar
   product is exact in float64 and served answers can be compared to
   direct library calls bit-for-bit),
2. starts the service on an ephemeral port with two declared tenants —
   an unlimited interactive ``dashboard`` and a quota-limited
   best-effort ``analytics`` (token bucket: burst 5, 1 request/s),
3. drives concurrent mixed-tenant clients over keep-alive connections:
   inequality and top-k queries racing from many threads, which the
   micro-batcher coalesces into engine batch calls,
4. checks every served answer against the direct library call —
   identical ids and distances — and shows the quota sheds the
   ``analytics`` tenant earned (429 + Retry-After),
5. prints the service's own account of what happened: ``/healthz``,
   batching shape, and shed counters from ``/stats``.

Run:  python examples/serving.py
      python examples/serving.py --url http://127.0.0.1:8081   # attach
                                  # to an already-running `repro serve`
                                  # (skips the bit-identity check)
"""

from __future__ import annotations

import argparse
import json
import sys
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection
from urllib.parse import urlparse

import numpy as np

from repro import QueryModel
from repro.parallel import ShardedFunctionIndex
from repro.serve import ServiceConfig, TenantSpec, serve_in_thread


def http_json(host: str, port: int, method: str, path: str, body=None):
    """One request on a fresh connection; returns (status, headers, json)."""
    conn = HTTPConnection(host, port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        raw = response.read()
        try:
            decoded = json.loads(raw)
        except ValueError:
            decoded = raw.decode("utf-8", "replace")
        return response.status, dict(response.getheaders()), decoded
    finally:
        conn.close()


def run_client(host: str, port: int, requests: list) -> list:
    """Serially issue ``requests`` on one keep-alive connection."""
    conn = HTTPConnection(host, port, timeout=30)
    results = []
    try:
        for path, body in requests:
            conn.request("POST", path, body=json.dumps(body),
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            results.append((response.status, json.loads(response.read())))
    finally:
        conn.close()
    return results


def make_workload(model: QueryModel, maxima: np.ndarray, count: int, rng):
    """Integer-valued query parameters: exact scalar products in float64."""
    queries = []
    for _ in range(count):
        normal = rng.integers(1, 6, size=maxima.size).astype(np.float64)
        offset = float(round(0.25 * normal @ maxima))
        queries.append((normal, offset))
    return queries


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default=None,
                        help="attach to a running service instead of "
                        "starting one (chaos drills)")
    args, _ = parser.parse_known_args()

    rng = np.random.default_rng(11)
    points = rng.integers(1, 30, size=(20_000, 6)).astype(np.float64)
    model = QueryModel.uniform(dim=6, low=1.0, high=5.0, rq=4)
    maxima = points.max(axis=0)
    queries = make_workload(model, maxima, 48, rng)

    engine = handle = None
    if args.url:
        parsed = urlparse(args.url)
        host, port = parsed.hostname, parsed.port
        print(f"attaching to      : {args.url}")
    else:
        engine = ShardedFunctionIndex(
            points, model, n_indices=24, rng=0, n_shards=2
        )
        config = ServiceConfig(
            batch_window_s=0.020,   # generous window: show coalescing
            batch_max=32,
            queue_depth=64,
            tenants={
                "dashboard": TenantSpec("dashboard", priority=0),
                "analytics": TenantSpec(
                    "analytics", rate=1.0, burst=5.0, priority=1
                ),
            },
        )
        handle = serve_in_thread(engine, config)
        host, port = handle.host, handle.port
        print(f"listening on      : {handle.url} (ephemeral port)")

    try:
        status, _, health = http_json(host, port, "GET", "/healthz")
        assert status == 200, health
        print(f"healthz           : {health['points']:,} points, "
              f"{health['shards']} shard(s), backend {health['backend']}")

        # -- concurrent mixed-tenant load ----------------------------- #
        # 8 dashboard clients race 6 requests each (3 inequality + 3
        # top-k); the micro-batcher coalesces whatever lands in the same
        # window into one engine call per (op, comparison, k) group.
        client_jobs = []
        for client in range(8):
            jobs = []
            for i in range(3):
                normal, offset = queries[(client * 6 + i) % len(queries)]
                jobs.append(("/query", {
                    "normal": normal.tolist(), "offset": offset,
                    "op": "<=", "tenant": "dashboard",
                }))
                jobs.append(("/topk", {
                    "normal": normal.tolist(), "offset": offset,
                    "k": 10, "tenant": "dashboard",
                }))
            client_jobs.append(jobs)
        # One burst of 12 analytics requests against a bucket of 5.
        analytics_jobs = []
        for i in range(12):
            normal, offset = queries[i]
            analytics_jobs.append(("/query", {
                "normal": normal.tolist(), "offset": offset,
                "tenant": "analytics",
            }))
        client_jobs.append(analytics_jobs)

        with ThreadPoolExecutor(max_workers=len(client_jobs)) as pool:
            outcomes = list(pool.map(
                lambda jobs: run_client(host, port, jobs), client_jobs
            ))

        served_ok = sum(
            1 for results in outcomes for status, _ in results if status == 200
        )
        shed = [
            body for results in outcomes
            for status, body in results if status == 429
        ]
        print(f"served            : {served_ok} answers, {len(shed)} shed")
        if shed:
            reasons = sorted({body["reason"] for body in shed})
            print(f"shed reasons      : {', '.join(reasons)} "
                  f"(tenant {shed[0]['tenant']!r}, "
                  f"retry after {shed[0]['retry_after_s']}s)")

        # -- bit-identity against direct library calls ---------------- #
        if engine is not None:
            checked = 0
            for jobs, results in zip(client_jobs, outcomes):
                for (path, body), (status, answer) in zip(jobs, results):
                    if status != 200:
                        continue
                    normal = np.asarray(body["normal"])
                    if path == "/query":
                        direct = engine.query(normal, body["offset"],
                                              body.get("op", "<="))
                        assert answer["ids"] == direct.ids.tolist()
                    else:
                        direct = engine.topk(normal, body["offset"],
                                             k=body["k"])
                        assert answer["ids"] == direct.ids.tolist()
                        assert answer["distances"] == direct.distances.tolist()
                    checked += 1
            print(f"bit-identity      : {checked} served answers equal "
                  "direct library calls")

        status, _, stats = http_json(host, port, "GET", "/stats")
        assert status == 200
        batching = stats["batching"]
        print(f"batching          : {batching['batched_requests']} requests "
              f"in {batching['batches']} engine calls "
              f"(max batch {batching['max_batch']}, "
              f"mean {batching['mean_batch']})")
        print(f"sheds by reason   : {stats['shed']}")
        amortized = batching["max_batch"] > 1
        print(f"serving complete: {served_ok} bit-identical answers, "
              f"{len(shed)} requests shed at the front door, "
              f"coalescing {'observed' if amortized else 'idle'}")
    finally:
        if handle is not None:
            handle.stop()
        if engine is not None:
            engine.close()


if __name__ == "__main__":
    main()
