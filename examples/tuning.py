"""Workload-adaptive tuning tour: record -> advise -> apply.

The paper picks its index normals before the first query arrives
(Section 5.2); the ``repro.tuning`` subsystem closes the loop.  This
walkthrough:

1. builds a :class:`~repro.FunctionIndex` with a *blind* portfolio
   (normals sampled uniformly from the query domain),
2. arms the workload recorder (the CLI equivalent is
   ``REPRO_TUNE_RECORD=1``) and runs a *skewed* workload — every query
   clusters around one anchor direction the blind portfolio wastes most
   of its budget ignoring,
3. persists the workload and asks the :class:`~repro.Advisor` for a
   :class:`~repro.TuningPlan`, dry-runs it, round-trips it through JSON
   (see ``docs/persistence.md``), applies it,
4. re-runs the same workload and compares the measured mean
   intermediate-interval size — the number of points the index must
   verify exactly — before and after, checking the answers stayed
   bit-identical.

Run:  python examples/tuning.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import Advisor, FunctionIndex, QueryModel, apply_plan
from repro.datasets.workloads import eq18_offset, skewed_normals
from repro.tuning import (
    disable_recording,
    enable_recording,
    global_recorder,
    load_plan,
    recording_enabled,
    save_plan,
)


def run_workload(index: FunctionIndex, queries) -> tuple[list, float]:
    """Answer every query; return (sorted id arrays, mean measured |II|)."""
    ids, ii_sizes = [], []
    for normal, offset in queries:
        answer = index.query(normal, offset)
        ids.append(np.sort(answer.ids))
        if answer.stats is not None:
            ii_sizes.append(answer.stats.ii_size)
    return ids, float(np.mean(ii_sizes))


def main() -> None:
    rng = np.random.default_rng(3)
    points = rng.uniform(1.0, 100.0, size=(30_000, 6))
    model = QueryModel.uniform(dim=6, low=1.0, high=5.0, rq=4)
    index = FunctionIndex(points, model, n_indices=12, rng=0)

    # A skewed workload: 48 queries concentrated around one direction.
    maxima = points.max(axis=0)
    normals = skewed_normals(model, 48, concentration=0.9, rng=7)
    queries = [(n, eq18_offset(n, maxima, 0.25)) for n in normals]

    # --- 1. Record the workload (same switch as REPRO_TUNE_RECORD=1) - #
    was_recording = recording_enabled()
    enable_recording()
    global_recorder().clear()
    before_ids, before_ii = run_workload(index, queries)
    if not was_recording:
        disable_recording()
    print(f"recorded sketches : {len(global_recorder())}")
    print(f"mean |II| before  : {before_ii:8.1f} points verified per query")

    with tempfile.TemporaryDirectory() as tmp:
        # --- 2. Persist, advise, dry-run, round-trip, apply ---------- #
        workload_path = global_recorder().save(Path(tmp) / "workload.npz")
        print(f"workload archive  : {workload_path.name} "
              "(format in docs/persistence.md)")

        plan = Advisor(index).advise(budget=12, n_candidates=64, seed=0)
        print()
        print(plan.render())

        dry = apply_plan(index, plan, dry_run=True)
        assert not dry["applied"], "dry-run must never mutate"

        plan_path = save_plan(plan, Path(tmp) / "plan.json")
        plan = load_plan(plan_path)  # what `repro tune apply` does
        summary = apply_plan(index, plan)
        print(f"\napplied           : +{summary['added']} / "
              f"-{summary['dropped']} normals "
              f"({summary['n_indices']} total)")

    # --- 3. Same workload, tuned portfolio --------------------------- #
    after_ids, after_ii = run_workload(index, queries)
    identical = all(
        np.array_equal(a, b) for a, b in zip(before_ids, after_ids)
    )
    assert identical, "tuning must never change query answers"
    reduction = 100.0 * (1.0 - after_ii / before_ii)
    print(f"mean |II| after   : {after_ii:8.1f}")
    print(f"answers identical : {identical}")
    print(f"tuning complete: answers bit-identical, "
          f"mean |II| cut by {reduction:.0f}%")


if __name__ == "__main__":
    main()
