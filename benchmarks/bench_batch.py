"""Benchmark: batched vs one-at-a-time inequality queries.

``query_batch`` groups queries by selected index and answers each group's
binary searches with one vectorized ``searchsorted``; this bench measures
the amortization against a loop of single queries on an identical
workload.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import FunctionIndex
from repro.bench import print_table
from repro.datasets import Workload, load

from conftest import scaled

_N_POINTS = scaled(60_000)


def test_batch_vs_single(benchmark):
    points = load("indp", _N_POINTS, 6, rng=0).points
    workload = Workload.for_points(points, rq=2)
    index = FunctionIndex(points, workload.model, n_indices=64, rng=0)
    queries = workload.sample_queries(64, rng=1)
    normals = np.vstack([q.normal for q in queries])
    offsets = np.array([q.offset for q in queries])

    def best_of(func, repeat=3):
        best, result = float("inf"), None
        for _ in range(repeat):
            start = time.perf_counter()
            result = func()
            best = min(best, time.perf_counter() - start)
        return result, best

    def measure():
        index.query_batch(normals[:4], offsets[:4])  # warm
        batched, batch_s = best_of(lambda: index.query_batch(normals, offsets))
        singles, single_s = best_of(
            lambda: [index.query(n, o) for n, o in zip(normals, offsets)]
        )
        for one, many in zip(singles, batched):
            assert np.array_equal(one.ids, many.ids)
        return {
            "queries": len(queries),
            "batched_ms": batch_s * 1000,
            "single_ms": single_s * 1000,
            "amortization_x": single_s / batch_s,
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table("Batched vs single inequality queries (64 queries)", [row])
    # Identical answers were asserted; batching must not be slower by more
    # than measurement noise.
    assert row["batched_ms"] < row["single_ms"] * 1.25
    # GEMM batching gate: with real cores behind BLAS and the full-size
    # dataset, one (queries x points) matmul plus grouped searchsorted
    # must beat the per-query loop by >= 5x.  Skip-guarded like the
    # core-count gates in bench_parallel so laptops and smoke runs
    # (REPRO_BENCH_SCALE < 1) still verify answers and print the ratio.
    if len(points) >= 60_000 and (os.cpu_count() or 1) >= 4:
        assert row["amortization_x"] >= 5.0, (
            f"GEMM batching reached only {row['amortization_x']:.2f}x "
            f"over the per-query loop"
        )
