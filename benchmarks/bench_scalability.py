"""Figure 12 (and Table 1's empirical side) — scalability with cardinality.

Index build time should grow loglinearly in n and query time sublinearly,
while the sequential baseline grows linearly (d = 6, RQ = 4).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import print_table, run_scalability_experiment

from conftest import scaled

SIZES = tuple(scaled(n) for n in (20_000, 60_000, 100_000, 140_000, 200_000))


@pytest.mark.parametrize("dataset_name", ["indp", "corr", "anti"])
def test_fig12_scalability(benchmark, dataset_name):
    rows = benchmark.pedantic(
        run_scalability_experiment,
        args=(dataset_name, SIZES),
        kwargs={"n_indices": 50, "n_queries": 10, "rng": 0},
        rounds=1,
        iterations=1,
    )
    print_table(
        f"Fig 12 ({dataset_name}): scalability, d=6, RQ=4, #index=50 "
        "(paper: build loglinear, query sublinear, baseline linear)",
        rows,
    )
    first, last = rows[0], rows[-1]
    size_ratio = last["n_points"] / first["n_points"]
    # Build time grows at most ~loglinearly.  The slack absorbs the log
    # factor plus the cache-hierarchy step once key arrays outgrow L2.
    assert last["build_s"] < first["build_s"] * size_ratio * 4.0
    # Baseline grows roughly linearly; planar query grows sublinearly
    # relative to the baseline's growth.
    baseline_growth = last["baseline_ms"] / max(first["baseline_ms"], 1e-9)
    planar_growth = last["planar_ms"] / max(first["planar_ms"], 1e-9)
    assert planar_growth < baseline_growth * 1.5


def test_table1_query_complexity_slope(benchmark, synthetic_cache):
    """Empirical cross-check of the Table 1 query bound O(d log n + t):
    with a parallel index (II = 0) the query time must grow far slower
    than n."""
    import time

    from repro.core import FunctionIndex
    from repro.datasets import Workload

    def measure():
        timings = []
        for n in (scaled(50_000), scaled(200_000)):
            points = synthetic_cache("indp", n, 6)
            # Tiny inequality parameter => near-empty result set, so the
            # O(t) output term does not mask the O(d' log n) search term.
            workload = Workload.for_points(points, rq=2, inequality_parameter=0.05)
            index = FunctionIndex(points, workload.model, n_indices=64, rng=0)
            query = workload.sample_query(rng=1)
            index.query(query.normal, query.offset)
            start = time.perf_counter()
            for _ in range(20):
                index.query(query.normal, query.offset)
            timings.append((time.perf_counter() - start) / 20)
        return timings

    small, large = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nTable 1 empirical: query time at n=50k {small*1e3:.3f} ms, "
          f"n=200k {large*1e3:.3f} ms (4x data)")
    # 4x the data must cost far less than 4x the time for a matched query.
    assert large < small * 3.0
