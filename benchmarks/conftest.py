"""Shared fixtures for the benchmark suite.

Benchmarks run at laptop scale (tens of thousands of points instead of the
paper's 1M; hundreds of moving objects instead of 5K) — the reproduced
quantity is the *shape* of each figure, not absolute milliseconds.  Set
``REPRO_BENCH_SCALE`` to scale the dataset sizes (e.g. ``10`` approaches
the paper's setup; default 1).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.datasets import load

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def scaled(base: int) -> int:
    """Apply the global scale factor to a dataset size."""
    return int(base * SCALE)


@pytest.fixture(scope="session")
def synthetic_cache():
    """Memoized synthetic datasets keyed by (name, n, dim)."""
    cache: dict[tuple[str, int, int], np.ndarray] = {}

    def get(name: str, n: int, dim: int) -> np.ndarray:
        key = (name, n, dim)
        if key not in cache:
            cache[key] = load(name, n, dim, rng=hash(key) % (2**32)).points
        return cache[key]

    return get
