"""Overhead of the @array_contract decorator with the sanitizer off.

The acceptance bar for the contracts subsystem: in the default
configuration (``REPRO_SANITIZE`` unset) decorated entry points must cost
the same as undecorated ones — the decorator returns the *original
function object*, so any measured difference is noise.  This benchmark
demonstrates that two ways:

1. structurally — the hot entry points are literally the same objects a
   bare ``def`` would produce (no wrapper frame, identity check), and
2. empirically — end-to-end ``PlanarIndex.query`` latency through the
   decorated call chain is within 1% of calling the same underlying
   machinery with the contract layer bypassed.

For contrast, the sanitized mode's cost is measured too (informational:
it pays ``inspect.Signature.bind`` plus array checks per call, which is
why it is opt-in).
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.contracts import checked, sanitize_enabled
from repro.bench import print_table
from repro.core import PlanarIndex, ScalarProductQuery

from conftest import scaled

N_POINTS = scaled(200_000)
DIM = 6
N_QUERIES = 400


def _build(rng: np.random.Generator) -> tuple[PlanarIndex, list[ScalarProductQuery]]:
    points = rng.uniform(1.0, 100.0, size=(N_POINTS, DIM))
    index = PlanarIndex.from_features(points, np.ones(DIM))
    queries = [
        ScalarProductQuery(rng.uniform(1.0, 5.0, DIM), float(rng.uniform(100, 1200)))
        for _ in range(N_QUERIES)
    ]
    return index, queries


def _time_queries(index: PlanarIndex, queries: list[ScalarProductQuery]) -> float:
    start = time.perf_counter()
    for query in queries:
        index.query(query)
    return (time.perf_counter() - start) / len(queries)


def test_decorator_is_identity_when_disabled():
    """Structural zero-overhead proof: no wrapper is installed by default."""
    if sanitize_enabled():
        import pytest

        pytest.skip("benchmark process running under REPRO_SANITIZE=1")
    from repro.core.feature_store import FeatureStore
    from repro.core.sorted_keys import SortedKeyStore

    for fn in (
        FeatureStore.take_rows,
        FeatureStore.get,
        SortedKeyStore.update_batch,
        PlanarIndex.rekey,
    ):
        assert getattr(fn, "__array_contract__", None) is not None
        assert not getattr(fn, "__array_contract_checked__", False)
        # functools.wraps would set __wrapped__; the original object has none.
        assert not hasattr(fn, "__wrapped__")


def test_sanitizer_off_overhead_below_one_percent(benchmark):
    """Empirical check: decorated vs bypassed call chain, same process.

    Both arms execute identical numpy work; the only difference is the
    (absent) contract layer.  The median of several interleaved rounds is
    compared to absorb scheduler noise, with a 1% acceptance bar on the
    decorated/bypassed ratio.
    """
    rng = np.random.default_rng(99)
    index, queries = _build(rng)

    # Bypass arm: the same query machinery invoked through plain, never-
    # decorated closures (what the module would look like without the
    # decorator at all).
    def bypassed() -> None:
        for query in queries:
            wq = index.working_query(query)
            r_lo, r_hi, _ = index.interval_ranks(wq)
            index.finish_query(wq, r_lo, r_hi)

    def decorated() -> None:
        for query in queries:
            index.query(query)

    # Warm up caches and BLAS threads.
    bypassed()
    decorated()

    rounds = 7
    ratios = []
    times_dec = []
    times_byp = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        decorated()
        t1 = time.perf_counter()
        bypassed()
        t2 = time.perf_counter()
        times_dec.append(t1 - t0)
        times_byp.append(t2 - t1)
        ratios.append((t1 - t0) / (t2 - t1))

    med_dec = float(np.median(times_dec)) / N_QUERIES
    med_byp = float(np.median(times_byp)) / N_QUERIES
    ratio = float(np.median(ratios))
    benchmark.pedantic(decorated, rounds=1, iterations=1)

    print_table(
        "Sanitizer-off overhead on PlanarIndex.query",
        [
            {
                "decorated_us": med_dec * 1e6,
                "bypassed_us": med_byp * 1e6,
                "ratio": ratio,
            }
        ],
    )
    assert ratio < 1.01, (
        f"decorated/bypassed median ratio {ratio:.4f} exceeds the 1% bar "
        f"({med_dec * 1e6:.2f} us vs {med_byp * 1e6:.2f} us per query)"
    )


def test_sanitized_mode_cost_is_bounded(benchmark):
    """Informational: the armed checker's per-call cost on a small entry point.

    Uses ``contracts.checked`` to build the wrapper in-process (the env
    flag is import-time).  Not a gate beyond a sanity ceiling — sanitize
    mode is a debug configuration, not a production one.
    """
    from repro.core.feature_store import FeatureStore

    rng = np.random.default_rng(3)
    store = FeatureStore(rng.uniform(1.0, 9.0, (10_000, DIM)))
    armed_get = checked(FeatureStore.get)
    ids = np.arange(64, dtype=np.int64)

    def armed() -> None:
        for _ in range(100):
            armed_get(store, ids)

    plain_s = time.perf_counter()
    for _ in range(100):
        store.get(ids)
    plain_elapsed = time.perf_counter() - plain_s

    benchmark.pedantic(armed, rounds=1, iterations=1)
    start = time.perf_counter()
    armed()
    armed_elapsed = time.perf_counter() - start

    print_table(
        "Sanitized-mode cost (FeatureStore.get, 64-row gather)",
        [
            {
                "plain_us": plain_elapsed / 100 * 1e6,
                "armed_us": armed_elapsed / 100 * 1e6,
            }
        ],
    )
    # Generous ceiling: the armed path must stay usable for debugging runs.
    assert armed_elapsed < plain_elapsed * 200
