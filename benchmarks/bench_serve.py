"""Benchmark: served throughput with and without micro-batching.

A closed loop of 64 concurrent HTTP clients drives the query service
twice over the same engine and workload: once with the coalescing
window disabled (``window=0`` — every request is its own engine call,
the strict-passthrough baseline) and once with a 5 ms window.  The
micro-batcher turns the concurrent closed loop into
``query_batch`` calls of up to 64 members, so the windowed
configuration must amortize: the acceptance gate is **>= 3x** the
baseline throughput on a multi-core host at full benchmark scale.

Smoke runs (``REPRO_BENCH_SCALE < 1``) and small machines still run
both configurations, verify every request was answered, and print the
measured ratio — they only skip the ratio assertion, like the
core-count gates in ``bench_parallel``.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection

import numpy as np

from repro import QueryModel
from repro.bench import print_table
from repro.parallel import ShardedFunctionIndex
from repro.serve import ServiceConfig, serve_in_thread

from conftest import scaled

_N_POINTS = scaled(40_000)
_N_CLIENTS = 64
_REQUESTS_PER_CLIENT = max(2, scaled(8))


def _client_loop(host: str, port: int, jobs: list) -> int:
    """One closed-loop client: next request only after the previous answer."""
    conn = HTTPConnection(host, port, timeout=60)
    answered = 0
    try:
        for body in jobs:
            conn.request(
                "POST", "/query", body=json.dumps(body),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = response.read()
            assert response.status == 200, payload
            answered += 1
    finally:
        conn.close()
    return answered


def _drive(engine, window_s: float, workload: list) -> dict:
    """Serve ``engine`` with one window setting; return throughput stats."""
    config = ServiceConfig(
        batch_window_s=window_s,
        batch_max=_N_CLIENTS,
        queue_depth=1024,
    )
    handle = serve_in_thread(engine, config)
    try:
        per_client = [
            [
                workload[(client + i) % len(workload)]
                for i in range(_REQUESTS_PER_CLIENT)
            ]
            for client in range(_N_CLIENTS)
        ]
        # Warm the path (connection setup, first-touch engine caches).
        _client_loop(handle.host, handle.port, [workload[0]])
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=_N_CLIENTS) as pool:
            answered = sum(
                pool.map(
                    lambda jobs: _client_loop(handle.host, handle.port, jobs),
                    per_client,
                )
            )
        elapsed = time.perf_counter() - start
        stats = handle.service.stats()
        assert answered == _N_CLIENTS * _REQUESTS_PER_CLIENT
        assert stats["shed"] == {"quota": 0, "queue_full": 0, "brownout": 0}
        return {
            "window_ms": window_s * 1000,
            "answered": answered,
            "throughput_qps": answered / elapsed,
            "mean_batch": stats["batching"]["mean_batch"],
            "max_batch": stats["batching"]["max_batch"],
        }
    finally:
        handle.stop()


def test_serve_batching_amortization(benchmark):
    rng = np.random.default_rng(5)
    points = rng.integers(1, 30, size=(_N_POINTS, 6)).astype(np.float64)
    model = QueryModel.uniform(dim=6, low=1.0, high=5.0, rq=4)
    maxima = points.max(axis=0)
    workload = []
    for _ in range(_N_CLIENTS):
        normal = rng.integers(1, 6, size=6).astype(np.float64)
        workload.append({
            "normal": normal.tolist(),
            "offset": float(round(0.25 * normal @ maxima)),
        })

    engine = ShardedFunctionIndex(points, model, n_indices=32, rng=0, n_shards=2)
    try:
        def measure():
            baseline = _drive(engine, 0.0, workload)
            windowed = _drive(engine, 0.005, workload)
            return baseline, windowed

        baseline, windowed = benchmark.pedantic(measure, rounds=1, iterations=1)
    finally:
        engine.close()

    ratio = windowed["throughput_qps"] / baseline["throughput_qps"]
    print_table(
        f"Served throughput, {_N_CLIENTS} closed-loop clients "
        f"({_REQUESTS_PER_CLIENT} requests each)",
        [baseline, windowed],
    )
    print(f"  amortization: {ratio:.2f}x over window=0")
    # The window must actually coalesce under a 64-wide closed loop.
    assert windowed["max_batch"] > 1
    # Throughput gate: needs real cores (the baseline saturates the
    # executor with per-request engine calls) and the full-size dataset
    # (tiny engines answer faster than HTTP overhead, hiding the
    # amortization).  Guarded like bench_batch's GEMM gate.
    if _N_POINTS >= 40_000 and (os.cpu_count() or 1) >= 4:
        assert ratio >= 3.0, (
            f"micro-batching reached only {ratio:.2f}x over the "
            f"window=0 baseline"
        )
