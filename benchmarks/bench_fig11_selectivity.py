"""Figure 11 — query selectivity and query time vs the inequality parameter.

Inequality parameter in {0.10, 0.25, 0.50, 0.75, 1.00}, d in {6, 10},
RQ = 4, 100 indices.  Paper shape: selectivity grows monotonically with
the parameter; query time is unimodal with its maximum near 0.50-0.75
(extreme offsets let the intervals accept/reject nearly everything).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import print_table, run_selectivity_experiment

from conftest import scaled

PARAMETERS = (0.10, 0.25, 0.50, 0.75, 1.00)


@pytest.mark.parametrize("dim", [6, 10])
def test_fig11_selectivity_sweep(benchmark, synthetic_cache, dim):
    def sweep():
        rows = []
        for name in ("indp", "corr", "anti"):
            points = synthetic_cache(name, scaled(60_000), dim)
            for row in run_selectivity_experiment(
                points, PARAMETERS, n_queries=10, rng=1
            ):
                rows.append({"dataset": name, **row})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"Fig 11 (dimension={dim}): selectivity & query time vs inequality "
        "parameter (paper: selectivity rises; time peaks at 0.5-0.75)",
        rows,
    )
    for name in ("indp", "corr", "anti"):
        series = [r for r in rows if r["dataset"] == name]
        selectivities = [r["selectivity_pct"] for r in series]
        # Monotone selectivity (Fig 11 a/c).
        assert all(
            later >= earlier - 1.0
            for earlier, later in zip(selectivities, selectivities[1:])
        ), name
        # The extremes must select almost nothing / almost everything.
        assert selectivities[0] < 25.0
        assert selectivities[-1] > 75.0
        # The mechanism behind the paper's unimodal time curve (Fig 11 b/d):
        # extreme inequality parameters let the intervals decide nearly
        # everything, so interval pruning at the extremes dominates pruning
        # at the middle.  (Asserted on pruning, not wall time, because
        # single-run timings are too noisy for a shape test.)
        pruning = [r["pruning_pct"] for r in series]
        assert max(pruning[0], pruning[-1]) >= max(pruning[1:4]) - 10.0
