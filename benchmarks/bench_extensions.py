"""Benchmarks for the extension features beyond the paper's evaluation.

* adaptive octant index: convergence of query time as observed normals are
  folded into the index set (the Section 8 "update indices from past
  queries" direction),
* continuous (windowed) intersection join vs its brute-force oracle,
* conjunctive constraint queries vs scanning the conjunction.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import FunctionIndex, QueryModel, ScalarProductQuery
from repro.bench import print_table
from repro.datasets import load
from repro.extensions import AdaptiveOctantIndex
from repro.moving import ContinuousLinearJoin, uniform_linear_workload

from conftest import scaled


def test_adaptive_convergence(benchmark):
    """Repeating a workload makes the adaptive index converge to parallel
    indices: the intermediate interval shrinks round over round."""
    rng = np.random.default_rng(0)
    points = rng.normal(0.0, 5.0, size=(scaled(60_000), 5))

    def measure():
        adaptive = AdaptiveOctantIndex(points, max_indices_per_octant=16, rng=0)
        base_normal = np.array([1.0, -2.0, 0.5, 1.5, -1.0])
        rows = []
        for round_number in range(4):
            # A tight cluster of recurring queries around the same normal.
            ii_sizes = []
            for jitter_seed in range(6):
                jitter = np.random.default_rng(jitter_seed).uniform(0.9, 1.1, 5)
                answer = adaptive.query(base_normal * jitter, 2.0)
                ii_sizes.append(answer.stats.ii_size if answer.stats else len(points))
            rows.append(
                {
                    "round": round_number,
                    "indices_held": adaptive.n_indices(base_normal),
                    "mean_ii": float(np.mean(ii_sizes)),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table("Extension: adaptive index convergence under a recurring workload", rows)
    assert rows[-1]["mean_ii"] <= rows[0]["mean_ii"]


def test_continuous_join(benchmark):
    first, second = uniform_linear_workload(scaled(300), space=500.0, rng=0)
    join = ContinuousLinearJoin(first, second, rng=0)

    def measure():
        start = time.perf_counter()
        result = join.query(10.0, 15.0, 10.0)
        planar_s = time.perf_counter() - start
        start = time.perf_counter()
        truth = join.brute_force(10.0, 15.0, 10.0)
        brute_s = time.perf_counter() - start
        assert np.array_equal(result.pairs, truth)
        return {
            "pairs": len(result),
            "candidates": result.n_candidates,
            "total_pairs": result.n_total,
            "planar_ms": planar_s * 1000,
            "brute_ms": brute_s * 1000,
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table("Extension: continuous within-distance join over [10, 15]", [row])
    assert row["candidates"] < 0.5 * row["total_pairs"]


def test_conjunction_queries(benchmark):
    points = load("indp", scaled(60_000), 5, rng=0).points
    model = QueryModel.uniform(dim=5, low=1.0, high=5.0, rq=4)
    index = FunctionIndex(points, model, n_indices=60, rng=0)
    rng = np.random.default_rng(1)

    def measure():
        rows = []
        for n_constraints in (2, 3):
            constraints = [
                ScalarProductQuery(
                    model.sample_normal(rng), float(rng.uniform(400, 900))
                )
                for _ in range(n_constraints)
            ]
            start = time.perf_counter()
            answer = index.query_conjunction(constraints)
            planar_ms = (time.perf_counter() - start) * 1000
            mask = np.ones(len(points), dtype=bool)
            start = time.perf_counter()
            for constraint in constraints:
                mask &= constraint.evaluate(points)
            scan_ms = (time.perf_counter() - start) * 1000
            assert np.array_equal(answer.ids, np.nonzero(mask)[0])
            rows.append(
                {
                    "constraints": n_constraints,
                    "matches": len(answer),
                    "pruned_pct": 100 * answer.pruned_fraction,
                    "planar_ms": planar_ms,
                    "scan_ms": scan_ms,
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table("Extension: conjunctive linear-constraint queries", rows)
    for row in rows:
        assert row["pruned_pct"] >= 0.0
