"""Table 3 — top-k nearest-neighbor queries on Indp (d=6, RQ=4, 100 idx).

Paper: k in {50, 1000, 10000}; Planar checks 10.97-12.62 %% of the points
and achieves ~2.5x speedup over the sequential scan (89 ms baseline).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import print_table, run_topk_experiment
from repro.core import FunctionIndex
from repro.datasets import Workload

from conftest import scaled

N_POINTS = scaled(100_000)


def test_table3_topk(benchmark, synthetic_cache):
    points = synthetic_cache("indp", N_POINTS, 6)
    rows = benchmark.pedantic(
        run_topk_experiment,
        args=(points, (50, 1000, 10_000)),
        kwargs={"n_queries": 10, "rng": 0},
        rounds=1,
        iterations=1,
    )
    print_table(
        "Table 3: top-k NN, Indp d=6 RQ=4 #index=100 "
        "(paper: ~11-12.6%% checked, ~2.5x speedup)",
        rows,
    )
    for row in rows:
        # The checked fraction should stay in the paper's low-tens regime.
        assert row["checked_pct"] < 50.0, row
    # Checked fraction grows (weakly) with k, as in the paper.
    assert rows[-1]["checked_pct"] >= rows[0]["checked_pct"] - 1.0


def test_topk_single_query_latency(benchmark, synthetic_cache):
    points = synthetic_cache("indp", N_POINTS, 6)
    workload = Workload.for_points(points, rq=4)
    index = FunctionIndex(points, workload.model, n_indices=100, rng=0)
    query = workload.sample_query(rng=3)
    result = benchmark(lambda: index.topk(query.normal, query.offset, 50))
    assert len(result) == 50
