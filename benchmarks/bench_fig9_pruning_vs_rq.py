"""Figure 9 — pruning percentage vs randomness of query (RQ).

Grid: dimension in {2, 6, 10, 14}, RQ in {2, 4, 8, 12}, 100 indices.
Paper shape: ~90-100 % pruning at d <= 6 / RQ <= 4, degrading to ~40-50 %
at d = 14 / RQ = 12; *anti* prunes worst at high dimension.
"""

from __future__ import annotations

import pytest

from repro.bench import print_table, run_query_experiment

from conftest import scaled

N_POINTS = 20_000  # pruning fractions are essentially size-independent


@pytest.mark.parametrize("dim", [2, 6, 10, 14])
def test_fig9_pruning_vs_rq(benchmark, synthetic_cache, dim):
    def sweep():
        rows = []
        for name in ("indp", "corr", "anti"):
            points = synthetic_cache(name, scaled(N_POINTS), dim)
            for rq in (2, 4, 8, 12):
                cell = run_query_experiment(
                    points, rq=rq, n_indices=100, n_queries=15, rng=rq
                )
                rows.append(
                    {"dataset": name, "RQ": rq, "pruning_pct": cell["pruning_pct"]}
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"Fig 9 (dimension={dim}): pruning %% vs RQ, #index=100 "
        "(paper: 90-100%% at low d/RQ, 40-50%% at d=14/RQ=12)",
        rows,
    )
    if dim <= 6:
        for row in rows:
            if row["RQ"] <= 4:
                assert row["pruning_pct"] > 60.0, row
        # Pruning at RQ=2 should dominate pruning at RQ=12.  (Only asserted
        # at low dimension: at d >= 10 the RQ=2 grid is so coarse that a
        # *missed* query is maximally misaligned, which can invert the
        # trend — the paper's Fig 9c/d curves are similarly non-monotone.)
        for name in ("indp", "corr", "anti"):
            series = {r["RQ"]: r["pruning_pct"] for r in rows if r["dataset"] == name}
            assert series[2] >= series[12] - 10.0, name
