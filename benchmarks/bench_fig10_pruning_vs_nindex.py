"""Figure 10 — pruning percentage vs number of Planar indices.

Grid: dimension in {2, 6, 10, 14}, #index in {1, 10, 50, 100}, RQ = 4.
Paper shape: pruning improves monotonically with the index budget.
"""

from __future__ import annotations

import pytest

from repro.bench import print_table, run_query_experiment

from conftest import scaled

N_POINTS = 20_000


@pytest.mark.parametrize("dim", [2, 6, 10, 14])
def test_fig10_pruning_vs_nindex(benchmark, synthetic_cache, dim):
    def sweep():
        rows = []
        for name in ("indp", "corr", "anti"):
            points = synthetic_cache(name, scaled(N_POINTS), dim)
            for n_indices in (1, 10, 50, 100):
                cell = run_query_experiment(
                    points, rq=4, n_indices=n_indices, n_queries=15, rng=3
                )
                rows.append(
                    {
                        "dataset": name,
                        "n_indices": n_indices,
                        "pruning_pct": cell["pruning_pct"],
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"Fig 10 (dimension={dim}): pruning %% vs #index, RQ=4 "
        "(paper: pruning grows with the budget)",
        rows,
    )
    for name in ("indp", "corr", "anti"):
        series = [r["pruning_pct"] for r in rows if r["dataset"] == name]
        assert series[-1] >= series[0] - 1.0, name
