"""Benchmark: workload-adaptive advisor vs blind domain sampling.

The paper fixes its index normals by sampling the query-parameter domains
before any query arrives (Section 5.2).  The advisor replays a recorded
workload through the paper's own estimators and re-plans the portfolio.
This benchmark measures the payoff on a *skewed* workload (the shape real
dashboards produce — see :func:`repro.datasets.workloads.skewed_normals`):

* **Pruning** — at equal index budget r, the advised portfolio must cut
  the measured mean |II| over the workload by at least 25% versus the
  blind random portfolio (the tuning subsystem's acceptance criterion; in
  practice the cut is far deeper on concentrated workloads).
* **Correctness** — every query's result ids stay bit-identical before
  and after ``apply_plan`` (tuning only moves the pruning boundary, never
  the exact verification).
* **Cost** — the advise step itself is timed, so regressions in the
  vectorized candidate simulation show up here.

Scale with ``REPRO_BENCH_SCALE`` as usual (CI smokes at 0.05).
"""

from __future__ import annotations

import time

import numpy as np

from repro import FunctionIndex, QueryModel
from repro.bench import print_table
from repro.datasets import load
from repro.datasets.workloads import eq18_offset, skewed_normals
from repro.tuning import Advisor, QuerySketch, apply_plan

from conftest import scaled

_N_POINTS = scaled(60_000)
_N_QUERIES = 96
_N_INDICES = 12
_CONCENTRATION = 0.9


def _skewed_setup(n_points: int):
    """Index + skewed Eq. 18 workload sketches over one synthetic dataset."""
    points = load("indp", n_points, 6, rng=0).points
    model = QueryModel.uniform(dim=6, low=1.0, high=5.0, rq=4)
    index = FunctionIndex(points, model, n_indices=_N_INDICES, rng=0)
    maxima = points.max(axis=0)
    normals = skewed_normals(model, _N_QUERIES, _CONCENTRATION, rng=7)
    sketches = tuple(
        QuerySketch(normal, eq18_offset(normal, maxima, 0.25))
        for normal in normals
    )
    return index, sketches


def _measured_ii(index: FunctionIndex, sketches) -> tuple[float, list[np.ndarray]]:
    """Mean executed |II| and the exact result ids per query."""
    sizes, ids = [], []
    for sketch in sketches:
        answer = index.query(sketch.normal, sketch.offset, op=sketch.op)
        sizes.append(answer.stats.ii_size if answer.stats is not None else len(index))
        ids.append(answer.ids)
    return float(np.mean(sizes)), ids


def test_advisor_vs_blind_sampling(benchmark):
    """Advised portfolio must cut mean |II| >= 25% at equal budget r."""
    index, sketches = _skewed_setup(_N_POINTS)

    def measure():
        before_ii, before_ids = _measured_ii(index, sketches)
        advisor = Advisor(index, sketches=sketches)
        started = time.perf_counter()
        plan = advisor.advise(budget=_N_INDICES, n_candidates=64, seed=0)
        advise_s = time.perf_counter() - started
        apply_plan(index, plan)
        after_ii, after_ids = _measured_ii(index, sketches)
        for one, two in zip(before_ids, after_ids):
            assert np.array_equal(one, two), "tuning changed query results"
        return {
            "n_points": len(index),
            "r": _N_INDICES,
            "queries": len(sketches),
            "blind_ii": before_ii,
            "advised_ii": after_ii,
            "reduction_pct": 100.0 * (1.0 - after_ii / before_ii),
            "advise_ms": advise_s * 1000,
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        f"Advisor vs blind sampling (concentration {_CONCENTRATION})", [row]
    )
    assert row["reduction_pct"] >= 25.0, (
        f"advised portfolio cut mean |II| by only {row['reduction_pct']:.1f}% "
        "(acceptance bar is 25%)"
    )


def test_advise_determinism(benchmark):
    """Same workload + seed must reproduce the same plan, timed."""
    index, sketches = _skewed_setup(max(5_000, _N_POINTS // 4))
    advisor = Advisor(index, sketches=sketches)

    def measure():
        started = time.perf_counter()
        one = advisor.advise(budget=_N_INDICES, n_candidates=48, seed=11)
        first_s = time.perf_counter() - started
        two = advisor.advise(budget=_N_INDICES, n_candidates=48, seed=11)
        assert one.to_dict() == two.to_dict(), "advise is not deterministic"
        return {
            "n_points": len(index),
            "candidates": 48,
            "advise_ms": first_s * 1000,
            "adds": len(one.adds),
            "drops": len(one.drops),
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table("Advise determinism + cost", [row])
