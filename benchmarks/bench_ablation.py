"""Ablations of the design choices DESIGN.md calls out.

1. Best-index heuristic: min-stretch (paper's choice) vs min-angle vs
   random — the paper reports min-volume/min-stretch usually wins.
2. Redundant-normal dedup on/off: budget wasted on parallel indices.
3. Top-k LBS pruning: points checked with vs without the Claim 3 cutoff.
4. PCA preprocessing (future work): pruning on correlated data in reduced
   dimension vs full dimension.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import print_table, run_query_experiment
from repro.core import FunctionIndex, ScalarProductQuery
from repro.core.collection import dedupe_parallel_normals
from repro.datasets import Workload
from repro.extensions import PCAFilterIndex

from conftest import scaled

N_POINTS = scaled(60_000)


def test_ablation_selection_strategy(benchmark, synthetic_cache):
    points = synthetic_cache("indp", N_POINTS, 6)

    def sweep():
        rows = []
        for strategy in ("min_stretch", "min_angle", "random"):
            cell = run_query_experiment(
                points, rq=4, n_indices=50, n_queries=15, strategy=strategy, rng=5
            )
            rows.append(
                {
                    "strategy": strategy,
                    "planar_ms": cell["planar_ms"],
                    "pruning_pct": cell["pruning_pct"],
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Ablation 1: best-index selection (paper: min-volume/stretch wins)", rows
    )
    by_name = {r["strategy"]: r for r in rows}
    # The informed heuristics must beat blind random selection on pruning.
    assert by_name["min_stretch"]["pruning_pct"] >= by_name["random"]["pruning_pct"] - 2.0
    assert by_name["min_angle"]["pruning_pct"] >= by_name["random"]["pruning_pct"] - 2.0


def test_ablation_redundancy_dedup(benchmark):
    """With a small discrete domain, sampling wastes most of the budget on
    parallel normals; dedup recovers it."""
    rng = np.random.default_rng(0)
    workload_model_dim = 3

    def measure():
        from repro.core.domains import QueryModel

        model = QueryModel.uniform(dim=workload_model_dim, low=1.0, high=2.0, rq=2)
        normals = model.sample_normals(100, rng)
        kept = dedupe_parallel_normals(normals)
        return {"sampled": 100, "kept_after_dedup": int(kept.size)}

    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table("Ablation 2: redundant-normal dedup (RQ=2, d=3 => <= 8 distinct)", [row])
    assert row["kept_after_dedup"] <= 8


def test_ablation_topk_lbs_pruning(benchmark, synthetic_cache):
    """LBS pruning (Claim 3) vs exhausting the whole smaller interval.

    Measured in the regime the mechanism targets: a query served by a
    near-parallel index, where the intermediate interval is empty and
    *everything* satisfying sits in SI — without the LBS cutoff the scan
    would verify the entire result set instead of ~k points.
    """
    points = synthetic_cache("indp", N_POINTS, 6)
    # Selectivity ~50% so SI is large (the paper's Fig 11 middle regime).
    workload = Workload.for_points(points, rq=4, inequality_parameter=0.6)
    index = FunctionIndex(points, workload.model, n_indices=100, rng=0)

    def measure():
        rows = []
        for k in (50, 1000):
            checked = []
            si_sizes = []
            for position in range(8):
                # Query parallel to an existing index: the matched case.
                normal = index.collection[position].normal
                offset = 0.6 * float(normal @ points.max(axis=0))
                result = index.topk(normal, offset, k)
                answer = index.query(normal, offset)
                checked.append(result.n_checked)
                # Without LBS, Algorithm 2 would verify II plus ALL of SI.
                si_sizes.append(answer.stats.si_size + answer.stats.ii_size)
            rows.append(
                {
                    "k": k,
                    "checked_with_lbs": float(np.mean(checked)),
                    "checked_without_lbs": float(np.mean(si_sizes)),
                    "saving_x": float(np.mean(si_sizes)) / max(np.mean(checked), 1.0),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation 3: top-k LBS pruning (Claim 3), matched-index regime", rows
    )
    assert rows[0]["saving_x"] > 2.0


def test_ablation_pca_preprocessing(benchmark, rng=None):
    """Future-work extension: PCA filter on strongly correlated data."""
    generator = np.random.default_rng(0)
    latent = generator.normal(size=(scaled(40_000), 3))
    loadings = generator.normal(size=(3, 12))
    points = latent @ loadings + 0.05 * generator.normal(size=(scaled(40_000), 12))

    def measure():
        index = PCAFilterIndex(points, n_components=3, rng=0)
        pruned = []
        for seed in range(10):
            qrng = np.random.default_rng(seed)
            normal = qrng.normal(size=12)
            offset = float(qrng.uniform(-5, 5))
            answer = index.query(normal, offset)
            truth = np.nonzero(points @ normal <= offset)[0]
            assert np.array_equal(answer.ids, truth)
            pruned.append(answer.pruned_fraction)
        return {
            "reduced_dim": 3,
            "full_dim": 12,
            "mean_pruned_pct": 100.0 * float(np.mean(pruned)),
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation 4: PCA preprocessing (12-D correlated data filtered in 3-D)", [row]
    )
    assert row["mean_pruned_pct"] > 50.0
