"""Figure 6 — real-world datasets: query time and index build time.

(a) the Critical_Consume SQL function on the consumption data vs #indices,
(b, c) Eq. 18 queries on CMoment / CTexture vs RQ and #indices,
(d) per-dataset index construction time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import print_table, run_consumption_experiment, run_query_experiment
from repro.core import FunctionIndex
from repro.datasets import Workload, cmoment, consumption, consumption_workload, ctexture

from conftest import scaled


def test_fig6a_consumption_sql(benchmark):
    rows = benchmark.pedantic(
        run_consumption_experiment,
        args=(scaled(150_000), [10, 50, 100, 200]),
        kwargs={"n_queries": 20, "rng": 0},
        rounds=1,
        iterations=1,
    )
    print_table(
        "Fig 6(a): Consumption SQL function (paper: baseline 62 ms, 200 idx -> 9 ms, 7x)",
        rows,
    )
    # Shape check: some index budget must beat the scan.  (Asserted on the
    # best configuration — per-config single-shot timings carry noise of
    # the same order as the gap at this scale.)
    assert min(row["planar_ms"] for row in rows) < rows[0]["baseline_ms"]


@pytest.mark.parametrize("dataset_name", ["cmoment", "ctexture"])
def test_fig6bc_image_features(benchmark, dataset_name):
    factory = {"cmoment": cmoment, "ctexture": ctexture}[dataset_name]
    points = factory(scaled(30_000), rng=0).points

    def sweep():
        rows = []
        for rq in (2, 4, 8, 12):
            for n_indices in (1, 10, 50, 100):
                cell = run_query_experiment(
                    points, rq=rq, n_indices=n_indices, n_queries=10, rng=7
                )
                rows.append(
                    {
                        "RQ": rq,
                        "n_indices": n_indices,
                        "planar_ms": cell["planar_ms"],
                        "baseline_ms": cell["baseline_ms"],
                        "speedup": cell["speedup"],
                        "pruning_pct": cell["pruning_pct"],
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    label = "Fig 6(b)" if dataset_name == "cmoment" else "Fig 6(c)"
    print_table(f"{label}: {dataset_name} query time (paper: 2x / 150x at RQ=4)", rows)
    # Shape: at fixed RQ, more indices => pruning does not get worse.
    for rq in (2, 4):
        series = [r for r in rows if r["RQ"] == rq]
        assert series[-1]["pruning_pct"] >= series[0]["pruning_pct"] - 5.0


def test_fig6d_index_build_time(benchmark):
    consumption_points = consumption(scaled(150_000), rng=0).points
    cmoment_points = cmoment(scaled(30_000), rng=1).points
    ctexture_points = ctexture(scaled(30_000), rng=2).points
    workload = consumption_workload()

    def build_all():
        import time

        rows = []
        for name, points in (
            ("cmoment", cmoment_points),
            ("ctexture", ctexture_points),
            ("consumption", consumption_points),
        ):
            for n_indices in (1, 10, 50, 100, 200):
                start = time.perf_counter()
                if name == "consumption":
                    FunctionIndex(
                        points,
                        workload.model,
                        feature_map=workload.feature_map,
                        n_indices=n_indices,
                        rng=0,
                    )
                else:
                    wl = Workload.for_points(points, rq=None)
                    FunctionIndex(points, wl.model, n_indices=n_indices, rng=0)
                rows.append(
                    {
                        "dataset": name,
                        "n_indices": n_indices,
                        "build_s": time.perf_counter() - start,
                    }
                )
        return rows

    rows = benchmark.pedantic(build_all, rounds=1, iterations=1)
    print_table("Fig 6(d): index build time, real-world datasets (paper: 0.12-3.11 s/idx)", rows)
    # Shape: build time grows with the number of indices.
    for name in ("cmoment", "ctexture", "consumption"):
        series = [r["build_s"] for r in rows if r["dataset"] == name]
        assert series[-1] > series[0]


def test_consumption_single_query(benchmark):
    """Raw latency of one Critical_Consume query through 100 indices."""
    dataset = consumption(scaled(150_000), rng=0)
    workload = consumption_workload()
    index = FunctionIndex(
        dataset.points,
        workload.model,
        feature_map=workload.feature_map,
        n_indices=100,
        rng=0,
    )
    query = workload.query_for_threshold(0.45)
    result = benchmark(lambda: index.query(query.normal, query.offset))
    assert not result.used_fallback
