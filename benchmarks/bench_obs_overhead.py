"""Overhead of the observability layer with REPRO_OBS unset.

Acceptance bar (ISSUE 2): with the layer disabled — the default — the
instrumented ``PlanarIndex.query`` must stay within **2%** of a fully
uninstrumented reimplementation of the same pipeline.  The disabled path
costs one module-global read plus a branch per instrumented section, so
the measured difference should be deep in the noise.

Arms:

``instrumented``
    ``index.query(q)`` as shipped — guards compiled in, layer disabled.

``uninstrumented``
    The identical pipeline (working query → thresholds → binary search →
    II verification → materialize → stats) re-inlined here with *no* obs
    code at all, reproducing the pre-instrumentation module.

A second gate covers production telemetry (ISSUE 7): armed at
``REPRO_OBS_SAMPLE=0.01`` — always-on tracing with 1% head sampling —
the same query must stay within **5%** of the uninstrumented pipeline,
because unsampled traces mute every per-query span/metric and pay only
the trace-id draw plus the ``repro_traces_total`` bump.

An informational test also measures the fully-armed (sample everything)
cost, which is allowed to be visible (it is opt-in) but must stay
bounded.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import print_table
from repro.core import PlanarIndex, ScalarProductQuery
from repro.core.planar import QueryStats
from repro.obs import runtime as obs_runtime
from repro.obs import trace as obs_trace

from conftest import scaled

N_POINTS = scaled(200_000)
DIM = 6
N_QUERIES = 400


def _build(rng: np.random.Generator) -> tuple[PlanarIndex, list[ScalarProductQuery]]:
    points = rng.uniform(1.0, 100.0, size=(N_POINTS, DIM))
    index = PlanarIndex.from_features(points, np.ones(DIM))
    queries = [
        ScalarProductQuery(rng.uniform(1.0, 5.0, DIM), float(rng.uniform(100, 1200)))
        for _ in range(N_QUERIES)
    ]
    return index, queries


def _uninstrumented_query(index: PlanarIndex, query: ScalarProductQuery):
    """The exact disabled-path pipeline with every obs guard removed."""
    wq = index.working_query(query)
    # interval_ranks, inlined (planar._thresholds + two binary searches)
    t = index._working_normal * (wq.offset_w / wq.normal_w)
    key_offset = index._translator.key_offset(index._working_normal)
    scale = max(1.0, float(np.abs(t).max()), abs(key_offset))
    tol = 1e-9 * scale
    keys = index._keys
    r_lo = keys.rank_le(float(t.min() - key_offset) - tol)
    r_hi = keys.rank_le(float(t.max() - key_offset) + tol)
    n = len(keys)
    # finish_query, inlined
    if wq.op.is_upper_bound:
        accepted = [keys.ids_in_rank_range(0, r_lo)]
    else:
        accepted = [keys.ids_in_rank_range(r_hi, n)]
    verify_ids = np.sort(keys.ids_in_rank_range(r_lo, r_hi))
    n_verified = int(verify_ids.size)
    if n_verified:
        feats = np.take(index._store._data, verify_ids, axis=0)
        mask = wq.query.evaluate(feats)
        accepted.append(verify_ids[mask])
    result_ids = np.sort(np.concatenate(accepted))
    stats = QueryStats(
        n_total=n,
        si_size=r_lo,
        ii_size=r_hi - r_lo,
        li_size=n - r_hi,
        n_verified=n_verified,
        n_results=int(result_ids.size),
    )
    return result_ids, stats


def test_disabled_obs_overhead_below_two_percent(benchmark):
    """Empirical gate: instrumented vs uninstrumented, obs disabled.

    Interleaved rounds with a median-of-ratios comparison absorb
    scheduler noise; the 2% bar is the ISSUE acceptance criterion.
    """
    if obs_runtime.ENABLED:
        import pytest

        pytest.skip("benchmark process running under REPRO_OBS=1")

    rng = np.random.default_rng(42)
    index, queries = _build(rng)

    # Sanity: the uninstrumented arm is the same algorithm.
    for query in queries[:5]:
        expected = index.query(query)
        got_ids, got_stats = _uninstrumented_query(index, query)
        assert np.array_equal(expected.ids, got_ids)
        assert expected.stats == got_stats

    def instrumented() -> None:
        for query in queries:
            index.query(query)

    def uninstrumented() -> None:
        for query in queries:
            _uninstrumented_query(index, query)

    # Warm up caches and BLAS threads.
    instrumented()
    uninstrumented()

    rounds = 7
    ratios = []
    times_inst = []
    times_base = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        instrumented()
        t1 = time.perf_counter()
        uninstrumented()
        t2 = time.perf_counter()
        times_inst.append(t1 - t0)
        times_base.append(t2 - t1)
        ratios.append((t1 - t0) / (t2 - t1))

    med_inst = float(np.median(times_inst)) / N_QUERIES
    med_base = float(np.median(times_base)) / N_QUERIES
    ratio = float(np.median(ratios))
    benchmark.pedantic(instrumented, rounds=1, iterations=1)

    print_table(
        "Disabled-obs overhead on PlanarIndex.query",
        [
            {
                "instrumented_us": med_inst * 1e6,
                "uninstrumented_us": med_base * 1e6,
                "ratio": ratio,
            }
        ],
    )
    assert ratio < 1.02, (
        f"instrumented/uninstrumented median ratio {ratio:.4f} exceeds the "
        f"2% bar ({med_inst * 1e6:.2f} us vs {med_base * 1e6:.2f} us per query)"
    )


def test_armed_sampled_overhead_below_five_percent(benchmark):
    """Empirical gate: armed at 1% head sampling vs uninstrumented.

    This is the production-telemetry contract: ``REPRO_OBS=1`` with
    ``REPRO_OBS_SAMPLE=0.01`` keeps tracing and the query log always on
    while unsampled queries (the ~99%) skip all span/metric bookkeeping
    via the per-trace mute, so the median per-query cost stays within 5%
    of the uninstrumented pipeline.
    """
    if obs_runtime.ENABLED:
        import pytest

        pytest.skip("benchmark process running under REPRO_OBS=1")

    rng = np.random.default_rng(13)
    index, queries = _build(rng)

    def armed_sampled() -> None:
        for query in queries:
            index.query(query)

    def uninstrumented() -> None:
        for query in queries:
            _uninstrumented_query(index, query)

    uninstrumented()  # warm up caches and BLAS threads

    previous_rate = obs_trace.set_sample_rate(0.01)
    obs_runtime.enable()
    try:
        armed_sampled()  # warm up armed structures
        # Query-level interleave: both arms run the *same* query
        # back-to-back (alternating which goes first), so scheduler and
        # frequency drift hit both arms identically instead of whichever
        # half-second block it overlaps.  Run-level interleaving swings
        # by ±20% on noisy CI machines; this shape is stable to ~1%.
        rounds = 7
        ratios = []
        times_inst = []
        times_base = []
        for _ in range(rounds):
            armed_total = 0.0
            base_total = 0.0
            for i, query in enumerate(queries):
                if i & 1:
                    t0 = time.perf_counter()
                    index.query(query)
                    t1 = time.perf_counter()
                    _uninstrumented_query(index, query)
                    t2 = time.perf_counter()
                    armed_total += t1 - t0
                    base_total += t2 - t1
                else:
                    t0 = time.perf_counter()
                    _uninstrumented_query(index, query)
                    t1 = time.perf_counter()
                    index.query(query)
                    t2 = time.perf_counter()
                    base_total += t1 - t0
                    armed_total += t2 - t1
            times_inst.append(armed_total)
            times_base.append(base_total)
            ratios.append(armed_total / base_total)
        benchmark.pedantic(armed_sampled, rounds=1, iterations=1)
    finally:
        obs_runtime.disable()
        obs_trace.set_sample_rate(previous_rate)

    med_inst = float(np.median(times_inst)) / N_QUERIES
    med_base = float(np.median(times_base)) / N_QUERIES
    ratio = float(np.median(ratios))
    print_table(
        "Armed-at-1%-sampling overhead on PlanarIndex.query",
        [
            {
                "armed_sampled_us": med_inst * 1e6,
                "uninstrumented_us": med_base * 1e6,
                "ratio": ratio,
            }
        ],
    )
    assert ratio < 1.05, (
        f"armed-sampled/uninstrumented median ratio {ratio:.4f} exceeds the "
        f"5% bar ({med_inst * 1e6:.2f} us vs {med_base * 1e6:.2f} us per query)"
    )


def test_armed_obs_cost_is_bounded(benchmark):
    """Informational: armed-mode per-query cost stays usable.

    The armed layer pays span/record bookkeeping and registry updates per
    query.  That is opt-in, so the bar is a generous sanity ceiling, not a
    performance promise.
    """
    rng = np.random.default_rng(7)
    index, queries = _build(rng)
    queries = queries[:100]

    def run() -> None:
        for query in queries:
            index.query(query)

    run()  # warm up
    start = time.perf_counter()
    run()
    disabled_elapsed = time.perf_counter() - start

    was_enabled = obs_runtime.ENABLED
    obs_runtime.enable()
    try:
        run()  # warm up armed structures
        benchmark.pedantic(run, rounds=1, iterations=1)
        start = time.perf_counter()
        run()
        armed_elapsed = time.perf_counter() - start
    finally:
        if not was_enabled:
            obs_runtime.disable()

    print_table(
        "Armed-obs cost on PlanarIndex.query",
        [
            {
                "disabled_us": disabled_elapsed / len(queries) * 1e6,
                "armed_us": armed_elapsed / len(queries) * 1e6,
            }
        ],
    )
    # Generous ceiling: armed mode must stay usable for debugging runs.
    assert armed_elapsed < disabled_elapsed * 50
