"""Figure 7 — query time vs randomness of query (RQ), synthetic datasets.

Grid: dimension in {2, 6, 10, 14}, RQ in {2, 4, 8, 12}, 100 indices, all
three synthetic families.  Paper shape: Planar wins big at low d / low RQ
(up to 4 orders of magnitude) and approaches the baseline as both grow.
"""

from __future__ import annotations

import pytest

from repro.bench import print_table, run_query_experiment

from conftest import scaled

N_POINTS = 60_000


@pytest.mark.parametrize("dim", [2, 6, 10, 14])
def test_fig7_query_time_vs_rq(benchmark, synthetic_cache, dim):
    def sweep():
        rows = []
        for name in ("indp", "corr", "anti"):
            points = synthetic_cache(name, scaled(N_POINTS), dim)
            for rq in (2, 4, 8, 12):
                cell = run_query_experiment(
                    points, rq=rq, n_indices=100, n_queries=12, rng=rq
                )
                rows.append(
                    {
                        "dataset": name,
                        "RQ": rq,
                        "planar_ms": cell["planar_ms"],
                        "baseline_ms": cell["baseline_ms"],
                        "speedup": cell["speedup"],
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"Fig 7 (dimension={dim}): query time vs RQ, #index=100 "
        "(paper: speedup shrinks as RQ and d grow)",
        rows,
    )
    if dim <= 6:
        # Low-dimension, low-RQ cells must beat the scan.
        for name in ("indp", "corr", "anti"):
            low_rq = next(r for r in rows if r["dataset"] == name and r["RQ"] == 2)
            assert low_rq["speedup"] > 1.0, low_rq
