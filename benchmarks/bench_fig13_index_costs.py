"""Figure 13 — index construction time, memory usage, dynamic updates.

(a) build time vs dimensionality and #indices (paper: 2.54-2.92 s per
    index at 1M points, nearly flat in d),
(b) memory vs #indices and d (paper: linear in n and #indices, almost
    independent of d — keys are scalars),
(c) per-index update time vs the fraction of points updated (paper:
    170 ms per index for 5 %% of 1M points).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    print_table,
    run_index_cost_experiment,
    run_memory_experiment,
    run_update_experiment,
)

from conftest import scaled

N_POINTS = scaled(100_000)


def test_fig13a_build_time(benchmark):
    rows = benchmark.pedantic(
        run_index_cost_experiment,
        args=((2, 6, 10, 14), (1, 10, 50, 100)),
        kwargs={"n_points": N_POINTS, "rng": 0},
        rounds=1,
        iterations=1,
    )
    print_table(
        "Fig 13(a): index build time (paper: ~2.5-2.9 s/index at 1M, flat in d)",
        rows,
    )
    # Build time scales ~linearly with the number of indices at fixed d.
    for dim in (2, 6, 10, 14):
        series = [r["build_s"] for r in rows if r["dim"] == dim]
        assert series[-1] > series[0]
    # ... and is only weakly dependent on dimensionality at fixed budget.
    at_100 = [r["build_s"] for r in rows if r["n_indices"] == 100]
    assert max(at_100) < min(at_100) * 5.0


def test_fig13b_memory(benchmark):
    rows = benchmark.pedantic(
        run_memory_experiment,
        args=((2, 6, 10, 14), (1, 10, 50, 100)),
        kwargs={"n_points": N_POINTS, "rng": 0},
        rounds=1,
        iterations=1,
    )
    print_table(
        "Fig 13(b): memory consumption (paper: linear in #index, ~flat in d)",
        rows,
    )
    # Memory grows with the number of indices...
    for dim in (2, 6, 10, 14):
        series = [r["memory_mb"] for r in rows if r["dim"] == dim]
        assert series[-1] > series[0]
    # ...and the per-index increment is dimension-independent (scalar keys).
    incr = {}
    for dim in (2, 14):
        series = [r["memory_mb"] for r in rows if r["dim"] == dim]
        incr[dim] = series[-1] - series[0]
    assert abs(incr[2] - incr[14]) < 0.5 * max(incr[2], incr[14])


@pytest.mark.parametrize("dim", [6, 10])
def test_fig13c_dynamic_updates(benchmark, dim):
    rows = benchmark.pedantic(
        run_update_experiment,
        args=(N_POINTS, dim, (0.01, 0.05, 0.10, 0.25)),
        kwargs={"rng": 0},
        rounds=1,
        iterations=1,
    )
    print_table(
        f"Fig 13(c) (dimension={dim}): per-index update time vs %% points "
        "updated (paper: 170 ms/index at 5%% of 1M)",
        rows,
    )
    # Updating more points per batch costs less per point (batching pays).
    assert rows[-1]["per_point_us"] <= rows[0]["per_point_us"] * 2.0
