"""Figure 8 — query time vs number of Planar indices, synthetic datasets.

Grid: dimension in {2, 6, 10, 14}, #index in {1, 10, 50, 100}, RQ = 4.
Paper shape: more indices help (monotonically better pruning), with
diminishing returns at high dimensionality.
"""

from __future__ import annotations

import pytest

from repro.bench import print_table, run_query_experiment

from conftest import scaled

N_POINTS = 60_000


@pytest.mark.parametrize("dim", [2, 6, 10, 14])
def test_fig8_query_time_vs_nindex(benchmark, synthetic_cache, dim):
    def sweep():
        rows = []
        for name in ("indp", "corr", "anti"):
            points = synthetic_cache(name, scaled(N_POINTS), dim)
            for n_indices in (1, 10, 50, 100):
                cell = run_query_experiment(
                    points, rq=4, n_indices=n_indices, n_queries=12, rng=n_indices
                )
                rows.append(
                    {
                        "dataset": name,
                        "n_indices": n_indices,
                        "planar_ms": cell["planar_ms"],
                        "baseline_ms": cell["baseline_ms"],
                        "speedup": cell["speedup"],
                        "pruning_pct": cell["pruning_pct"],
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"Fig 8 (dimension={dim}): query time vs #index, RQ=4 "
        "(paper: more indices => better pruning)",
        rows,
    )
    # Shape: pruning with 100 indices beats pruning with a single index.
    for name in ("indp", "corr", "anti"):
        series = [r for r in rows if r["dataset"] == name]
        assert series[-1]["pruning_pct"] >= series[0]["pruning_pct"] - 1.0, name
