"""Table 2 — dataset characteristics.

Regenerates the characteristics table for all six datasets and benchmarks
generator throughput.  Cardinalities are scaled; the printed rows show the
generated characteristics next to the paper's published ones.
"""

from __future__ import annotations

from repro.bench import print_table
from repro.datasets import (
    anticorrelated,
    cmoment,
    consumption,
    correlated,
    ctexture,
    independent,
    table2_characteristics,
)

from conftest import scaled

_PAPER_ROWS = {
    "indp": ("1,000,000", "2 - 14", "(1, 100)"),
    "corr": ("1,000,000", "2 - 14", "(1, 100)"),
    "anti": ("1,000,000", "2 - 14", "(1, 100)"),
    "cmoment": ("68,040", "9", "(-4.15, 4.59)"),
    "ctexture": ("68,040", "16", "(-5.25, 50.21)"),
    "consumption": ("2,075,259", "4", "(0, 254)"),
}


def test_table2_characteristics(benchmark):
    def build():
        n = scaled(50_000)
        return [
            independent(n, 6, rng=0),
            correlated(n, 6, rng=1),
            anticorrelated(n, 6, rng=2),
            cmoment(scaled(20_000), rng=3),
            ctexture(scaled(20_000), rng=4),
            consumption(scaled(100_000), rng=5),
        ]

    datasets = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for generated in table2_characteristics(datasets):
        paper_n, paper_dim, paper_range = _PAPER_ROWS[generated["dataset"]]
        rows.append(
            {
                "dataset": generated["dataset"],
                "n (scaled)": generated["n_points"],
                "paper n": paper_n,
                "dim": generated["dimension"],
                "paper dim": paper_dim,
                "range": generated["attribute_range"],
                "paper range": paper_range,
            }
        )
    print_table("Table 2: dataset characteristics (generated vs paper)", rows)


def test_generator_throughput(benchmark):
    benchmark(independent, scaled(100_000), 6, rng=0)
