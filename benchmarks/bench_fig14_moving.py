"""Figure 14 — moving-object intersection, three workloads.

(a) linear motion: Planar vs all-pairs baseline vs the MBR/TPR-tree
    (paper: tree competitive or better — it is the specialist),
(b) circular motion: Planar vs baseline (paper: 2.5-75x; tree inapplicable),
(c) accelerating motion in 3-D: Planar vs baseline (paper: 25-50x).

Fleet sizes are scaled (paper: 5K x 5K = 25M pairs); pair counts stay
quadratic so the relative behaviour is preserved.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import print_table, run_moving_experiment

from conftest import scaled

TIMES = (10.0, 11.0, 12.0, 13.0, 14.0, 15.0)
N_PER_SET = scaled(400)


def test_fig14a_linear(benchmark):
    rows = benchmark.pedantic(
        run_moving_experiment,
        args=("linear", N_PER_SET, TIMES),
        kwargs={"distance": 10.0, "rng": 0},
        rounds=1,
        iterations=1,
    )
    print_table(
        "Fig 14(a): linear motion (paper: MBR-tree competitive; planar within 4x)",
        rows,
    )
    planar = np.mean([r["planar_ms"] for r in rows])
    baseline = np.mean([r["baseline_ms"] for r in rows])
    mbr = np.mean([r["mbr_ms"] for r in rows])
    assert planar < baseline  # planar beats all-pairs
    assert planar < mbr * 6.0  # and stays within a small factor of the tree


def test_fig14b_circular(benchmark):
    rows = benchmark.pedantic(
        run_moving_experiment,
        args=("circular", N_PER_SET, TIMES),
        kwargs={"distance": 10.0, "rng": 1},
        rounds=1,
        iterations=1,
    )
    print_table("Fig 14(b): circular motion (paper: planar 2.5-75x over baseline)", rows)
    planar = np.mean([r["planar_ms"] for r in rows])
    baseline = np.mean([r["baseline_ms"] for r in rows])
    assert planar < baseline


def test_fig14c_accelerating(benchmark):
    rows = benchmark.pedantic(
        run_moving_experiment,
        args=("accelerating", N_PER_SET, TIMES),
        kwargs={"distance": 10.0, "rng": 2},
        rounds=1,
        iterations=1,
    )
    print_table(
        "Fig 14(c): accelerating motion (paper: planar 25-50x over baseline)", rows
    )
    planar = np.mean([r["planar_ms"] for r in rows])
    baseline = np.mean([r["baseline_ms"] for r in rows])
    assert planar < baseline


def test_intersection_query_latency(benchmark):
    """Raw latency of one Planar intersection query (linear workload)."""
    from repro.moving import LinearIntersectionIndex, uniform_linear_workload

    first, second = uniform_linear_workload(N_PER_SET, rng=0)
    index = LinearIntersectionIndex(first, second, rng=0)
    benchmark(index.query, 12.5, 10.0)
