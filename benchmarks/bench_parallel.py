"""Benchmark: sharded parallel engine vs the monolithic facade.

Two claims are measured (acceptance criteria of the sharded engine):

* **Speedup** — batch-query throughput with 4 shards / 4 workers must
  reach at least 1.5x the monolithic path on n >= 200k points (numpy
  releases the GIL in ``matmul``/``searchsorted``, so shard fan-out on a
  thread pool overlaps real work).  The assertion is gated on the machine
  actually having >= 4 cores and the scaled dataset actually reaching
  200k points.
* **Overhead** — the 1-shard engine configuration executes inline over
  the monolithic collection layout; it must stay within 10% of the plain
  :class:`~repro.core.function_index.FunctionIndex` (measured best-of to
  shave scheduler noise, with a small absolute-time floor so sub-ms runs
  don't trip on timer jitter).

Answers are asserted bit-identical along the way, so the speedup is not
bought with approximation.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import FunctionIndex, ShardedFunctionIndex
from repro.bench import print_table
from repro.datasets import Workload, load

from conftest import scaled

_N_POINTS = scaled(200_000)
_N_QUERIES = 48
_N_INDICES = 32
_SHARDS = 4


def _best_of(func, repeat=3):
    best, result = float("inf"), None
    for _ in range(repeat):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return result, best


def _workload(n_points):
    points = load("indp", n_points, 6, rng=0).points
    workload = Workload.for_points(points, rq=2)
    queries = workload.sample_queries(_N_QUERIES, rng=1)
    normals = np.vstack([q.normal for q in queries])
    offsets = np.array([q.offset for q in queries])
    return points, workload.model, normals, offsets


def test_sharded_speedup(benchmark):
    """4-shard batch throughput vs monolithic (>= 1.5x on big data)."""
    points, model, normals, offsets = _workload(_N_POINTS)
    mono = FunctionIndex(points, model, n_indices=_N_INDICES, rng=0)
    engine = ShardedFunctionIndex(
        points,
        model,
        n_indices=_N_INDICES,
        rng=0,
        n_shards=_SHARDS,
        max_workers=_SHARDS,
    )

    def measure():
        mono.query_batch(normals[:4], offsets[:4])  # warm
        engine.query_batch(normals[:4], offsets[:4])
        mono_answers, mono_s = _best_of(lambda: mono.query_batch(normals, offsets))
        shard_answers, shard_s = _best_of(lambda: engine.query_batch(normals, offsets))
        for one, many in zip(mono_answers, shard_answers):
            assert np.array_equal(one.ids, many.ids)
        return {
            "n_points": len(points),
            "queries": len(offsets),
            "mono_ms": mono_s * 1000,
            "sharded_ms": shard_s * 1000,
            "speedup_x": mono_s / shard_s,
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(f"Sharded batch throughput ({_SHARDS} shards)", [row])
    engine.close()
    if row["n_points"] >= 200_000 and (os.cpu_count() or 1) >= _SHARDS:
        assert row["speedup_x"] >= 1.5, (
            f"sharded engine reached only {row['speedup_x']:.2f}x "
            f"over the monolithic path"
        )


def test_process_backend_batch_throughput(benchmark):
    """Process-backend batched throughput vs the per-query loop (>= 5x).

    The ISSUE-level gate for the GEMM + process-shard stack: forked
    workers sidestep the GIL entirely, so on >= 4 real cores and the
    full-size dataset a batched fan-out must beat a loop of monolithic
    single queries by >= 5x.  Skip-guarded on fork availability, core
    count, and dataset scale like the thread-backend gate above; answers
    are asserted bit-identical against the monolithic batch first.
    """
    import pytest

    from repro.parallel.process import fork_available

    if not fork_available():
        pytest.skip("process backend requires the fork start method")
    points, model, normals, offsets = _workload(_N_POINTS)
    mono = FunctionIndex(points, model, n_indices=_N_INDICES, rng=0)
    engine = ShardedFunctionIndex(
        points,
        model,
        n_indices=_N_INDICES,
        rng=0,
        n_shards=_SHARDS,
        max_workers=_SHARDS,
        backend="process",
    )

    def measure():
        mono.query_batch(normals[:4], offsets[:4])  # warm
        engine.query_batch(normals[:4], offsets[:4])  # fork + warm the pool
        batch_answers, batch_s = _best_of(lambda: engine.query_batch(normals, offsets))
        loop_answers, loop_s = _best_of(
            lambda: [mono.query(n, o) for n, o in zip(normals, offsets)]
        )
        for one, many in zip(loop_answers, batch_answers):
            assert np.array_equal(one.ids, many.ids)
        return {
            "n_points": len(points),
            "queries": len(offsets),
            "loop_ms": loop_s * 1000,
            "process_batch_ms": batch_s * 1000,
            "speedup_x": loop_s / batch_s,
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(f"Process-backend batch throughput ({_SHARDS} shards)", [row])
    engine.close()
    if row["n_points"] >= 200_000 and (os.cpu_count() or 1) >= _SHARDS:
        assert row["speedup_x"] >= 5.0, (
            f"process backend reached only {row['speedup_x']:.2f}x "
            f"over the per-query loop"
        )


def test_single_shard_overhead(benchmark):
    """1-shard engine must track the monolithic facade within 10%."""
    points, model, normals, offsets = _workload(max(20_000, _N_POINTS // 4))
    mono = FunctionIndex(points, model, n_indices=_N_INDICES, rng=0)
    engine = ShardedFunctionIndex(points, model, n_indices=_N_INDICES, rng=0, n_shards=1)

    def measure():
        mono.query_batch(normals[:4], offsets[:4])  # warm
        engine.query_batch(normals[:4], offsets[:4])
        mono_answers, mono_s = _best_of(
            lambda: mono.query_batch(normals, offsets), repeat=5
        )
        shard_answers, shard_s = _best_of(
            lambda: engine.query_batch(normals, offsets), repeat=5
        )
        for one, many in zip(mono_answers, shard_answers):
            assert np.array_equal(one.ids, many.ids)
        return {
            "n_points": len(points),
            "queries": len(offsets),
            "mono_ms": mono_s * 1000,
            "one_shard_ms": shard_s * 1000,
            "overhead_pct": 100.0 * (shard_s / mono_s - 1.0),
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table("Single-shard engine overhead", [row])
    engine.close()
    # 10% relative bound with a 2ms absolute floor: at sub-ms batch times
    # the relative bound would be deciding on timer noise.
    assert row["one_shard_ms"] <= row["mono_ms"] * 1.10 + 2.0, (
        f"1-shard engine is {row['overhead_pct']:.1f}% slower than monolithic"
    )
