"""Overhead of the fault-tolerance layer with no fault plan armed.

Acceptance bar (ISSUE 5): with fault injection disarmed — the default —
the hardened sharded query path must stay within **2%** of the identical
fan-out with every reliability hook removed.  The disarmed path costs one
module-global ``faults.ARMED`` read per shard task plus the failure-policy
branch per wave, so the measured difference should be deep in the noise.

Arms:

``hardened``
    ``ShardedFunctionIndex.query`` as shipped — fault-site guards,
    deadline accounting, and policy dispatch compiled in, all disarmed.

``bare``
    The identical fan-out re-inlined here with *no* reliability code:
    same executor, same per-shard ``collection.query``, same merge.

An informational test also measures the armed-but-never-firing cost
(rule table scanned on every shard task), which is opt-in and allowed to
be visible but must stay bounded.
"""

from __future__ import annotations

import time

import numpy as np

from repro import QueryModel, ScalarProductQuery, ShardedFunctionIndex
from repro.bench import print_table
from repro.reliability import faults as _flt

from conftest import scaled

# The disarmed reliability overhead is a *fixed* cost per query — one
# module-global read plus the policy branch per shard task, measured at
# ~2.6us/query with three shards (no-op shard functions, this machine).
# The 2% bar is therefore only meaningful when per-query work is large
# enough to dwarf that constant, so the dataset size is floored even
# when ``REPRO_BENCH_SCALE`` shrinks the other benchmarks.
N_POINTS = max(scaled(120_000), 60_000)
DIM = 6
N_SHARDS = 3
N_QUERIES = 200


def _build(rng: np.random.Generator):
    points = rng.uniform(1.0, 100.0, size=(N_POINTS, DIM))
    model = QueryModel.uniform(dim=DIM, low=1.0, high=5.0, rq=4)
    engine = ShardedFunctionIndex(
        points,
        model,
        n_indices=8,
        rng=7,
        n_shards=N_SHARDS,
        failure_policy="raise",  # pin: env REPRO_FAULT_POLICY must not skew arms
    )
    queries = [
        (
            rng.integers(1, 6, size=DIM).astype(np.float64),
            float(rng.uniform(1_000, 30_000)),
        )
        for _ in range(N_QUERIES)
    ]
    return engine, queries


def _bare_query(engine: ShardedFunctionIndex, normal: np.ndarray, offset: float):
    """The exact disarmed fan-out pipeline with every reliability hook removed."""
    spq = ScalarProductQuery(np.asarray(normal, dtype=np.float64), offset)
    engine._check_dim(spq)
    engine._working_or_raise(spq)
    collections = engine._collections
    if engine._executor is None:
        results = [collections[0].query(spq)]
    else:
        futures = [
            engine._executor.submit(collections[shard].query, spq)
            for shard in range(engine.n_shards)
        ]
        results = [future.result() for future in futures]
    return engine._merge_inequality(results)


def test_disarmed_fault_overhead_below_two_percent(benchmark):
    """Empirical gate: hardened vs bare fan-out, faults disarmed.

    Measuring two whole arms back to back cannot resolve a 2% bar on a
    shared runner: two *byte-identical* fan-out loops timed that way were
    observed 3% apart (scheduler drift between arm slots).  So the arms
    are paired at the finest grain instead — each query is timed in both
    arms back to back (order alternating per query and per round) and
    each query keeps its per-arm **minimum** across all rounds.  Timing
    noise is strictly additive (preemption, cache eviction, turbo drift
    only ever slow a sample down), so the per-query minimum converges on
    the true cost and the ratio of summed minima is stable to ~1%.
    """
    if _flt.is_armed():
        import pytest

        pytest.skip("benchmark process running with REPRO_FAULTS armed")

    rng = np.random.default_rng(42)
    engine, queries = _build(rng)

    # Sanity: the bare arm is the same algorithm.
    for normal, offset in queries[:5]:
        expected = engine.query(normal, offset)
        got = _bare_query(engine, normal, offset)
        assert np.array_equal(expected.ids, got.ids)
        assert expected.degraded is None

    # Warm up caches, the thread pool, and BLAS threads.
    for normal, offset in queries:
        engine.query(normal, offset)
        _bare_query(engine, normal, offset)

    rounds = 12
    best_hardened = np.full(N_QUERIES, np.inf)
    best_bare = np.full(N_QUERIES, np.inf)
    clock = time.perf_counter
    for round_index in range(rounds):
        for i, (normal, offset) in enumerate(queries):
            if (round_index + i) % 2 == 0:
                t0 = clock()
                engine.query(normal, offset)
                t1 = clock()
                _bare_query(engine, normal, offset)
                t2 = clock()
                hardened_s, bare_s = t1 - t0, t2 - t1
            else:
                t0 = clock()
                _bare_query(engine, normal, offset)
                t1 = clock()
                engine.query(normal, offset)
                t2 = clock()
                bare_s, hardened_s = t1 - t0, t2 - t1
            if hardened_s < best_hardened[i]:
                best_hardened[i] = hardened_s
            if bare_s < best_bare[i]:
                best_bare[i] = bare_s

    sum_hardened = float(best_hardened.sum())
    sum_bare = float(best_bare.sum())
    ratio = sum_hardened / sum_bare

    def hardened() -> None:
        for normal, offset in queries:
            engine.query(normal, offset)

    benchmark.pedantic(hardened, rounds=1, iterations=1)

    print_table(
        "Disarmed fault-injection overhead on ShardedFunctionIndex.query",
        [
            {
                "hardened_us": sum_hardened / N_QUERIES * 1e6,
                "bare_us": sum_bare / N_QUERIES * 1e6,
                "ratio": ratio,
            }
        ],
    )
    engine.close()
    assert ratio < 1.02, (
        f"hardened/bare paired-minima ratio {ratio:.4f} exceeds the 2% bar "
        f"({sum_hardened / N_QUERIES * 1e6:.2f} us vs "
        f"{sum_bare / N_QUERIES * 1e6:.2f} us per query)"
    )


def test_armed_nonfiring_cost_is_bounded(benchmark):
    """Informational: an armed plan that never fires stays usable.

    Arms a rule at a site the query path never checks, so every shard
    task pays the rule-matching scan without a single injection.  Armed
    mode is opt-in, so the bar is a generous sanity ceiling.
    """
    rng = np.random.default_rng(7)
    engine, queries = _build(rng)
    queries = queries[:60]

    def run() -> None:
        for normal, offset in queries:
            engine.query(normal, offset)

    run()  # warm up
    start = time.perf_counter()
    run()
    disarmed_elapsed = time.perf_counter() - start

    with _flt.injected("never.fires:error"):
        run()  # warm up armed structures
        benchmark.pedantic(run, rounds=1, iterations=1)
        start = time.perf_counter()
        run()
        armed_elapsed = time.perf_counter() - start

    print_table(
        "Armed (non-firing) fault-plan cost on ShardedFunctionIndex.query",
        [
            {
                "disarmed_us": disarmed_elapsed / len(queries) * 1e6,
                "armed_us": armed_elapsed / len(queries) * 1e6,
            }
        ],
    )
    engine.close()
    # Generous ceiling: armed mode must stay usable for chaos runs.
    assert armed_elapsed < disarmed_elapsed * 10
